//! Observability end-to-end: the extended `stats` opcode carries a
//! versioned metrics snapshot alongside the legacy struct, a saturated
//! daemon is eventually served through the client's Busy backoff, and a
//! panicking worker is counted and survived.
//!
//! The metrics registry is process-global, so every assertion here is a
//! delta (or a monotone non-zero check) — never an absolute equality.

use clare_core::{ClauseRetrievalServer, CrsOptions, ModeChoice, SearchMode};
use clare_kb::{KbBuilder, KbConfig, KnowledgeBase};
use clare_net::protocol::{
    self, encode_client_hello, encode_retrieve, encode_solve, opcode, BudgetExt, Frame,
    HelloStatus, RetrieveReq, SolveReq, PROTOCOL_VERSION, SERVER_HELLO_LEN,
};
use clare_net::{ClientConfig, ErrorCode, NetClient, NetConfig, NetError, NetServer};
use clare_term::parser::parse_term;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn item_kb() -> KnowledgeBase {
    let mut b = KbBuilder::new();
    let source: String = (0..40)
        .map(|i| format!("item(k{}, v{}).\n", i % 10, i % 4))
        .collect();
    b.consult("m", &source).unwrap();
    b.finish(KbConfig::default())
}

fn serve(cfg: NetConfig) -> (NetServer, Arc<ClauseRetrievalServer>) {
    let crs = Arc::new(ClauseRetrievalServer::new(item_kb(), CrsOptions::default()));
    let server = NetServer::bind(Arc::clone(&crs), "127.0.0.1:0", cfg).unwrap();
    (server, crs)
}

/// The extended stats request returns the legacy struct byte-compatibly
/// plus a named snapshot with non-zero counters for every layer the
/// retrievals exercised; the legacy request still decodes.
#[test]
fn extended_stats_report_per_layer_counters() {
    let (server, crs) = serve(NetConfig::default());
    let mut client = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
    let mut symbols = client.symbols().unwrap();
    let single = parse_term("item(k3, X)", &mut symbols).unwrap();
    let batch: Vec<_> = ["item(k1, X)", "item(k2, X)", "item(A, B)"]
        .iter()
        .map(|q| parse_term(q, &mut symbols).unwrap())
        .collect();

    client.retrieve(&single, SearchMode::TwoStage).unwrap();
    client.retrieve_batch(&batch, SearchMode::TwoStage).unwrap();

    // Legacy request: unchanged struct, identical to the direct read.
    assert_eq!(client.stats().unwrap(), crs.stats());

    // Extended request: legacy struct plus the named snapshot.
    let (stats, snapshot) = client.metrics().unwrap();
    assert_eq!(stats, crs.stats());

    for counter in [
        "fs1.scans",    // FS1 index scans ran under TwoStage
        "fs2.tracks",   // FS2 verified candidate tracks
        "fs2.op.MATCH", // ...executing at least MATCH micro-ops
        "net.frames_in.retrieve",
        "net.bytes_in",
        "net.frames_out",
    ] {
        let v = snapshot.counter(counter).unwrap_or_else(|| {
            panic!("counter {counter} missing from snapshot");
        });
        assert!(v > 0, "counter {counter} stayed zero");
    }
    let wall = snapshot
        .histogram("crs.retrieve_wall_ns")
        .expect("retrieval latency histogram missing");
    assert!(wall.count > 0);
    assert!(
        snapshot.histogram("crs.pred.item/2.elapsed_ns").is_some(),
        "per-predicate latency histogram missing"
    );
    server.shutdown();
}

/// Performs the hello exchange on a raw socket.
fn raw_handshake(addr: std::net::SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(&encode_client_hello(PROTOCOL_VERSION))
        .unwrap();
    let mut raw = [0u8; SERVER_HELLO_LEN];
    stream.read_exact(&mut raw).unwrap();
    let hello = protocol::decode_server_hello(&raw).unwrap();
    assert_eq!(hello.status, HelloStatus::Ok);
    stream
}

/// A saturated one-worker daemon sheds the client's request with `Busy`,
/// and the client's bounded backoff retries until it is served instead of
/// failing on the first rejection.
#[test]
fn saturated_daemon_is_eventually_served_through_retry() {
    let crs = Arc::new(ClauseRetrievalServer::new(item_kb(), CrsOptions::default()));
    // An exponential search that fails exhaustively: 2^18 resolution
    // paths keep the single worker busy for a while (but boundedly so).
    {
        let mut tx = crs.begin_update();
        let goals: Vec<String> = (0..18).map(|i| format!("p(A{i})")).collect();
        tx.consult(
            "slow",
            &format!("p(a). p(b). hard :- {}, absent(A0).", goals.join(", ")),
        )
        .unwrap();
        tx.commit(KbConfig::default()).unwrap();
    }
    let cfg = NetConfig {
        workers: 1,
        queue_depth: 1,
        coalesce: false,
        retry_after_ms: 5,
        ..NetConfig::default()
    };
    let server = NetServer::bind(Arc::clone(&crs), "127.0.0.1:0", cfg).unwrap();

    let mut client = NetClient::connect(
        server.local_addr(),
        ClientConfig {
            busy_retries: 40,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let mut symbols = client.symbols().unwrap();
    let query = parse_term("item(k3, X)", &mut symbols).unwrap();
    let hard = parse_term("hard", &mut symbols).unwrap();

    let rejected_before = clare_trace::metrics().net_busy_rejections.get();

    // Occupy the single worker with the slow solve (sent on a raw socket
    // we never read), give it time to be dequeued, then park a filler
    // retrieve in the depth-1 queue from a second connection. Until the
    // solve finishes (~hundreds of ms), every further frame is shed.
    let mut slow_conn = raw_handshake(server.local_addr());
    slow_conn
        .write_all(
            &Frame::new(
                1,
                opcode::SOLVE,
                encode_solve(&SolveReq {
                    goals: vec![hard],
                    var_names: Vec::new(),
                    mode: ModeChoice::Fixed(SearchMode::SoftwareOnly),
                    max_solutions: u64::MAX,
                    max_depth: 64,
                    deadline_micros: 0,
                    budget: BudgetExt::NONE,
                }),
            )
            .encoded(),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let mut filler_conn = raw_handshake(server.local_addr());
    filler_conn
        .write_all(
            &Frame::new(
                1,
                opcode::RETRIEVE,
                encode_retrieve(&RetrieveReq {
                    query: query.clone(),
                    mode: SearchMode::SoftwareOnly,
                    deadline_micros: 0,
                    budget: BudgetExt::NONE,
                }),
            )
            .encoded(),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(10));

    // Without retries the same request fails on the first Busy.
    let mut impatient = NetClient::connect(
        server.local_addr(),
        ClientConfig {
            busy_retries: 0,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    match impatient.retrieve(&query, SearchMode::TwoStage) {
        Err(NetError::Remote {
            code,
            retry_after_ms,
            ..
        }) => {
            assert_eq!(code, ErrorCode::Busy);
            assert_eq!(retry_after_ms, 5);
        }
        other => panic!("expected a Busy shed while saturated, got {other:?}"),
    }

    // The retrying client is eventually served, byte-identically.
    let networked = client.retrieve(&query, SearchMode::TwoStage).unwrap();
    assert_eq!(networked, crs.retrieve(&query, SearchMode::TwoStage));
    // Both the impatient probe and the retrying client's first attempt
    // were shed while the daemon was saturated.
    assert!(
        clare_trace::metrics().net_busy_rejections.get() >= rejected_before + 2,
        "saturation never shed the clients' requests"
    );
    server.shutdown();
}

/// A worker panic mid-job is isolated: the affected request gets an
/// `Internal` error frame, the panic is counted, and the pool (and the
/// same connection) keeps serving.
#[test]
fn worker_panic_is_counted_and_survived() {
    let panics_before = clare_trace::metrics().net_worker_panics.get();
    let cfg = NetConfig {
        workers: 2,
        debug_panic_on_stats: true,
        ..NetConfig::default()
    };
    let (server, crs) = serve(cfg);
    let mut client = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();

    match client.stats() {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Internal),
        other => panic!("expected Internal from the panicking worker, got {other:?}"),
    }
    assert!(
        clare_trace::metrics().net_worker_panics.get() > panics_before,
        "worker panic was not counted"
    );

    // The pool survives: the same connection still answers correctly.
    client.ping().unwrap();
    let mut symbols = client.symbols().unwrap();
    let query = parse_term("item(k3, X)", &mut symbols).unwrap();
    let networked = client.retrieve(&query, SearchMode::TwoStage).unwrap();
    assert_eq!(networked, crs.retrieve(&query, SearchMode::TwoStage));
    server.shutdown();
}

/// The registry's per-opcode frame counter names line up with the wire
/// opcodes they count.
#[test]
fn net_op_names_align_with_wire_opcodes() {
    let expected = [
        (opcode::PING, "ping"),
        (opcode::RETRIEVE, "retrieve"),
        (opcode::RETRIEVE_BATCH, "retrieve_batch"),
        (opcode::SOLVE, "solve"),
        (opcode::CONSULT, "consult"),
        (opcode::STATS, "stats"),
        (opcode::SYMBOLS, "symbols"),
        (opcode::ASSERT, "assert"),
        (opcode::RETRACT, "retract"),
        (opcode::SUBSCRIBE_LOG, "subscribe_log"),
        (opcode::LOG_FRAME, "log_frame"),
        (opcode::REPL_ACK, "repl_ack"),
    ];
    assert_eq!(expected.len(), clare_trace::NET_OPS);
    for (op, name) in expected {
        assert_eq!(clare_trace::net_op_name((op - opcode::PING) as usize), name);
    }
}
