//! Property tests for the PIF word and record encodings.

use clare_pif::termio::{decode_term, encode_term, TermLimits};
use clare_pif::word::{INT_MAX, INT_MIN};
use clare_pif::{ClauseRecord, PifStream, PifWord, TypeTag};
use clare_term::parser::{parse_clause, parse_term};
use clare_term::SymbolTable;
use proptest::prelude::*;

fn arbitrary_tag() -> impl Strategy<Value = TypeTag> {
    prop_oneof![
        Just(TypeTag::Anon),
        any::<bool>().prop_map(|first| TypeTag::QueryVar { first }),
        any::<bool>().prop_map(|first| TypeTag::DbVar { first }),
        Just(TypeTag::AtomPtr),
        Just(TypeTag::FloatPtr),
        (0u8..16).prop_map(|high_nibble| TypeTag::IntInline { high_nibble }),
        (0u8..32).prop_map(|arity| TypeTag::StructInline { arity }),
        (0u8..32).prop_map(|arity| TypeTag::StructPtr { arity }),
        (0u8..32, any::<bool>())
            .prop_map(|(arity, terminated)| TypeTag::ListInline { arity, terminated }),
        (0u8..32, any::<bool>())
            .prop_map(|(arity, terminated)| TypeTag::ListPtr { arity, terminated }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every constructible tag round-trips through its byte.
    #[test]
    fn tag_byte_roundtrip(tag in arbitrary_tag()) {
        prop_assert_eq!(TypeTag::from_byte(tag.to_byte()).unwrap(), tag);
    }

    /// In-range integers round-trip through the 28-bit in-line encoding.
    #[test]
    fn int_roundtrip(v in INT_MIN..=INT_MAX) {
        let word = PifWord::int(v).unwrap();
        prop_assert_eq!(word.int_value(), Some(v));
        // And through the packed 32-bit form.
        let packed = PifWord::from_u32(word.to_u32()).unwrap();
        prop_assert_eq!(packed.int_value(), Some(v));
    }

    /// Out-of-range integers are rejected, never truncated.
    #[test]
    fn int_out_of_range_rejected(v in prop_oneof![
        i64::MIN..INT_MIN,
        INT_MAX + 1..=i64::MAX,
    ]) {
        prop_assert!(PifWord::int(v).is_err());
    }

    /// Streams of arbitrary words survive serialization.
    #[test]
    fn stream_roundtrip(specs in prop::collection::vec(
        (arbitrary_tag(), 0u32..0x100_0000, proptest::option::of(any::<u32>())),
        0..40,
    )) {
        let stream: PifStream = specs
            .iter()
            .map(|(tag, content, ext)| match ext {
                Some(e) => PifWord::with_extension(*tag, *content, *e),
                None => PifWord::new(*tag, *content),
            })
            .collect();
        let mut buf = Vec::new();
        stream.write_to(&mut buf);
        let back = PifStream::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, stream);
    }

    /// Clause records round-trip for a grammar of generated clauses.
    #[test]
    fn record_roundtrip(
        functor in "[a-z][a-z0-9]{0,5}",
        args in prop::collection::vec(
            prop_oneof![
                "[a-z][a-z0-9]{0,4}".prop_map(|a| a),
                (-1000i64..1000).prop_map(|v| v.to_string()),
                "[A-Z]".prop_map(|v| v),
                Just("_".to_owned()),
                Just("[x, y | T]".to_owned()),
                Just("g(h(deep), [1])".to_owned()),
            ],
            1..6,
        ),
    ) {
        let mut symbols = SymbolTable::new();
        let src = format!("{functor}({}).", args.join(", "));
        let clause = parse_clause(&src, &mut symbols).unwrap();
        let record = ClauseRecord::compile(&clause).unwrap();
        let bytes = record.to_bytes();
        let (back, used) = ClauseRecord::from_bytes(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back.clause(), &clause);
    }

    /// Truncating a record anywhere makes it unreadable, never panics.
    #[test]
    fn truncation_is_detected(cut_fraction in 0.0f64..1.0) {
        let mut symbols = SymbolTable::new();
        let clause = parse_clause("p(a, [1, 2 | T], g(h)).", &mut symbols).unwrap();
        let bytes = ClauseRecord::compile(&clause).unwrap().to_bytes();
        let cut = ((bytes.len() - 1) as f64 * cut_fraction) as usize;
        prop_assert!(ClauseRecord::from_bytes(&bytes[..cut]).is_err());
    }

    /// Arbitrary byte strings never panic any decoder — they either parse
    /// or yield a typed `PifError`. These byte streams arrive off the
    /// network in `clare-net`, so this is an attack-surface guarantee, not
    /// a nicety.
    #[test]
    fn arbitrary_bytes_never_panic_decoders(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_term(&bytes, &TermLimits::default());
        let _ = PifStream::read_from(&mut bytes.as_slice());
        let _ = ClauseRecord::from_bytes(&bytes);
    }

    /// Byte strings that *start* valid and trail off into garbage also
    /// never panic: prefix a genuine encoded term with mutations applied at
    /// a random position.
    #[test]
    fn mutated_term_bytes_never_panic(
        flip_at in 0usize..64,
        flip_to in any::<u8>(),
    ) {
        let mut symbols = SymbolTable::new();
        let term = parse_term("f(a, [1, 2 | T], g(h(B)), 3.5)", &mut symbols).unwrap();
        let mut bytes = encode_term(&term);
        let i = flip_at % bytes.len();
        bytes[i] = flip_to;
        let _ = decode_term(&bytes, &TermLimits::default());
    }

    /// Terms survive the wire codec bit-for-bit.
    #[test]
    fn term_bytes_roundtrip(
        functor in "[a-z][a-z0-9]{0,5}",
        args in prop::collection::vec(
            prop_oneof![
                "[a-z][a-z0-9]{0,4}".prop_map(|a| a),
                (-1000i64..1000).prop_map(|v| v.to_string()),
                "[A-Z]".prop_map(|v| v),
                Just("_".to_owned()),
                Just("1.25".to_owned()),
                Just("[x, y | T]".to_owned()),
                Just("g(h(deep), [1])".to_owned()),
            ],
            1..6,
        ),
    ) {
        let mut symbols = SymbolTable::new();
        let src = format!("{functor}({})", args.join(", "));
        let term = parse_term(&src, &mut symbols).unwrap();
        let bytes = encode_term(&term);
        let (back, used) = decode_term(&bytes, &TermLimits::default()).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back, term);
    }
}
