//! Interned symbols: atom names and floating-point constants.
//!
//! The CLARE hardware never sees textual atom names. In the Pseudo In-line
//! Format (PIF, Table A1 of the paper) an atom argument is the tag `0x08`
//! followed by a *symbol table offset*, and a float argument is the tag
//! `0x09` followed by a symbol table offset. Equality of two atoms or two
//! floats therefore reduces to equality of offsets — which is exactly what
//! the FS2 comparator tests. [`SymbolTable`] reproduces that contract: the
//! same atom text (or the same float bit pattern) always interns to the same
//! offset, and distinct texts (bit patterns) intern to distinct offsets.

use std::collections::HashMap;
use std::fmt;

/// An interned atom name: an index into a [`SymbolTable`].
///
/// In PIF terms this is the "symbol table offset" stored in the content field
/// of an atom argument or of a structure's functor.
///
/// # Examples
///
/// ```
/// use clare_term::SymbolTable;
///
/// let mut table = SymbolTable::new();
/// let a = table.intern_atom("likes");
/// let b = table.intern_atom("likes");
/// assert_eq!(a, b);
/// assert_eq!(table.atom_text(a), "likes");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Returns the raw symbol-table offset.
    pub fn offset(self) -> u32 {
        self.0
    }

    /// Reconstructs a symbol from a raw offset.
    ///
    /// Intended for decoders (e.g. the PIF decoder) that read offsets back
    /// from an encoded byte stream. The caller is responsible for only using
    /// offsets that were produced by the same [`SymbolTable`].
    pub fn from_offset(offset: u32) -> Self {
        Symbol(offset)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An interned floating-point constant: an index into a [`SymbolTable`].
///
/// The paper stores floats out-of-line in the symbol table (tag `0x09`,
/// content = symbol table offset), so float comparison in the hardware is
/// offset comparison. Floats are interned by bit pattern: `0.0` and `-0.0`
/// are *different* entries, and a NaN is equal to an identically-encoded NaN,
/// mirroring a table keyed on the stored bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FloatId(u32);

impl FloatId {
    /// Returns the raw symbol-table offset.
    pub fn offset(self) -> u32 {
        self.0
    }

    /// Reconstructs a float id from a raw offset.
    ///
    /// See [`Symbol::from_offset`] for the intended use.
    pub fn from_offset(offset: u32) -> Self {
        FloatId(offset)
    }
}

impl fmt::Display for FloatId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flt#{}", self.0)
    }
}

/// Interner mapping atom texts and float constants to stable offsets.
///
/// One table is shared by a whole knowledge base (the paper keeps a single
/// symbol table per compiled clause file). All crates in the workspace pass
/// `&SymbolTable` or `&mut SymbolTable` explicitly; there is no global state.
///
/// # Examples
///
/// ```
/// use clare_term::SymbolTable;
///
/// let mut table = SymbolTable::new();
/// let pi = table.intern_float(3.14);
/// assert_eq!(table.float_value(pi), 3.14);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    atoms: Vec<String>,
    atom_index: HashMap<String, Symbol>,
    floats: Vec<f64>,
    float_index: HashMap<u64, FloatId>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an atom name, returning its stable offset.
    ///
    /// Interning the same text twice returns the same [`Symbol`].
    pub fn intern_atom(&mut self, text: &str) -> Symbol {
        if let Some(&sym) = self.atom_index.get(text) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.atoms.len()).expect("symbol table overflow"));
        self.atoms.push(text.to_owned());
        self.atom_index.insert(text.to_owned(), sym);
        sym
    }

    /// Looks up an atom without interning it.
    ///
    /// Returns `None` if the text has never been interned. Useful for query
    /// compilation against a read-only knowledge base: a query atom that does
    /// not occur anywhere in the knowledge base can never match.
    pub fn lookup_atom(&self, text: &str) -> Option<Symbol> {
        self.atom_index.get(text).copied()
    }

    /// Returns the text of an interned atom.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this table.
    pub fn atom_text(&self, sym: Symbol) -> &str {
        &self.atoms[sym.0 as usize]
    }

    /// Returns the text of an interned atom, or `None` for a foreign offset.
    pub fn try_atom_text(&self, sym: Symbol) -> Option<&str> {
        self.atoms.get(sym.0 as usize).map(String::as_str)
    }

    /// Interns a float constant (by bit pattern), returning its offset.
    pub fn intern_float(&mut self, value: f64) -> FloatId {
        let bits = value.to_bits();
        if let Some(&id) = self.float_index.get(&bits) {
            return id;
        }
        let id = FloatId(u32::try_from(self.floats.len()).expect("float table overflow"));
        self.floats.push(value);
        self.float_index.insert(bits, id);
        id
    }

    /// Looks up a float without interning it. See [`Self::lookup_atom`].
    pub fn lookup_float(&self, value: f64) -> Option<FloatId> {
        self.float_index.get(&value.to_bits()).copied()
    }

    /// Returns the value of an interned float.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn float_value(&self, id: FloatId) -> f64 {
        self.floats[id.0 as usize]
    }

    /// Number of distinct atoms interned so far.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Number of distinct float constants interned so far.
    pub fn float_count(&self) -> usize {
        self.floats.len()
    }

    /// Iterates over all interned atoms as `(symbol, text)` pairs.
    pub fn atoms(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.atoms
            .iter()
            .enumerate()
            .map(|(i, text)| (Symbol(i as u32), text.as_str()))
    }

    /// Approximate memory footprint of the table in bytes.
    ///
    /// Used by the knowledge-base sizing experiments (E10) when accounting
    /// for the in-memory cost of a loaded module.
    pub fn approx_bytes(&self) -> usize {
        let atom_bytes: usize = self.atoms.iter().map(|a| a.len() + 24).sum();
        atom_bytes
            + self.floats.len() * 8
            + self.atom_index.len() * 48
            + self.float_index.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_atom_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern_atom("foo");
        let b = t.intern_atom("foo");
        assert_eq!(a, b);
        assert_eq!(t.atom_count(), 1);
    }

    #[test]
    fn distinct_atoms_get_distinct_offsets() {
        let mut t = SymbolTable::new();
        let a = t.intern_atom("foo");
        let b = t.intern_atom("bar");
        assert_ne!(a, b);
        assert_eq!(t.atom_text(a), "foo");
        assert_eq!(t.atom_text(b), "bar");
    }

    #[test]
    fn offsets_are_dense_and_stable() {
        let mut t = SymbolTable::new();
        for i in 0..100 {
            let s = t.intern_atom(&format!("a{i}"));
            assert_eq!(s.offset(), i);
        }
        // Re-interning does not disturb the numbering.
        assert_eq!(t.intern_atom("a42").offset(), 42);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = SymbolTable::new();
        assert_eq!(t.lookup_atom("ghost"), None);
        assert_eq!(t.atom_count(), 0);
        let s = t.intern_atom("ghost");
        assert_eq!(t.lookup_atom("ghost"), Some(s));
    }

    #[test]
    fn float_interning_by_bit_pattern() {
        let mut t = SymbolTable::new();
        let pos = t.intern_float(0.0);
        let neg = t.intern_float(-0.0);
        assert_ne!(pos, neg, "0.0 and -0.0 have different bit patterns");
        assert_eq!(t.intern_float(0.0), pos);
        let nan = t.intern_float(f64::NAN);
        assert_eq!(
            t.intern_float(f64::NAN),
            nan,
            "same NaN encoding interns equal"
        );
    }

    #[test]
    fn float_roundtrip() {
        let mut t = SymbolTable::new();
        for v in [1.5, -2.25, 1e300, f64::MIN_POSITIVE] {
            let id = t.intern_float(v);
            assert_eq!(t.float_value(id), v);
        }
    }

    #[test]
    fn atoms_iterator_matches_contents() {
        let mut t = SymbolTable::new();
        t.intern_atom("x");
        t.intern_atom("y");
        let all: Vec<_> = t.atoms().map(|(_, s)| s.to_owned()).collect();
        assert_eq!(all, vec!["x", "y"]);
    }

    #[test]
    fn from_offset_roundtrip() {
        let mut t = SymbolTable::new();
        let s = t.intern_atom("roundtrip");
        assert_eq!(Symbol::from_offset(s.offset()), s);
        let f = t.intern_float(9.75);
        assert_eq!(FloatId::from_offset(f.offset()), f);
    }

    #[test]
    fn approx_bytes_grows() {
        let mut t = SymbolTable::new();
        let before = t.approx_bytes();
        t.intern_atom("some_reasonably_long_predicate_name");
        assert!(t.approx_bytes() > before);
    }
}
