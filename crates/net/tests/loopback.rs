//! End-to-end loopback tests: every networked answer must be
//! byte-identical to a direct call on the same [`ClauseRetrievalServer`],
//! across worker-pool sizes, pipelining, coalescing, concurrent updates,
//! load shedding, and malformed input.

use clare_core::{ClauseRetrievalServer, CrsOptions, SearchMode, SolveOptions};
use clare_kb::{KbBuilder, KbConfig, KnowledgeBase};
use clare_net::protocol::{
    self, encode_client_hello, encode_retrieval, opcode, Frame, FrameReader, HelloStatus,
    PROTOCOL_VERSION, SERVER_HELLO_LEN,
};
use clare_net::{ClientConfig, ErrorCode, NetClient, NetConfig, NetError, NetServer};
use clare_term::parser::{parse_term, parse_term_with_vars};
use clare_term::{SymbolTable, Term};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A KB with two predicates so coalescing groups have boundaries, plus a
/// rule so solve has something to resolve.
fn family_kb() -> KnowledgeBase {
    let mut b = KbBuilder::new();
    let mut source = String::new();
    for i in 0..40 {
        source.push_str(&format!("item(k{}, v{}).\n", i % 10, i % 4));
    }
    for i in 0..30 {
        source.push_str(&format!("edge(n{}, n{}).\n", i % 6, (i + 1) % 6));
    }
    source.push_str("linked(X, Z) :- edge(X, Y), edge(Y, Z).\n");
    b.consult("m", &source).unwrap();
    b.finish(KbConfig::default())
}

fn serve(workers: usize, coalesce: bool) -> (NetServer, Arc<ClauseRetrievalServer>) {
    let crs = Arc::new(ClauseRetrievalServer::new(
        family_kb(),
        CrsOptions::default(),
    ));
    let cfg = NetConfig {
        workers,
        coalesce,
        ..NetConfig::default()
    };
    let server = NetServer::bind(Arc::clone(&crs), "127.0.0.1:0", cfg).unwrap();
    (server, crs)
}

fn connect(server: &NetServer) -> NetClient {
    NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap()
}

fn sample_queries(symbols: &mut SymbolTable) -> Vec<Term> {
    [
        "item(k3, X)",
        "item(k3, v1)",
        "item(A, B)",
        "item(k9, _)",
        "edge(n2, X)",
        "edge(X, n3)",
        "item(missing_key, X)",
        "linked(n1, X)",
    ]
    .iter()
    .map(|q| parse_term(q, symbols).unwrap())
    .collect()
}

/// Single networked retrievals are byte-identical to direct calls, at two
/// worker-pool sizes and in every search mode.
#[test]
fn single_retrievals_byte_identical_across_pool_sizes() {
    for workers in [1, 4] {
        let (server, crs) = serve(workers, true);
        let mut client = connect(&server);
        let mut symbols = client.symbols().unwrap();
        for query in sample_queries(&mut symbols) {
            for mode in SearchMode::ALL {
                let networked = client.retrieve(&query, mode).unwrap();
                let direct = crs.retrieve(&query, mode);
                assert_eq!(networked, direct, "workers={workers} mode={mode}");
                assert_eq!(
                    encode_retrieval(&networked),
                    encode_retrieval(&direct),
                    "wire bytes differ (workers={workers} mode={mode})"
                );
            }
        }
        server.shutdown();
    }
}

/// Pipelined retrievals — including runs of same-predicate queries the
/// server coalesces into one hardware batch pass — answer byte-identically
/// to individual direct calls, in query order.
#[test]
fn pipelined_and_coalesced_retrievals_byte_identical() {
    for workers in [1, 4] {
        let (server, crs) = serve(workers, true);
        let mut client = connect(&server);
        let mut symbols = client.symbols().unwrap();
        // Long same-predicate runs (coalescable) with predicate switches
        // and ungroupable queries in between.
        let texts = [
            "item(k0, X)",
            "item(k1, X)",
            "item(k2, X)",
            "item(k3, X)",
            "edge(n0, X)",
            "edge(n1, X)",
            "item(k4, v0)",
            "item(k5, _)",
            "item(k6, X)",
            "edge(n2, n3)",
            "item(X, Y)",
            "item(k7, X)",
        ];
        let queries: Vec<Term> = texts
            .iter()
            .map(|q| parse_term(q, &mut symbols).unwrap())
            .collect();

        // Repeat so at least one burst arrives whole and triggers the
        // batch path (the stats assert below proves it actually ran).
        for _ in 0..10 {
            let networked = client
                .retrieve_pipelined(&queries, SearchMode::TwoStage)
                .unwrap();
            assert_eq!(networked.len(), queries.len());
            for (query, got) in queries.iter().zip(&networked) {
                let direct = crs.retrieve(query, SearchMode::TwoStage);
                assert_eq!(got, &direct, "workers={workers} query={query:?}");
            }
        }
        assert!(
            crs.stats().batches > 0,
            "pipelined same-predicate retrieves were never coalesced"
        );
        server.shutdown();
    }
}

/// Explicit batches match the in-process batch API member for member.
#[test]
fn explicit_batches_byte_identical() {
    for workers in [1, 3] {
        let (server, crs) = serve(workers, true);
        let mut client = connect(&server);
        let mut symbols = client.symbols().unwrap();
        let queries = sample_queries(&mut symbols);
        for mode in SearchMode::ALL {
            let networked = client.retrieve_batch(&queries, mode).unwrap();
            let direct = crs.retrieve_batch(&queries, mode);
            assert_eq!(networked, direct, "workers={workers} mode={mode}");
        }
        server.shutdown();
    }
}

/// Networked solve returns the same solutions, bindings, and stats as the
/// in-process resolution path.
#[test]
fn solve_over_the_wire_matches_in_process() {
    let (server, crs) = serve(2, true);
    let mut client = connect(&server);
    let mut symbols = client.symbols().unwrap();
    let (query, names) = parse_term_with_vars("linked(n1, Who)", &mut symbols).unwrap();
    let options = SolveOptions::default();
    let networked = client.solve(&query, &names, &options).unwrap();
    let direct = crs.solve(&query, &names, &options);
    assert_eq!(networked, direct);
    assert!(!networked.solutions.is_empty(), "linked/2 has answers");
    server.shutdown();
}

/// Consult over the wire publishes atomically; malformed source is
/// rejected with a typed error and leaves the KB untouched.
#[test]
fn consult_updates_and_rejections() {
    let (server, crs) = serve(2, true);
    let mut client = connect(&server);
    let mut symbols = client.symbols().unwrap();
    let query = parse_term("item(brand_new, X)", &mut symbols).unwrap();
    assert_eq!(
        client
            .retrieve(&query, SearchMode::TwoStage)
            .unwrap()
            .stats
            .unified,
        0
    );

    client.consult("m", "item(brand_new, v9).").unwrap();
    // Re-fetch the namespace: the update interned new atoms.
    let mut symbols = client.symbols().unwrap();
    let query = parse_term("item(brand_new, X)", &mut symbols).unwrap();
    let networked = client.retrieve(&query, SearchMode::TwoStage).unwrap();
    assert_eq!(networked.stats.unified, 1);
    assert_eq!(networked, crs.retrieve(&query, SearchMode::TwoStage));

    let before = crs.stats().updates;
    match client.consult("m", "this is ( not prolog") {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::ConsultRejected),
        other => panic!("expected ConsultRejected, got {other:?}"),
    }
    assert_eq!(
        crs.stats().updates,
        before,
        "rejected consult must not publish"
    );
    server.shutdown();
}

/// Assert and retract over the wire: the receipt reports what landed,
/// the merged view serves the new clause immediately, retract removes it
/// again, and malformed or multi-clause payloads are rejected without
/// publishing anything.
#[test]
fn assert_and_retract_over_the_wire() {
    let (server, crs) = serve(2, false);
    let mut client = connect(&server);

    let receipt = client.assert("m", "item(wired_in, v9).").unwrap();
    assert_eq!(receipt.asserted, 1);
    assert_eq!(receipt.retracted, 0);
    assert!(
        !receipt.durable,
        "no WAL is attached, so the commit must not claim durability"
    );
    assert_eq!(receipt.seqs.end - receipt.seqs.start, 1);

    // The overlay-interned atom is visible through the symbols opcode.
    let mut symbols = client.symbols().unwrap();
    let query = parse_term("item(wired_in, X)", &mut symbols).unwrap();
    let networked = client.retrieve(&query, SearchMode::TwoStage).unwrap();
    assert_eq!(networked.stats.unified, 1, "asserted fact must be served");
    assert_eq!(networked, crs.retrieve(&query, SearchMode::TwoStage));

    let receipt = client.retract("m", "item(wired_in, v9).").unwrap();
    assert_eq!(receipt.asserted, 0);
    assert_eq!(receipt.retracted, 1);
    let gone = client.retrieve(&query, SearchMode::TwoStage).unwrap();
    assert_eq!(gone.stats.unified, 0, "retracted fact must disappear");

    // Retracting an absent clause is standard retract/1: a quiet no-op,
    // acknowledged with a zero-effect receipt.
    let absent = client.retract("m", "item(never_was, v0).").unwrap();
    assert_eq!((absent.asserted, absent.retracted), (0, 0));

    // Garbage or multi-clause payloads are typed rejections that publish
    // nothing.
    let before = crs.stats().updates;
    match client.assert("m", "this is ( not prolog") {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::ConsultRejected),
        other => panic!("expected ConsultRejected, got {other:?}"),
    }
    match client.retract("m", "item(a, b). item(c, d).") {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::ConsultRejected),
        other => panic!("expected ConsultRejected, got {other:?}"),
    }
    assert_eq!(
        crs.stats().updates,
        before,
        "rejected mutations must not publish"
    );
    server.shutdown();
}

/// Networked stats report the shared CRS counters, including the new
/// batch and rejection counts.
#[test]
fn stats_over_the_wire() {
    let (server, crs) = serve(2, true);
    let mut client = connect(&server);
    let mut symbols = client.symbols().unwrap();
    let queries = sample_queries(&mut symbols);
    client.retrieve(&queries[0], SearchMode::TwoStage).unwrap();
    client
        .retrieve_batch(&queries, SearchMode::Fs1Only)
        .unwrap();
    crs.note_rejected();

    let networked = client.stats().unwrap();
    assert_eq!(networked, crs.stats());
    assert_eq!(networked.retrievals, 1 + queries.len() as u64);
    assert_eq!(networked.batches, 1);
    assert_eq!(networked.rejected, 1);
    server.shutdown();
}

/// Retrievals and batches racing `update()` swaps through the network
/// observe exactly one published knowledge base per call (snapshot
/// isolation end to end), and the server never wedges.
#[test]
fn concurrent_updates_vs_networked_retrievals() {
    fn item_kb(symbols: Option<SymbolTable>, n: usize) -> (KnowledgeBase, SymbolTable) {
        let mut b = KbBuilder::new();
        if let Some(sy) = symbols {
            *b.symbols_mut() = sy;
        }
        let facts: String = (0..n)
            .map(|i| format!("item(k{}, v{}).", i % 20, i % 5))
            .collect::<Vec<_>>()
            .join("\n");
        b.consult("m", &facts).unwrap();
        let sy = b.symbols_mut().clone();
        (b.finish(KbConfig::default()), sy)
    }

    let (kb_small, symbols) = item_kb(None, 100);
    let (kb_large, symbols) = item_kb(Some(symbols), 300);
    let mut symbols = symbols;
    let single = parse_term("item(k7, X)", &mut symbols).unwrap();
    let batch: Vec<Term> = ["item(k7, X)", "item(k11, Y)"]
        .iter()
        .map(|q| parse_term(q, &mut symbols).unwrap())
        .collect();

    let expect = |kb: &KnowledgeBase, q: &Term| {
        clare_core::retrieve(kb, q, SearchMode::TwoStage, &CrsOptions::default())
            .stats
            .unified
    };
    let small_single = expect(&kb_small, &single);
    let large_single = expect(&kb_large, &single);
    assert_ne!(small_single, large_single);
    let small_batch: Vec<usize> = batch.iter().map(|q| expect(&kb_small, q)).collect();
    let large_batch: Vec<usize> = batch.iter().map(|q| expect(&kb_large, q)).collect();

    let crs = Arc::new(ClauseRetrievalServer::new(kb_small, CrsOptions::default()));
    let server = NetServer::bind(Arc::clone(&crs), "127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut flip = false;
            while !stop.load(Ordering::Relaxed) {
                let (kb, _) = item_kb(Some(symbols.clone()), if flip { 100 } else { 300 });
                crs.update(kb);
                flip = !flip;
            }
        });
        for _ in 0..2 {
            scope.spawn(|| {
                let mut client = NetClient::connect(addr, ClientConfig::default()).unwrap();
                for i in 0..30 {
                    let unified = client
                        .retrieve(&single, SearchMode::ALL[i % 4])
                        .unwrap()
                        .stats
                        .unified;
                    assert!(
                        unified == small_single || unified == large_single,
                        "networked retrieval saw a torn KB: {unified}"
                    );
                }
            });
            scope.spawn(|| {
                let mut client = NetClient::connect(addr, ClientConfig::default()).unwrap();
                for _ in 0..20 {
                    let got: Vec<usize> = client
                        .retrieve_batch(&batch, SearchMode::TwoStage)
                        .unwrap()
                        .iter()
                        .map(|r| r.stats.unified)
                        .collect();
                    assert!(
                        got == small_batch || got == large_batch,
                        "networked batch mixed snapshots: {got:?}"
                    );
                }
            });
        }
        scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(100));
            stop.store(true, Ordering::Relaxed);
        });
    });
    assert!(crs.stats().updates > 0);
    server.shutdown();
}

/// Performs the hello exchange on a raw socket.
fn raw_handshake(addr: std::net::SocketAddr, version: u16) -> (TcpStream, HelloStatus) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(&encode_client_hello(version)).unwrap();
    let mut raw = [0u8; SERVER_HELLO_LEN];
    stream.read_exact(&mut raw).unwrap();
    let hello = protocol::decode_server_hello(&raw).unwrap();
    (stream, hello.status)
}

/// Malformed request payloads get an error frame on the same id and the
/// connection keeps serving; an unsyncable frame length gets an error
/// notice before the connection drops.
#[test]
fn malformed_frames_yield_error_frames_not_disconnects() {
    let (server, _crs) = serve(2, true);
    let (mut stream, status) = raw_handshake(server.local_addr(), PROTOCOL_VERSION);
    assert_eq!(status, HelloStatus::Ok);
    let mut reader = FrameReader::new(protocol::MAX_FRAME_LEN);

    // Garbage retrieve payload → Malformed error, id echoed.
    stream
        .write_all(&Frame::new(41, opcode::RETRIEVE, vec![0xDE, 0xAD, 0xBE]).encoded())
        .unwrap();
    let reply = reader.read_frame(&mut stream).unwrap();
    assert_eq!(reply.request_id, 41);
    assert_eq!(reply.opcode, opcode::ERROR);
    let e = protocol::decode_error(&reply.payload).unwrap();
    assert_eq!(e.code, ErrorCode::Malformed);

    // Unknown opcode → Unsupported error.
    stream
        .write_all(&Frame::new(42, 0x55, Vec::new()).encoded())
        .unwrap();
    let reply = reader.read_frame(&mut stream).unwrap();
    assert_eq!(reply.request_id, 42);
    let e = protocol::decode_error(&reply.payload).unwrap();
    assert_eq!(e.code, ErrorCode::Unsupported);

    // The connection is still healthy: a ping round-trips.
    stream
        .write_all(&Frame::new(43, opcode::PING, Vec::new()).encoded())
        .unwrap();
    let reply = reader.read_frame(&mut stream).unwrap();
    assert_eq!(
        (reply.request_id, reply.opcode),
        (43, opcode::PING | opcode::REPLY)
    );

    server.shutdown();
}

/// A client speaking another protocol version is told so in the hello.
#[test]
fn version_mismatch_is_reported_in_hello() {
    let (server, _crs) = serve(1, true);
    let (_stream, status) = raw_handshake(server.local_addr(), 99);
    assert_eq!(status, HelloStatus::VersionMismatch);
    server.shutdown();
}

/// At the connection limit the server refuses with a busy hello carrying
/// the retry hint, and counts the rejection.
#[test]
fn connection_limit_refuses_with_retry_hint() {
    let crs = Arc::new(ClauseRetrievalServer::new(
        family_kb(),
        CrsOptions::default(),
    ));
    let cfg = NetConfig {
        workers: 1,
        max_connections: 1,
        retry_after_ms: 333,
        ..NetConfig::default()
    };
    let server = NetServer::bind(Arc::clone(&crs), "127.0.0.1:0", cfg).unwrap();

    let mut first = connect(&server);
    first.ping().unwrap(); // fully admitted
    match NetClient::connect(server.local_addr(), ClientConfig::default()) {
        Err(NetError::Busy { retry_after_ms }) => assert_eq!(retry_after_ms, 333),
        other => panic!("expected Busy refusal, got {other:?}"),
    }
    assert_eq!(crs.stats().rejected, 1);

    // Once the first client leaves, admission reopens.
    drop(first);
    for _ in 0..100 {
        if NetClient::connect(server.local_addr(), ClientConfig::default()).is_ok() {
            server.shutdown();
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("slot was never released after disconnect");
}

/// A request whose deadline lapsed while queued is answered with
/// DeadlineExpired instead of being executed.
#[test]
fn expired_deadlines_are_refused() {
    let (server, crs) = serve(1, true);
    let mut client = connect(&server);
    let mut symbols = client.symbols().unwrap();
    let query = parse_term("item(k1, X)", &mut symbols).unwrap();

    let before = crs.stats().retrievals;
    client.set_deadline(Some(Duration::from_micros(1)));
    match client.retrieve(&query, SearchMode::TwoStage) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::DeadlineExpired),
        Ok(_) => panic!("a 1µs deadline cannot survive the queue"),
        Err(other) => panic!("unexpected failure: {other}"),
    }
    assert_eq!(crs.stats().retrievals, before, "expired work must not run");

    // Clearing the deadline restores service on the same connection.
    client.set_deadline(None);
    assert!(client.retrieve(&query, SearchMode::TwoStage).is_ok());
    server.shutdown();
}

/// Graceful shutdown drains requests already accepted: a reply in flight
/// still arrives, and afterwards the port stops accepting.
#[test]
fn graceful_shutdown_drains_inflight_requests() {
    let (server, _crs) = serve(1, true);
    let addr = server.local_addr();
    let mut client = connect(&server);
    let mut symbols = client.symbols().unwrap();
    let queries: Vec<Term> = (0..8)
        .map(|i| parse_term(&format!("item(k{i}, X)"), &mut symbols).unwrap())
        .collect();

    let handle = std::thread::spawn(move || {
        let got = client
            .retrieve_pipelined(&queries, SearchMode::TwoStage)
            .unwrap();
        got.len()
    });
    // Let the burst reach the server before pulling the plug.
    std::thread::sleep(Duration::from_millis(150));
    server.shutdown();
    assert_eq!(handle.join().unwrap(), 8, "drained replies must all arrive");

    assert!(
        NetClient::connect(addr, ClientConfig::default()).is_err(),
        "listener must be closed after shutdown"
    );
}

/// Disabling coalescing still answers identically (it is an optimization,
/// not a semantic switch).
#[test]
fn coalescing_disabled_is_equivalent() {
    let (server, crs) = serve(2, false);
    let mut client = connect(&server);
    let mut symbols = client.symbols().unwrap();
    let queries: Vec<Term> = (0..6)
        .map(|i| parse_term(&format!("item(k{i}, X)"), &mut symbols).unwrap())
        .collect();
    let networked = client
        .retrieve_pipelined(&queries, SearchMode::TwoStage)
        .unwrap();
    for (query, got) in queries.iter().zip(&networked) {
        assert_eq!(got, &crs.retrieve(query, SearchMode::TwoStage));
    }
    assert_eq!(crs.stats().batches, 0, "coalescing was disabled");
    server.shutdown();
}
