//! Fixed-width codewords and the key-hashing scheme.
//!
//! A key (an argument value, tagged with its position) is hashed to
//! `bits_per_key` pseudo-random bit positions which are OR-ed into the
//! codeword — classic superimposed coding. Hashing is deterministic
//! (splitmix64 over a structural fold of the term) so the same value always
//! produces the same pattern, as a hardware PLA encoder would.

use crate::config::ScwConfig;
use clare_term::Term;
use std::fmt;

/// A codeword of up to 1024 bits (width fixed by the [`ScwConfig`]).
///
/// # Examples
///
/// ```
/// use clare_scw::{Codeword, ScwConfig};
///
/// let config = ScwConfig::paper();
/// let mut cw = Codeword::zero(&config);
/// cw.set_key(&config, 0xDEADBEEF);
/// assert_eq!(cw.count_ones(), u32::from(config.bits_per_key()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Codeword {
    limbs: Vec<u64>,
    width: u16,
}

impl Codeword {
    /// The all-zero codeword of the configured width.
    pub fn zero(config: &ScwConfig) -> Self {
        let limb_count = (config.width_bits() as usize).div_ceil(64);
        Codeword {
            limbs: vec![0; limb_count],
            width: config.width_bits(),
        }
    }

    /// Width in bits.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Sets the `bits_per_key` positions derived from `key`.
    pub fn set_key(&mut self, config: &ScwConfig, key: u64) {
        let mut state = key;
        for _ in 0..config.bits_per_key() {
            state = splitmix64(state);
            let bit = (state % self.width as u64) as usize;
            self.limbs[bit / 64] |= 1u64 << (bit % 64);
        }
    }

    /// The bit positions a key would set, without mutating anything.
    pub fn key_bits(config: &ScwConfig, key: u64) -> Codeword {
        let mut cw = Codeword::zero(config);
        cw.set_key(config, key);
        cw
    }

    /// OR-merges another codeword into this one.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn merge(&mut self, other: &Codeword) {
        assert_eq!(self.width, other.width, "codeword widths must match");
        for (a, b) in self.limbs.iter_mut().zip(&other.limbs) {
            *a |= b;
        }
    }

    /// True if every set bit of `self` is also set in `other` — the
    /// superimposed-coding inclusion test.
    pub fn subset_of(&self, other: &Codeword) -> bool {
        self.limbs
            .iter()
            .zip(&other.limbs)
            .all(|(a, b)| a & !b == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.limbs.iter().map(|l| l.count_ones()).sum()
    }

    /// True if no bits are set.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Serialized size in bytes (the last byte is partial when the width
    /// is not a multiple of 8).
    pub fn byte_len(&self) -> usize {
        (self.width as usize).div_ceil(8)
    }

    /// Raw limbs (little-endian bit order within the word).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Rebuilds a codeword from raw limbs (the packed index stores limbs
    /// columnar and reconstructs signatures on demand).
    pub(crate) fn from_raw(width: u16, limbs: Vec<u64>) -> Codeword {
        debug_assert_eq!(limbs.len(), (width as usize).div_ceil(64));
        Codeword { limbs, width }
    }
}

impl fmt::Display for Codeword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for limb in self.limbs.iter().rev() {
            write!(f, "{limb:016x}")?;
        }
        Ok(())
    }
}

/// splitmix64 — a small, well-distributed, deterministic mixer.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Structural hash of a term, folding tags, symbol offsets, and values.
/// Only meaningful for ground terms (callers guard); variables hash as a
/// fixed sentinel so the function is total.
pub fn hash_term(term: &Term) -> u64 {
    fn fold(term: &Term, acc: u64) -> u64 {
        match term {
            Term::Atom(s) => splitmix64(acc ^ 0xA100_0000_0000_0000 ^ s.offset() as u64),
            Term::Int(v) => splitmix64(acc ^ 0x1200_0000_0000_0000 ^ *v as u64),
            Term::Float(id) => splitmix64(acc ^ 0xF300_0000_0000_0000 ^ id.offset() as u64),
            Term::Var(_) | Term::Anon => splitmix64(acc ^ 0x7A00_0000_0000_0000),
            Term::Struct { functor, args } => {
                let mut h = splitmix64(
                    acc ^ 0x5700_0000_0000_0000
                        ^ ((functor.offset() as u64) << 8)
                        ^ args.len() as u64,
                );
                for a in args {
                    h = fold(a, h);
                }
                h
            }
            Term::List { items, tail } => {
                let mut h = splitmix64(acc ^ 0x4C00_0000_0000_0000 ^ items.len() as u64);
                for i in items {
                    h = fold(i, h);
                }
                if let Some(t) = tail {
                    h = fold(t, splitmix64(h ^ 0x7E));
                }
                h
            }
        }
    }
    fold(term, 0x0BAD_5EED_CAFE_F00D)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_term::parser::parse_term;
    use clare_term::SymbolTable;

    fn cfg() -> ScwConfig {
        ScwConfig::paper()
    }

    #[test]
    fn set_key_is_deterministic() {
        let c = cfg();
        let a = Codeword::key_bits(&c, 42);
        let b = Codeword::key_bits(&c, 42);
        assert_eq!(a, b);
        assert!(a.count_ones() >= 1);
        assert!(a.count_ones() <= c.bits_per_key() as u32);
    }

    #[test]
    fn different_keys_usually_differ() {
        let c = cfg();
        let mut distinct = 0;
        for k in 0..100u64 {
            if Codeword::key_bits(&c, k) != Codeword::key_bits(&c, k + 1000) {
                distinct += 1;
            }
        }
        assert!(distinct > 90, "hashing must spread keys: {distinct}/100");
    }

    #[test]
    fn subset_and_merge() {
        let c = cfg();
        let a = Codeword::key_bits(&c, 1);
        let b = Codeword::key_bits(&c, 2);
        let mut merged = a.clone();
        merged.merge(&b);
        assert!(a.subset_of(&merged));
        assert!(b.subset_of(&merged));
        assert!(Codeword::zero(&c).subset_of(&merged));
        assert!(merged.subset_of(&merged));
        if !b.subset_of(&a) {
            assert!(!merged.subset_of(&a));
        }
    }

    #[test]
    fn wide_codewords_span_limbs() {
        let c = ScwConfig::custom(128, 8, 12);
        let mut cw = Codeword::zero(&c);
        assert_eq!(cw.limbs().len(), 2);
        for k in 0..64 {
            cw.set_key(&c, k);
        }
        assert!(
            cw.limbs()[0] != 0 && cw.limbs()[1] != 0,
            "bits land in both limbs"
        );
    }

    #[test]
    fn term_hash_structural() {
        let mut sy = SymbolTable::new();
        let a1 = parse_term("f(a, [1, 2])", &mut sy).unwrap();
        let a2 = parse_term("f(a, [1, 2])", &mut sy).unwrap();
        let b = parse_term("f(a, [1, 3])", &mut sy).unwrap();
        let c = parse_term("f(a, [1, 2 | T])", &mut sy).unwrap();
        assert_eq!(hash_term(&a1), hash_term(&a2));
        assert_ne!(hash_term(&a1), hash_term(&b));
        assert_ne!(hash_term(&a1), hash_term(&c), "tail changes the hash");
    }

    #[test]
    fn order_sensitivity() {
        let mut sy = SymbolTable::new();
        let ab = parse_term("f(a, b)", &mut sy).unwrap();
        let ba = parse_term("f(b, a)", &mut sy).unwrap();
        assert_ne!(hash_term(&ab), hash_term(&ba));
    }

    #[test]
    fn byte_len_rounds_up_for_unaligned_widths() {
        // Regression: width/8 truncated, so a 65-bit codeword claimed 8
        // bytes and its 65th bit fell outside the serialized form.
        for (width, expected) in [(8u16, 1usize), (64, 8), (65, 9), (71, 9), (72, 9), (1, 1)] {
            let cw = Codeword::zero(&ScwConfig::custom(width, 1, 1));
            assert_eq!(cw.byte_len(), expected, "width {width}");
        }
    }

    #[test]
    #[should_panic(expected = "widths must match")]
    fn merging_mismatched_widths_panics() {
        let mut a = Codeword::zero(&ScwConfig::custom(64, 3, 12));
        let b = Codeword::zero(&ScwConfig::custom(128, 3, 12));
        a.merge(&b);
    }
}
