//! Ablations of the design choices DESIGN.md calls out:
//!
//! * codeword width and bits-per-key (index size vs selectivity cost);
//! * double-buffered vs unbuffered streaming (the overlap the Double
//!   Buffer exists for);
//! * the 12-argument encoding limit.

use clare_disk::SimNanos;
use clare_fs2::buffer::pipeline_time;
use clare_scw::{encode_clause_signature, encode_query_descriptor, ScwConfig};
use clare_term::parser::parse_term;
use clare_term::SymbolTable;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_codeword_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("scw_width");
    for width in [16u16, 64, 256] {
        let config = ScwConfig::custom(width, 3, 12);
        let mut symbols = SymbolTable::new();
        let signatures: Vec<_> = (0..2000)
            .map(|i| {
                let head = parse_term(&format!("p(k{i}, v{})", i % 97), &mut symbols).unwrap();
                encode_clause_signature(&head, &config)
            })
            .collect();
        let query = parse_term("p(k55, X)", &mut symbols).unwrap();
        let descriptor = encode_query_descriptor(&query, &config);
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| {
                let hits = signatures.iter().filter(|s| descriptor.matches(s)).count();
                black_box(hits)
            })
        });
    }
    group.finish();
}

fn bench_bits_per_key(c: &mut Criterion) {
    let mut group = c.benchmark_group("scw_bits_per_key");
    for bits in [1u8, 3, 8] {
        let config = ScwConfig::custom(64, bits, 12);
        let mut symbols = SymbolTable::new();
        let head = parse_term("p(k1, f(g(a)), [1, 2], 3.5)", &mut symbols).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| black_box(encode_clause_signature(black_box(&head), &config)))
        });
    }
    group.finish();
}

fn bench_buffering(c: &mut Criterion) {
    // 200 clauses with varied transfer/match times: double buffering takes
    // max() per step, a single buffer takes the sum. The bench measures
    // the model evaluation; the printed comparison is the design insight.
    let stages: Vec<(SimNanos, SimNanos)> = (0..200)
        .map(|i| {
            (
                SimNanos::from_ns(2_000 + (i % 7) * 300),
                SimNanos::from_ns(1_000 + (i % 11) * 400),
            )
        })
        .collect();
    let mut group = c.benchmark_group("buffering");
    group.bench_function("double_buffer_pipeline", |b| {
        b.iter(|| black_box(pipeline_time(black_box(&stages))))
    });
    group.bench_function("single_buffer_sum", |b| {
        b.iter(|| {
            let total: SimNanos = stages.iter().map(|(t, p)| *t + *p).sum();
            black_box(total)
        })
    });
    group.finish();
}

fn bench_encoded_args_limit(c: &mut Criterion) {
    let mut group = c.benchmark_group("scw_encoded_args");
    let mut symbols = SymbolTable::new();
    let args: Vec<String> = (0..16).map(|i| format!("a{i}")).collect();
    let head = parse_term(&format!("p({})", args.join(", ")), &mut symbols).unwrap();
    for limit in [4usize, 12, 16] {
        let config = ScwConfig::custom(64, 3, limit);
        group.bench_with_input(BenchmarkId::from_parameter(limit), &limit, |b, _| {
            b.iter(|| black_box(encode_clause_signature(black_box(&head), &config)))
        });
    }
    group.finish();
}

/// Short measurement windows keep the full suite fast while staying
/// statistically useful.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_codeword_width, bench_bits_per_key, bench_buffering, bench_encoded_args_limit
}
criterion_main!(benches);
