//! Building knowledge bases: consult source text or add clauses
//! programmatically, then compile every predicate to its clause file and
//! secondary index.

use crate::arena::ClauseArena;
use crate::predicate::{KnowledgeBase, Module, ModuleKind, Predicate};
use clare_disk::{DiskProfile, FileBuilder};
use clare_pif::ClauseRecord;
use clare_scw::{ClauseAddr, IndexFile, ScwConfig};
use clare_term::parser::{parse_program, ParseError};
use clare_term::{Clause, Symbol, SymbolTable};
use std::collections::HashMap;
use std::fmt;

/// Compilation parameters.
#[derive(Debug, Clone)]
pub struct KbConfig {
    /// Disk whose track geometry lays out the clause files.
    pub disk: DiskProfile,
    /// SCW+MB scheme for the secondary files.
    pub scw: ScwConfig,
    /// Modules whose compiled size exceeds this many bytes are classified
    /// [`ModuleKind::Large`] (disk resident). The default, 64 KB, keeps
    /// toy modules in memory and pushes anything substantial to disk.
    pub large_module_threshold: usize,
}

impl Default for KbConfig {
    fn default() -> Self {
        KbConfig {
            disk: DiskProfile::fujitsu_m2351a(),
            scw: ScwConfig::paper(),
            large_module_threshold: 64 * 1024,
        }
    }
}

/// Errors while building a knowledge base.
#[derive(Debug)]
pub enum KbError {
    /// Source text failed to parse.
    Parse(ParseError),
    /// A clause could not be compiled to PIF.
    Pif(clare_pif::PifError),
    /// A clause record exceeds one disk track.
    RecordTooLarge(clare_disk::RecordTooLargeError),
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::Parse(e) => write!(f, "parse error: {e}"),
            KbError::Pif(e) => write!(f, "PIF compilation error: {e}"),
            KbError::RecordTooLarge(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for KbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KbError::Parse(e) => Some(e),
            KbError::Pif(e) => Some(e),
            KbError::RecordTooLarge(e) => Some(e),
        }
    }
}

impl From<ParseError> for KbError {
    fn from(e: ParseError) -> Self {
        KbError::Parse(e)
    }
}

impl From<clare_pif::PifError> for KbError {
    fn from(e: clare_pif::PifError) -> Self {
        KbError::Pif(e)
    }
}

impl From<clare_disk::RecordTooLargeError> for KbError {
    fn from(e: clare_disk::RecordTooLargeError) -> Self {
        KbError::RecordTooLarge(e)
    }
}

/// Accumulates clauses module by module, then compiles.
///
/// # Examples
///
/// ```
/// use clare_kb::{KbBuilder, KbConfig};
///
/// let mut b = KbBuilder::new();
/// b.consult("m", "p(a). p(b).")?;
/// let kb = b.finish(KbConfig::default());
/// assert_eq!(kb.modules().len(), 1);
/// # Ok::<(), clare_kb::KbError>(())
/// ```
#[derive(Debug, Default)]
pub struct KbBuilder {
    symbols: SymbolTable,
    modules: Vec<(String, Vec<Clause>)>,
    module_index: HashMap<String, usize>,
}

impl KbBuilder {
    /// An empty builder with a fresh symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The symbol table being populated (e.g. for building query terms in
    /// the same namespace).
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// Parses `source` and adds its clauses to `module` (created on first
    /// use), preserving order.
    ///
    /// # Errors
    ///
    /// Returns [`KbError::Parse`] on malformed source.
    pub fn consult(&mut self, module: &str, source: &str) -> Result<(), KbError> {
        let clauses = parse_program(source, &mut self.symbols)?;
        let slot = self.module_slot(module);
        self.modules[slot].1.extend(clauses);
        Ok(())
    }

    /// Adds one already-built clause to `module`.
    pub fn add_clause(&mut self, module: &str, clause: Clause) {
        let slot = self.module_slot(module);
        self.modules[slot].1.push(clause);
    }

    fn module_slot(&mut self, module: &str) -> usize {
        if let Some(&i) = self.module_index.get(module) {
            return i;
        }
        let i = self.modules.len();
        self.modules.push((module.to_owned(), Vec::new()));
        self.module_index.insert(module.to_owned(), i);
        i
    }

    /// Compiles everything: groups clauses into predicates (preserving
    /// clause order within each), lays each predicate's records onto disk
    /// tracks, and builds its secondary index.
    ///
    /// Clauses that fail PIF compilation are skipped with a debug
    /// assertion; use [`Self::try_finish`] to surface the error.
    pub fn finish(self, config: KbConfig) -> KnowledgeBase {
        self.try_finish(config).expect("clauses compile to PIF")
    }

    /// Fallible variant of [`Self::finish`].
    ///
    /// # Errors
    ///
    /// Returns the first PIF or layout error encountered.
    pub fn try_finish(self, config: KbConfig) -> Result<KnowledgeBase, KbError> {
        let mut modules = Vec::new();
        let mut by_indicator = HashMap::new();
        for (mi, (name, clauses)) in self.modules.into_iter().enumerate() {
            // Group into predicates, preserving first-seen order.
            let mut order: Vec<(Symbol, usize)> = Vec::new();
            let mut grouped: HashMap<(Symbol, usize), Vec<Clause>> = HashMap::new();
            for clause in clauses {
                let key = clause.predicate();
                if !grouped.contains_key(&key) {
                    order.push(key);
                }
                grouped.entry(key).or_default().push(clause);
            }
            let mut predicates = Vec::new();
            for (pi, key) in order.iter().enumerate() {
                let clauses = grouped.remove(key).expect("grouped by key");
                let predicate = compile_predicate(*key, clauses, &config)?;
                by_indicator.insert(*key, (mi, pi));
                predicates.push(predicate);
            }
            let mut module = Module {
                name,
                kind: ModuleKind::Small,
                predicates,
            };
            if module.compiled_bytes() > config.large_module_threshold {
                module.kind = ModuleKind::Large;
            }
            modules.push(module);
        }
        Ok(KnowledgeBase {
            symbols: self.symbols,
            modules,
            by_indicator,
        })
    }
}

fn compile_predicate(
    (functor, arity): (Symbol, usize),
    clauses: Vec<Clause>,
    config: &KbConfig,
) -> Result<Predicate, KbError> {
    let mut file_builder = FileBuilder::new(config.disk.track_bytes());
    let mut index = IndexFile::with_capacity(config.scw, clauses.len());
    let mut addrs = Vec::with_capacity(clauses.len());
    let mut arena = ClauseArena::default();
    let mut id_by_addr = HashMap::with_capacity(clauses.len());
    // Track layout mirrors FileBuilder's first-fit so addresses line up.
    let mut track = 0u32;
    let mut slot = 0u16;
    let mut used = 0usize;
    for (i, clause) in clauses.iter().enumerate() {
        let record = ClauseRecord::compile(clause)?;
        let bytes = record.to_bytes();
        if used + bytes.len() > config.disk.track_bytes() && used > 0 {
            track += 1;
            slot = 0;
            used = 0;
        }
        file_builder.append_record(&bytes)?;
        let addr = ClauseAddr::new(track, slot);
        index.insert(clause.head(), addr);
        addrs.push(addr);
        // The head stream is already decoded here — capture it so
        // retrievals never re-parse record bytes.
        arena.push_clause(track as usize, record.head_stream().words());
        id_by_addr.insert(addr, i);
        used += bytes.len();
        slot += 1;
    }
    Ok(Predicate {
        functor,
        arity,
        clauses,
        file: file_builder.finish(format!("pred_{}_{arity}.pdb", functor.offset())),
        index,
        addrs,
        arena,
        id_by_addr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_agree_with_file_layout() {
        let mut b = KbBuilder::new();
        let facts: Vec<String> = (0..2000).map(|i| format!("big(k{i}, v{i}).")).collect();
        b.consult("m", &facts.join("\n")).unwrap();
        let kb = b.finish(KbConfig::default());
        let p = kb.lookup("big", 2).unwrap();
        assert!(p.file().track_count() > 1, "spans multiple tracks");
        // Every address must point at the right record.
        for (i, addr) in p.addrs().iter().enumerate() {
            let record = p.record_at(*addr);
            let (decoded, _) = clare_pif::ClauseRecord::from_bytes(record).unwrap();
            assert_eq!(
                decoded.clause(),
                &p.clauses()[i],
                "address {addr} for clause {i}"
            );
        }
    }

    #[test]
    fn small_and_large_module_classification() {
        let mut b = KbBuilder::new();
        b.consult("tiny", "p(a).").unwrap();
        let facts: Vec<String> = (0..5000).map(|i| format!("q(k{i}, data{i}).")).collect();
        b.consult("huge", &facts.join("\n")).unwrap();
        let kb = b.finish(KbConfig::default());
        assert_eq!(kb.modules()[0].kind(), ModuleKind::Small);
        assert_eq!(kb.modules()[1].kind(), ModuleKind::Large);
    }

    #[test]
    fn consult_accumulates_across_calls() {
        let mut b = KbBuilder::new();
        b.consult("m", "p(a).").unwrap();
        b.consult("m", "p(b). q(c).").unwrap();
        let kb = b.finish(KbConfig::default());
        assert_eq!(kb.modules().len(), 1);
        assert_eq!(kb.lookup("p", 1).unwrap().clauses().len(), 2);
        assert_eq!(kb.lookup("q", 1).unwrap().clauses().len(), 1);
    }

    #[test]
    fn parse_errors_surface() {
        let mut b = KbBuilder::new();
        assert!(matches!(b.consult("m", "p(a"), Err(KbError::Parse(_))));
    }

    #[test]
    fn pif_errors_surface_in_try_finish() {
        let mut b = KbBuilder::new();
        b.consult("m", "p(999999999999).").unwrap();
        assert!(matches!(
            b.try_finish(KbConfig::default()),
            Err(KbError::Pif(_))
        ));
    }

    #[test]
    fn add_clause_programmatically() {
        let mut b = KbBuilder::new();
        let mut builder_scope = clare_term::builder::TermBuilder::new(b.symbols_mut());
        let args = vec![builder_scope.atom("x"), builder_scope.int(1)];
        let fact = builder_scope.fact("p", args);
        b.add_clause("m", fact);
        let kb = b.finish(KbConfig::default());
        assert_eq!(kb.lookup("p", 2).unwrap().clauses().len(), 1);
    }
}
