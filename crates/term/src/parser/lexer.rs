//! Tokenizer for the Edinburgh-syntax subset.

use std::fmt;

/// A lexical token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token.
    pub offset: usize,
}

/// Token kinds produced by [`Lexer`].
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Unquoted lowercase atom or quoted atom.
    Atom(String),
    /// Variable name (initial uppercase or `_`); the bare `_` is the
    /// anonymous variable.
    Var(String),
    /// Integer literal (possibly negative).
    Int(i64),
    /// Float literal (possibly negative).
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `|`
    Bar,
    /// Clause terminator `.`
    Dot,
    /// Rule neck `:-`
    Neck,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Atom(a) => write!(f, "atom `{a}`"),
            TokenKind::Var(v) => write!(f, "variable `{v}`"),
            TokenKind::Int(i) => write!(f, "integer `{i}`"),
            TokenKind::Float(x) => write!(f, "float `{x}`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::LBracket => f.write_str("`[`"),
            TokenKind::RBracket => f.write_str("`]`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Bar => f.write_str("`|`"),
            TokenKind::Dot => f.write_str("`.`"),
            TokenKind::Neck => f.write_str("`:-`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where the error was detected.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lexical error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Streaming tokenizer over a source string.
#[derive(Debug)]
pub struct Lexer<'src> {
    src: &'src [u8],
    pos: usize,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'src str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenizes the whole input, appending a final [`TokenKind::Eof`].
    ///
    /// # Errors
    ///
    /// Returns a [`LexError`] on unterminated quotes or comments, malformed
    /// numbers, or characters outside the supported subset.
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let offset = self.pos;
            let Some(&c) = self.src.get(self.pos) else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    offset,
                });
                return Ok(out);
            };
            let kind = match c {
                b'(' => {
                    self.pos += 1;
                    TokenKind::LParen
                }
                b')' => {
                    self.pos += 1;
                    TokenKind::RParen
                }
                b'[' => {
                    self.pos += 1;
                    TokenKind::LBracket
                }
                b']' => {
                    self.pos += 1;
                    TokenKind::RBracket
                }
                b',' => {
                    self.pos += 1;
                    TokenKind::Comma
                }
                b'|' => {
                    self.pos += 1;
                    TokenKind::Bar
                }
                b'.' => {
                    self.pos += 1;
                    TokenKind::Dot
                }
                b':' => {
                    if self.src.get(self.pos + 1) == Some(&b'-') {
                        self.pos += 2;
                        TokenKind::Neck
                    } else {
                        return Err(self.error("expected `:-`"));
                    }
                }
                b'\'' => self.quoted_atom()?,
                b'-' => {
                    if self.src.get(self.pos + 1).is_some_and(u8::is_ascii_digit) {
                        self.pos += 1;
                        self.number(true)?
                    } else {
                        return Err(self.error("`-` is only supported before a number literal"));
                    }
                }
                b'0'..=b'9' => self.number(false)?,
                b'a'..=b'z' => self.bare_atom(),
                b'A'..=b'Z' | b'_' => self.variable(),
                other => {
                    return Err(
                        self.error(&format!("unsupported character `{}`", char::from(other)))
                    )
                }
            };
            out.push(Token { kind, offset });
        }
    }

    fn error(&self, message: &str) -> LexError {
        LexError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.src.get(self.pos) {
                Some(c) if c.is_ascii_whitespace() => self.pos += 1,
                Some(b'%') => {
                    while let Some(&c) = self.src.get(self.pos) {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.src.get(self.pos), self.src.get(self.pos + 1)) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(LexError {
                                    message: "unterminated block comment".into(),
                                    offset: start,
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn take_while(&mut self, pred: impl Fn(u8) -> bool) -> &'src str {
        let start = self.pos;
        while self.src.get(self.pos).is_some_and(|&c| pred(c)) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos]).expect("ASCII subset")
    }

    fn bare_atom(&mut self) -> TokenKind {
        let text = self.take_while(|c| c.is_ascii_alphanumeric() || c == b'_');
        TokenKind::Atom(text.to_owned())
    }

    fn variable(&mut self) -> TokenKind {
        let text = self.take_while(|c| c.is_ascii_alphanumeric() || c == b'_');
        TokenKind::Var(text.to_owned())
    }

    fn quoted_atom(&mut self) -> Result<TokenKind, LexError> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut text = String::new();
        loop {
            match self.src.get(self.pos) {
                Some(b'\'') => {
                    if self.src.get(self.pos + 1) == Some(&b'\'') {
                        text.push('\'');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok(TokenKind::Atom(text));
                    }
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.src.get(self.pos).copied().ok_or_else(|| LexError {
                        message: "unterminated escape".into(),
                        offset: start,
                    })?;
                    text.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'\\' => '\\',
                        b'\'' => '\'',
                        other => {
                            return Err(LexError {
                                message: format!("unknown escape `\\{}`", char::from(other)),
                                offset: self.pos,
                            })
                        }
                    });
                    self.pos += 1;
                }
                Some(&c) => {
                    text.push(char::from(c));
                    self.pos += 1;
                }
                None => {
                    return Err(LexError {
                        message: "unterminated quoted atom".into(),
                        offset: start,
                    })
                }
            }
        }
    }

    fn number(&mut self, negative: bool) -> Result<TokenKind, LexError> {
        let int_part = self.take_while(|c| c.is_ascii_digit());
        // A float has `digits.digits` and/or an exponent; a lone `.` after
        // digits is the clause terminator, so only consume it when a digit
        // follows.
        let has_fraction = self.src.get(self.pos) == Some(&b'.')
            && self.src.get(self.pos + 1).is_some_and(u8::is_ascii_digit);
        let mut text = int_part.to_owned();
        if has_fraction {
            self.pos += 1;
            let frac_part = self.take_while(|c| c.is_ascii_digit());
            text.push('.');
            text.push_str(frac_part);
        }
        let has_exponent = matches!(self.src.get(self.pos), Some(b'e' | b'E'))
            && match (self.src.get(self.pos + 1), self.src.get(self.pos + 2)) {
                (Some(d), _) if d.is_ascii_digit() => true,
                (Some(b'+' | b'-'), Some(d)) if d.is_ascii_digit() => true,
                _ => false,
            };
        if has_exponent {
            text.push('e');
            self.pos += 1;
            if matches!(self.src.get(self.pos), Some(b'+' | b'-')) {
                text.push(char::from(self.src[self.pos]));
                self.pos += 1;
            }
            text.push_str(self.take_while(|c| c.is_ascii_digit()));
        }
        if has_fraction || has_exponent {
            let mut value: f64 = text.parse().map_err(|_| self.error("malformed float"))?;
            if negative {
                value = -value;
            }
            Ok(TokenKind::Float(value))
        } else {
            let mut value: i64 = text
                .parse()
                .map_err(|_| self.error("integer literal out of range"))?;
            if negative {
                value = -value;
            }
            Ok(TokenKind::Int(value))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .expect("test input lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn punctuation_and_atoms() {
        assert_eq!(
            lex("f(a, B)."),
            vec![
                TokenKind::Atom("f".into()),
                TokenKind::LParen,
                TokenKind::Atom("a".into()),
                TokenKind::Comma,
                TokenKind::Var("B".into()),
                TokenKind::RParen,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn neck_and_lists() {
        assert_eq!(
            lex("p :- [X|T]."),
            vec![
                TokenKind::Atom("p".into()),
                TokenKind::Neck,
                TokenKind::LBracket,
                TokenKind::Var("X".into()),
                TokenKind::Bar,
                TokenKind::Var("T".into()),
                TokenKind::RBracket,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            lex("1 -2 3.5 -4.25"),
            vec![
                TokenKind::Int(1),
                TokenKind::Int(-2),
                TokenKind::Float(3.5),
                TokenKind::Float(-4.25),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn exponent_floats() {
        assert_eq!(
            lex("1.5e10 2e-3 7E+2 -2.5e-1"),
            vec![
                TokenKind::Float(1.5e10),
                TokenKind::Float(2e-3),
                TokenKind::Float(7e2),
                TokenKind::Float(-0.25),
                TokenKind::Eof,
            ]
        );
        // `e` not followed by an exponent stays an atom boundary:
        // `2elephants` lexes as int 2 then atom.
        assert_eq!(
            lex("2elephants"),
            vec![
                TokenKind::Int(2),
                TokenKind::Atom("elephants".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn integer_then_clause_dot() {
        // `f(1).` — the dot terminates the clause, it is not a float.
        assert_eq!(
            lex("1."),
            vec![TokenKind::Int(1), TokenKind::Dot, TokenKind::Eof]
        );
    }

    #[test]
    fn quoted_atoms_with_escapes() {
        assert_eq!(
            lex("'hello world' 'it''s' 'a\\nb'"),
            vec![
                TokenKind::Atom("hello world".into()),
                TokenKind::Atom("it's".into()),
                TokenKind::Atom("a\nb".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            lex("a % line comment\n /* block */ b"),
            vec![
                TokenKind::Atom("a".into()),
                TokenKind::Atom("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn underscore_variables() {
        assert_eq!(
            lex("_ _Tail"),
            vec![
                TokenKind::Var("_".into()),
                TokenKind::Var("_Tail".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Lexer::new("abc $").tokenize().unwrap_err();
        assert_eq!(err.offset, 4);
        let err = Lexer::new("'open").tokenize().unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        assert!(Lexer::new("/* never closed").tokenize().is_err());
    }
}
