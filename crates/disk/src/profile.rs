//! Disk drive profiles: geometry plus timing.
//!
//! Two presets model the drives the paper names for the SUN3/160 target
//! (§4): the SCSI **Micropolis 1325** and the SMD **Fujitsu M2351A**
//! ("Eagle"). Figures are drawn from period data sheets where available and
//! chosen to land on the paper's operating points: the Fujitsu, "tuned to
//! operate at its peak rate", sustains circa 2 MB/s; the SCSI drive is
//! slower.

use crate::time::{ByteRate, SimNanos};
use std::fmt;

/// A disk drive model: geometry and timing parameters.
///
/// # Examples
///
/// ```
/// use clare_disk::DiskProfile;
///
/// let eagle = DiskProfile::fujitsu_m2351a();
/// assert!((eagle.sustained_rate().as_mb_per_sec() - 2.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiskProfile {
    name: &'static str,
    track_bytes: usize,
    tracks_per_cylinder: u32,
    cylinders: u32,
    rpm: u32,
    sustained_rate: ByteRate,
    avg_seek: SimNanos,
    track_to_track_seek: SimNanos,
}

impl DiskProfile {
    /// The SMD Fujitsu M2351A "Eagle": the faster option the paper assumes
    /// when arguing the FS2 filter outruns the disk. ~474 MB formatted,
    /// 20 data heads, peak-tuned sustained transfer ≈ 2 MB/s.
    pub fn fujitsu_m2351a() -> Self {
        DiskProfile {
            name: "Fujitsu M2351A (SMD)",
            track_bytes: 20 * 1024,
            tracks_per_cylinder: 20,
            cylinders: 842,
            rpm: 3961,
            sustained_rate: ByteRate::from_mb_per_sec(2.0),
            avg_seek: SimNanos::from_millis(18),
            track_to_track_seek: SimNanos::from_millis(5),
        }
    }

    /// The SCSI Micropolis 1325: the slower option. ~69 MB formatted,
    /// 8 heads, ~1 MB/s sustained over SCSI.
    pub fn micropolis_1325() -> Self {
        DiskProfile {
            name: "Micropolis 1325 (SCSI)",
            track_bytes: 16 * 1024,
            tracks_per_cylinder: 8,
            cylinders: 1024,
            rpm: 3600,
            sustained_rate: ByteRate::from_mb_per_sec(1.0),
            avg_seek: SimNanos::from_millis(28),
            track_to_track_seek: SimNanos::from_millis(6),
        }
    }

    /// A custom profile.
    ///
    /// # Panics
    ///
    /// Panics if any geometry parameter is zero.
    #[allow(clippy::too_many_arguments)] // one parameter per datasheet field
    pub fn custom(
        name: &'static str,
        track_bytes: usize,
        tracks_per_cylinder: u32,
        cylinders: u32,
        rpm: u32,
        sustained_rate: ByteRate,
        avg_seek: SimNanos,
        track_to_track_seek: SimNanos,
    ) -> Self {
        assert!(track_bytes > 0, "track size must be positive");
        assert!(
            tracks_per_cylinder > 0 && cylinders > 0,
            "geometry must be positive"
        );
        assert!(rpm > 0, "rpm must be positive");
        DiskProfile {
            name,
            track_bytes,
            tracks_per_cylinder,
            cylinders,
            rpm,
            sustained_rate,
            avg_seek,
            track_to_track_seek,
        }
    }

    /// Human-readable drive name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Formatted bytes per track.
    pub fn track_bytes(&self) -> usize {
        self.track_bytes
    }

    /// Data heads (= tracks per cylinder).
    pub fn tracks_per_cylinder(&self) -> u32 {
        self.tracks_per_cylinder
    }

    /// Number of cylinders.
    pub fn cylinders(&self) -> u32 {
        self.cylinders
    }

    /// Total formatted capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.track_bytes as u64 * self.tracks_per_cylinder as u64 * self.cylinders as u64
    }

    /// Sustained sequential transfer rate.
    pub fn sustained_rate(&self) -> ByteRate {
        self.sustained_rate
    }

    /// Average seek time.
    pub fn avg_seek(&self) -> SimNanos {
        self.avg_seek
    }

    /// Adjacent-cylinder seek time.
    pub fn track_to_track_seek(&self) -> SimNanos {
        self.track_to_track_seek
    }

    /// One platter revolution.
    pub fn rotation_period(&self) -> SimNanos {
        SimNanos::from_secs_f64(60.0 / self.rpm as f64)
    }

    /// Average rotational latency (half a revolution).
    pub fn avg_rotational_latency(&self) -> SimNanos {
        SimNanos::from_ns(self.rotation_period().as_ns() / 2)
    }

    /// Time to transfer one full track at the sustained rate.
    pub fn track_transfer_time(&self) -> SimNanos {
        self.sustained_rate.transfer_time(self.track_bytes as u64)
    }

    /// Time to read `n_tracks` sequentially starting from a random
    /// position: one average seek, one average rotational latency, the
    /// track transfers, and a cylinder-to-cylinder seek whenever a cylinder
    /// boundary is crossed.
    pub fn sequential_read_time(&self, n_tracks: u64) -> SimNanos {
        if n_tracks == 0 {
            return SimNanos::ZERO;
        }
        let cylinder_crossings = (n_tracks - 1) / self.tracks_per_cylinder as u64;
        self.avg_seek
            + self.avg_rotational_latency()
            + self.track_transfer_time() * n_tracks
            + self.track_to_track_seek * cylinder_crossings
    }
}

impl fmt::Display for DiskProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} — {:.0} MB, {} B/track, {} heads, {} cyl, {} rpm, {}",
            self.name,
            self.capacity_bytes() as f64 / 1e6,
            self.track_bytes,
            self.tracks_per_cylinder,
            self.cylinders,
            self.rpm,
            self.sustained_rate,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eagle_matches_paper_operating_point() {
        let d = DiskProfile::fujitsu_m2351a();
        assert!((d.sustained_rate().as_mb_per_sec() - 2.0).abs() < 1e-9);
        // Capacity in the hundreds of MB (the real Eagle was ~474 MB).
        assert!(d.capacity_bytes() > 300_000_000);
        assert!(d.capacity_bytes() < 600_000_000);
    }

    #[test]
    fn scsi_is_slower_than_smd() {
        let scsi = DiskProfile::micropolis_1325();
        let smd = DiskProfile::fujitsu_m2351a();
        assert!(scsi.sustained_rate().as_bytes_per_sec() < smd.sustained_rate().as_bytes_per_sec());
    }

    #[test]
    fn rotation_math() {
        let d = DiskProfile::micropolis_1325();
        // 3600 rpm = 60 rps -> 16.67 ms per revolution.
        assert!((d.rotation_period().as_millis_f64() - 16.667).abs() < 0.01);
        assert_eq!(
            d.avg_rotational_latency().as_ns(),
            d.rotation_period().as_ns() / 2
        );
    }

    #[test]
    fn sequential_read_time_components() {
        let d = DiskProfile::fujitsu_m2351a();
        assert_eq!(d.sequential_read_time(0), SimNanos::ZERO);
        let one = d.sequential_read_time(1);
        assert_eq!(
            one,
            d.avg_seek() + d.avg_rotational_latency() + d.track_transfer_time()
        );
        // Reading within one cylinder adds only transfers.
        let five = d.sequential_read_time(5);
        assert_eq!(one + d.track_transfer_time() * 4, five);
        // Crossing a cylinder boundary adds a track-to-track seek.
        let tpc = d.tracks_per_cylinder() as u64;
        let crossing = d.sequential_read_time(tpc + 1);
        assert_eq!(
            crossing,
            d.sequential_read_time(tpc) + d.track_transfer_time() + d.track_to_track_seek()
        );
    }

    #[test]
    fn track_transfer_consistent_with_rate() {
        let d = DiskProfile::fujitsu_m2351a();
        let t = d.track_transfer_time();
        let implied = d.track_bytes() as f64 / t.as_secs_f64();
        assert!((implied - d.sustained_rate().as_bytes_per_sec()).abs() < 1e3);
    }

    #[test]
    #[should_panic(expected = "track size")]
    fn zero_track_rejected() {
        DiskProfile::custom(
            "bad",
            0,
            1,
            1,
            3600,
            ByteRate::from_mb_per_sec(1.0),
            SimNanos::ZERO,
            SimNanos::ZERO,
        );
    }

    #[test]
    fn display_is_informative() {
        let s = DiskProfile::fujitsu_m2351a().to_string();
        assert!(s.contains("Fujitsu"));
        assert!(s.contains("MB/s"));
    }
}
