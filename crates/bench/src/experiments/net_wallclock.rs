//! E17 — serving-core wall-clock: connections × pipelining depth against
//! a live loopback `NetServer`, for both intake cores.
//!
//! The C10K question in numbers: the threaded core spends one OS thread
//! per connection, so its cost grows with the connection count whether or
//! not those connections are busy; the epoll reactor multiplexes every
//! connection over a fixed shard thread. This experiment drives an
//! identical phased workload — every connection pipelines `depth`
//! retrieves, then all replies are collected — across a (mode,
//! connections, depth) matrix and reports sustained throughput plus
//! client-observed completion latency percentiles. The checked-in
//! `BENCH_net.json` includes the reactor at 1024 concurrent connections,
//! a point the per-thread model is never asked to serve.
//!
//! Clients speak the raw wire protocol over plain sockets (no reader
//! threads of their own), so the measured differences come from the
//! server's intake core, not the harness.

use clare_core::{ClauseRetrievalServer, CrsOptions, SearchMode};
use clare_kb::{KbBuilder, KbConfig};
use clare_net::protocol::{
    decode_server_hello, encode_client_hello_caps, encode_retrieve, opcode, BudgetExt, Frame,
    FrameReader, HelloStatus, RetrieveReq, PROTOCOL_VERSION, SERVER_HELLO_LEN,
};
use clare_net::{NetConfig, NetServer, ServerMode};
use clare_term::parser::parse_term;
use clare_term::Term;
use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One point of the measurement matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetCase {
    /// Which intake core serves this case.
    pub mode: ServerMode,
    /// Concurrent connections held open for the whole case.
    pub connections: usize,
    /// Pipelined retrieves in flight per connection per round.
    pub depth: usize,
}

/// One measured case.
#[derive(Debug, Clone, PartialEq)]
pub struct NetWallclockRow {
    /// Intake core name (`"reactor"` / `"threaded"`).
    pub mode: &'static str,
    /// Concurrent connections.
    pub connections: usize,
    /// Pipelining depth per connection.
    pub depth: usize,
    /// Total requests served across the timed rounds.
    pub requests: usize,
    /// Wall-clock for the timed rounds, milliseconds.
    pub elapsed_ms: f64,
    /// Sustained requests per second.
    pub throughput_rps: f64,
    /// Median client-observed completion latency per connection-round,
    /// microseconds (round start → that connection's replies all read).
    pub p50_us: f64,
    /// 99th-percentile completion latency, microseconds.
    pub p99_us: f64,
}

/// The wall-clock report.
#[derive(Debug, Clone, PartialEq)]
pub struct NetWallclockReport {
    /// Facts in the knowledge base every request retrieves against.
    pub facts: usize,
    /// Timed rounds per case.
    pub rounds: usize,
    /// One row per matrix point, in input order.
    pub rows: Vec<NetWallclockRow>,
}

impl NetWallclockReport {
    /// Renders the report as a small JSON document (hand-written — the
    /// workspace deliberately carries no serde dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"net_wallclock\",\n");
        out.push_str("  \"unit\": \"requests_per_second\",\n");
        out.push_str(&format!("  \"facts\": {},\n", self.facts));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"mode\": \"{}\",\n", row.mode));
            out.push_str(&format!("      \"connections\": {},\n", row.connections));
            out.push_str(&format!("      \"depth\": {},\n", row.depth));
            out.push_str(&format!("      \"requests\": {},\n", row.requests));
            out.push_str(&format!("      \"elapsed_ms\": {:.1},\n", row.elapsed_ms));
            out.push_str(&format!(
                "      \"throughput_rps\": {:.0},\n",
                row.throughput_rps
            ));
            out.push_str(&format!("      \"p50_us\": {:.0},\n", row.p50_us));
            out.push_str(&format!("      \"p99_us\": {:.0}\n", row.p99_us));
            out.push_str(if i + 1 == self.rows.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

const KEYS: usize = 120;

fn mode_name(mode: ServerMode) -> &'static str {
    match mode {
        ServerMode::Reactor => "reactor",
        ServerMode::Threaded => "threaded",
    }
}

/// Runs the matrix. Every case serves the same knowledge base and the
/// same per-connection query mix; `rounds` timed rounds follow one
/// untimed warmup round.
pub fn run(cases: &[NetCase], facts: usize, rounds: usize) -> NetWallclockReport {
    let mut b = KbBuilder::new();
    let source: String = (0..facts)
        .map(|i| format!("item(k{}, v{}).", i % KEYS, i % 7))
        .collect::<Vec<_>>()
        .join("\n");
    b.consult("bench", &source).unwrap();
    let kb = b.finish(KbConfig::default());
    let mut symbols = kb.symbols().clone();
    let queries: Vec<Term> = (0..KEYS)
        .map(|k| parse_term(&format!("item(k{k}, X)"), &mut symbols).unwrap())
        .collect();
    let crs = Arc::new(ClauseRetrievalServer::new(kb, CrsOptions::default()));

    let rows = cases
        .iter()
        .map(|&case| run_case(&crs, &queries, case, rounds))
        .collect();
    NetWallclockReport {
        facts,
        rounds,
        rows,
    }
}

fn run_case(
    crs: &Arc<ClauseRetrievalServer>,
    queries: &[Term],
    case: NetCase,
    rounds: usize,
) -> NetWallclockRow {
    let cfg = NetConfig {
        server_mode: case.mode,
        max_connections: case.connections + 16,
        queue_depth: (case.connections * case.depth * 2).max(1024),
        workers: 4,
        ..NetConfig::default()
    };
    let server = NetServer::bind(Arc::clone(crs), "127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();

    // Open the whole connection population and complete hellos.
    let mut conns: Vec<TcpStream> = Vec::with_capacity(case.connections);
    for i in 0..case.connections {
        let mut stream = connect_with_retry(addr);
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream
            .write_all(&encode_client_hello_caps(PROTOCOL_VERSION, 0))
            .unwrap();
        conns.push(stream);
        let _ = i;
    }
    for stream in conns.iter_mut() {
        let mut hello = [0u8; SERVER_HELLO_LEN];
        stream.read_exact(&mut hello).unwrap();
        assert_eq!(
            decode_server_hello(&hello).unwrap().status,
            HelloStatus::Ok,
            "bench connection refused — raise max_connections"
        );
    }

    // Pre-encode each connection's request batch once; ids are reassigned
    // per round, but the payload bytes are identical, so reuse them.
    let payloads: Vec<Vec<u8>> = (0..case.connections)
        .map(|i| {
            let req = RetrieveReq {
                mode: SearchMode::TwoStage,
                deadline_micros: 0,
                budget: BudgetExt::NONE,
                query: queries[i % queries.len()].clone(),
            };
            encode_retrieve(&req)
        })
        .collect();

    let mut latencies_us: Vec<f64> = Vec::with_capacity(case.connections * rounds);
    let mut next_id: u64 = 1;
    let mut elapsed = Duration::ZERO;
    for round in 0..=rounds {
        let timed = round > 0; // round 0 is warmup
        let t0 = Instant::now();
        // Phase 1: every connection pipelines `depth` requests.
        for (i, stream) in conns.iter_mut().enumerate() {
            let mut batch = Vec::new();
            for _ in 0..case.depth {
                batch.extend_from_slice(
                    &Frame::new(next_id, opcode::RETRIEVE, payloads[i].clone()).encoded(),
                );
                next_id += 1;
            }
            stream.write_all(&batch).unwrap();
        }
        // Phase 2: collect every reply, recording per-connection
        // completion latency.
        for stream in conns.iter_mut() {
            let mut fr = FrameReader::new(16 << 20);
            let mut got = 0usize;
            while got < case.depth {
                let frame = fr.read_frame(stream).expect("bench reply stream died");
                assert_eq!(frame.opcode, opcode::RETRIEVE | opcode::REPLY);
                got += 1;
            }
            if timed {
                latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
            }
        }
        if timed {
            elapsed += t0.elapsed();
        }
    }
    drop(conns);
    server.shutdown();

    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pct = |p: f64| -> f64 {
        if latencies_us.is_empty() {
            return 0.0;
        }
        let idx = ((latencies_us.len() as f64 - 1.0) * p).round() as usize;
        latencies_us[idx]
    };
    let requests = case.connections * case.depth * rounds;
    let secs = elapsed.as_secs_f64().max(1e-9);
    NetWallclockRow {
        mode: mode_name(case.mode),
        connections: case.connections,
        depth: case.depth,
        requests,
        elapsed_ms: secs * 1e3,
        throughput_rps: requests as f64 / secs,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    }
}

fn connect_with_retry(addr: std::net::SocketAddr) -> TcpStream {
    for _ in 0..500 {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    panic!("bench client could not connect");
}

impl fmt::Display for NetWallclockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E17: serving-core wall-clock — throughput and completion latency vs \
             connections x pipelining depth ({} facts, {} timed rounds)\n",
            self.facts, self.rounds
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.to_owned(),
                    format!("{}", r.connections),
                    format!("{}", r.depth),
                    format!("{}", r.requests),
                    format!("{:.0}", r.throughput_rps),
                    format!("{:.0}", r.p50_us),
                    format!("{:.0}", r.p99_us),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            crate::render_table(
                &["mode", "conns", "depth", "requests", "req/s", "p50 us", "p99 us",],
                &rows,
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_and_json() {
        let cases = [
            NetCase {
                mode: ServerMode::Reactor,
                connections: 8,
                depth: 2,
            },
            NetCase {
                mode: ServerMode::Threaded,
                connections: 8,
                depth: 2,
            },
        ];
        let r = run(&cases, 600, 2);
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            assert_eq!(row.requests, 8 * 2 * 2);
            assert!(row.throughput_rps > 0.0);
            assert!(row.p50_us > 0.0);
            assert!(row.p99_us >= row.p50_us);
        }
        let json = r.to_json();
        assert!(json.contains("\"experiment\": \"net_wallclock\""));
        assert!(json.contains("\"mode\": \"reactor\""));
        assert!(json.contains("\"mode\": \"threaded\""));
        assert!(format!("{r}").contains("req/s"));
    }
}
