//! Client-side error type for networked retrieval.

use crate::protocol::{ErrorCode, FrameError, WireError};

/// Everything that can go wrong talking to a `clare-net` server.
#[derive(Debug)]
pub enum NetError {
    /// A socket operation failed (connect, read, write, timeout).
    Io(std::io::Error),
    /// The framing layer gave up (length violation or peer close).
    Frame(FrameError),
    /// The peer violated the protocol (bad hello, undecodable payload,
    /// reply for an unknown request id).
    Protocol(String),
    /// The server speaks a different protocol version.
    VersionMismatch {
        /// Version advertised by the server.
        server: u16,
    },
    /// The server refused the connection at its connection limit.
    Busy {
        /// Suggested reconnect delay in milliseconds.
        retry_after_ms: u32,
    },
    /// The server answered the request with an error frame.
    Remote {
        /// Error category.
        code: ErrorCode,
        /// Suggested retry delay in milliseconds (nonzero for
        /// [`ErrorCode::Busy`]).
        retry_after_ms: u32,
        /// Human-readable detail from the server.
        message: String,
    },
}

impl NetError {
    /// The retry-after hint, when the failure is load shedding
    /// (connection-level or request-level busy).
    pub fn retry_after_ms(&self) -> Option<u32> {
        match self {
            NetError::Busy { retry_after_ms } => Some(*retry_after_ms),
            NetError::Remote {
                code: ErrorCode::Busy,
                retry_after_ms,
                ..
            } => Some(*retry_after_ms),
            _ => None,
        }
    }

    /// True when the failure indicates a dead or unusable connection (as
    /// opposed to a per-request error on a healthy connection).
    pub fn is_connection_fatal(&self) -> bool {
        matches!(
            self,
            NetError::Io(_) | NetError::Frame(_) | NetError::Protocol(_)
        )
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network I/O error: {e}"),
            NetError::Frame(e) => write!(f, "framing error: {e}"),
            NetError::Protocol(reason) => write!(f, "protocol violation: {reason}"),
            NetError::VersionMismatch { server } => {
                write!(f, "server speaks protocol version {server}, not ours")
            }
            NetError::Busy { retry_after_ms } => {
                write!(
                    f,
                    "server at connection limit; retry after {retry_after_ms} ms"
                )
            }
            NetError::Remote {
                code,
                retry_after_ms,
                message,
            } => {
                write!(f, "server error: {code}: {message}")?;
                if *retry_after_ms > 0 {
                    write!(f, " (retry after {retry_after_ms} ms)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => NetError::Io(io),
            other => NetError::Frame(other),
        }
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Protocol(e.0)
    }
}
