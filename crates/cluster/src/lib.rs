//! `clare-cluster`: a predicate-sharded cluster of Clause Retrieval
//! Servers.
//!
//! The paper's CRS is one shared engine serving many inference machines;
//! this crate scales that shape *out*: N `clare-served` backends, each
//! holding the full base knowledge base (byte-identical builds, pinned
//! by the hello fingerprint), with the mutable overlay partitioned by
//! predicate. A thin [`Router`] hashes `functor/arity` (FNV-1a) to pick
//! the owning shard; predicates declared *hot* split one level further
//! by their first argument, so a write-heavy predicate spreads over
//! every shard while queries with a bound first argument still touch
//! exactly one backend.
//!
//! Each shard is optionally replicated: the router subscribes to the
//! primary's commit log (`SUBSCRIBE_LOG`), forwards every committed WAL
//! record to the backup (`LOG_FRAME`), and acknowledges applied
//! frontiers back (`REPL_ACK`). Writes are semi-synchronous — the
//! cluster receipt says whether the backup had the write before the ack
//! went out — and failover (manual [`Router::promote`] or automatic via
//! [`Router::tick_health`]) flags answers from a possibly-stale backup
//! as degraded rather than dropping them.
//!
//! The `clare-cluster` binary wraps the router in the same wire
//! protocol the backends speak, so ordinary [`clare_net::NetClient`]s
//! talk to the cluster exactly as they would to one server.

// The router mediates between live network peers; a refused frame or a
// dead backend must degrade, never abort. CI greps for this gate; do
// not remove it.
#![deny(clippy::unwrap_used)]
#![warn(missing_docs)]

pub mod error;
pub mod map;
pub mod router;

pub use error::ClusterError;
pub use map::{Placement, ShardMap, ShardSpec};
pub use router::{merge_retrievals, ClusterReceipt, Router, RouterConfig};
