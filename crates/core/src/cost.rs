//! Software cost model for the host CPU.
//!
//! The paper's target host is a SUN3/160 (M68020 at ~16 MHz, roughly 2
//! MIPS). Search mode (a) — "by software only — the CRS performs all the
//! search operations itself" — and the full-unification stage of every
//! mode run on that host. The constants here model those costs at the
//! instruction-budget level:
//!
//! * a word-level partial-match step in compiled C is a few dozen
//!   instructions (tag dispatch, load, compare, branch) — ~6 µs at 2 MIPS
//!   once memory traffic is included, against the hardware's 95–235 ns;
//! * full unification costs per term node (dereference, trail, branch) —
//!   ~8 µs per node plus a per-clause activation overhead.
//!
//! Absolute values matter less than their *ratio* to the hardware numbers
//! (tens of microseconds vs. ~100 ns, i.e. a factor of 30–60×), which is
//! the regime the paper's motivation describes. Every constant is a knob
//! so the benches can sweep the assumption.

use clare_disk::SimNanos;

/// Per-operation software costs on the host CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftwareCostModel {
    /// One word-level partial-match step (the software analogue of a
    /// Table 1 operation).
    pub partial_op: SimNanos,
    /// Full unification cost per term node visited.
    pub full_unify_per_node: SimNanos,
    /// Per-clause activation overhead (record decode, dispatch).
    pub per_clause_overhead: SimNanos,
}

impl SoftwareCostModel {
    /// The M68020-class host model described in the module docs.
    pub fn m68020() -> Self {
        SoftwareCostModel {
            partial_op: SimNanos::from_micros(6),
            full_unify_per_node: SimNanos::from_micros(8),
            per_clause_overhead: SimNanos::from_micros(20),
        }
    }

    /// A free software model (for isolating disk/hardware effects in
    /// ablation benches).
    pub fn zero() -> Self {
        SoftwareCostModel {
            partial_op: SimNanos::ZERO,
            full_unify_per_node: SimNanos::ZERO,
            per_clause_overhead: SimNanos::ZERO,
        }
    }

    /// Cost of a software partial match that performed `ops` operations.
    pub fn partial_match_cost(&self, ops: usize) -> SimNanos {
        self.partial_op * ops as u64
    }

    /// Cost of fully unifying a query of `query_nodes` against a head of
    /// `head_nodes` (both sides' nodes are visited).
    pub fn full_unify_cost(&self, query_nodes: usize, head_nodes: usize) -> SimNanos {
        self.per_clause_overhead + self.full_unify_per_node * (query_nodes + head_nodes) as u64
    }
}

impl Default for SoftwareCostModel {
    fn default() -> Self {
        Self::m68020()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m68020_is_much_slower_than_hardware() {
        let m = SoftwareCostModel::m68020();
        // The slowest hardware op is 235 ns; software is at least 20× that.
        assert!(m.partial_op.as_ns() > 235 * 20);
    }

    #[test]
    fn costs_scale_linearly() {
        let m = SoftwareCostModel::m68020();
        assert_eq!(m.partial_match_cost(10).as_ns(), 10 * m.partial_op.as_ns());
        let one = m.full_unify_cost(3, 4);
        assert_eq!(one, m.per_clause_overhead + m.full_unify_per_node * 7);
    }

    #[test]
    fn zero_model_is_free() {
        let z = SoftwareCostModel::zero();
        assert_eq!(z.partial_match_cost(100), SimNanos::ZERO);
        assert_eq!(z.full_unify_cost(10, 10), SimNanos::ZERO);
    }
}
