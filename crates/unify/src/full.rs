//! Full unification — the soundness oracle for every filter stage.
//!
//! This is the "complicated process of matching functor and arguments
//! according to certain rules" that the paper's introduction identifies as
//! the query-time bottleneck, implemented conventionally with a binding
//! store and trail. The retrieval engine's contract is defined against this
//! module: any clause accepted here must also be accepted by FS1 and FS2.

use crate::store::{shift_vars, var_span, BindingStore};
use clare_term::Term;

/// Options for [`unify`].
#[derive(Debug, Clone, Copy, Default)]
pub struct UnifyOptions {
    /// Perform the occurs check when binding a variable to a compound term.
    /// Standard Prolog omits it (and the paper's hardware certainly does);
    /// the resolution engine leaves it off, tests can turn it on.
    pub occurs_check: bool,
}

/// Unifies `a` and `b` in a shared variable scope, extending `store`.
///
/// On failure the store is rolled back to its state at entry, so callers can
/// try alternatives without explicit trail management.
///
/// Anonymous variables unify with anything and bind nothing.
pub fn unify(a: &Term, b: &Term, store: &mut BindingStore, options: UnifyOptions) -> bool {
    let mark = store.mark();
    if unify_inner(a, b, store, options) {
        true
    } else {
        store.undo(mark);
        false
    }
}

fn unify_inner(a: &Term, b: &Term, store: &mut BindingStore, options: UnifyOptions) -> bool {
    // Anonymous variables are "don't care" on either side.
    if matches!(a, Term::Anon) || matches!(b, Term::Anon) {
        return true;
    }
    let wa = store.walk(a).clone();
    let wb = store.walk(b).clone();
    match (&wa, &wb) {
        (Term::Anon, _) | (_, Term::Anon) => true,
        (Term::Var(va), Term::Var(vb)) => {
            if va == vb {
                true
            } else {
                store.bind(*va, wb.clone());
                true
            }
        }
        (Term::Var(v), other) | (other, Term::Var(v)) => {
            if options.occurs_check && store.occurs(*v, other) {
                return false;
            }
            store.bind(*v, other.clone());
            true
        }
        (Term::Atom(x), Term::Atom(y)) => x == y,
        (Term::Int(x), Term::Int(y)) => x == y,
        (Term::Float(x), Term::Float(y)) => x == y,
        (
            Term::Struct {
                functor: fa,
                args: aa,
            },
            Term::Struct {
                functor: fb,
                args: ab,
            },
        ) => {
            fa == fb
                && aa.len() == ab.len()
                && aa
                    .iter()
                    .zip(ab)
                    .all(|(x, y)| unify_inner(x, y, store, options))
        }
        (Term::List { .. }, Term::List { .. }) => unify_lists(&wa, &wb, store, options),
        _ => false,
    }
}

/// Unifies two list terms, handling unterminated tails on either side.
fn unify_lists(a: &Term, b: &Term, store: &mut BindingStore, options: UnifyOptions) -> bool {
    let (
        Term::List {
            items: ia,
            tail: ta,
        },
        Term::List {
            items: ib,
            tail: tb,
        },
    ) = (a, b)
    else {
        unreachable!("unify_lists called on non-lists");
    };
    let common = ia.len().min(ib.len());
    for (x, y) in ia[..common].iter().zip(&ib[..common]) {
        if !unify_inner(x, y, store, options) {
            return false;
        }
    }
    // The longer side's remainder must unify with the shorter side's tail.
    let leftover_a = &ia[common..];
    let leftover_b = &ib[common..];
    if !leftover_a.is_empty() {
        // b's items are exhausted: b's tail must absorb a's remainder.
        let rest_a = Term::List {
            items: leftover_a.to_vec(),
            tail: ta.clone(),
        };
        return match tb {
            Some(t) => unify_inner(t, &rest_a, store, options),
            None => false,
        };
    }
    if !leftover_b.is_empty() {
        let rest_b = Term::List {
            items: leftover_b.to_vec(),
            tail: tb.clone(),
        };
        return match ta {
            Some(t) => unify_inner(t, &rest_b, store, options),
            None => false,
        };
    }
    // Items exhausted on both sides: unify the tails (absent tail = nil).
    match (ta, tb) {
        (None, None) => true,
        (Some(t), None) => unify_inner(t, &Term::nil(), store, options),
        (None, Some(t)) => unify_inner(&Term::nil(), t, store, options),
        (Some(x), Some(y)) => unify_inner(x, y, store, options),
    }
}

/// Unifies a query term against a clause head, renaming the clause's
/// variables out of the query's range first.
///
/// Returns the binding store on success (query variables occupy ids
/// `0..var_span(query)`), or `None` if the terms do not unify. This is the
/// exact test the paper's system applies to every clause that survives the
/// hardware filters.
///
/// The occurs check is **on**: a unification that would build a cyclic
/// term fails (as with `unify_with_occurs_check/2`), which keeps the
/// oracle total on arbitrary inputs. A filter may still accept such pairs
/// — that is a false drop, never a false negative.
///
/// # Examples
///
/// ```
/// use clare_term::{SymbolTable, parser::parse_term};
/// use clare_unify::unify_query_clause;
///
/// let mut sy = SymbolTable::new();
/// let q = parse_term("parent(tom, Who)", &mut sy)?;
/// let c = parse_term("parent(tom, bob)", &mut sy)?;
/// let store = unify_query_clause(&q, &c).expect("unifies");
/// let answer = store.resolve(&q);
/// assert_eq!(answer, parse_term("parent(tom, bob)", &mut sy)?);
/// # Ok::<(), clare_term::parser::ParseError>(())
/// ```
pub fn unify_query_clause(query: &Term, clause_head: &Term) -> Option<BindingStore> {
    let offset = var_span(query);
    let renamed = shift_vars(clause_head, offset);
    let mut store = BindingStore::with_capacity((offset + var_span(&renamed)) as usize);
    if unify(
        query,
        &renamed,
        &mut store,
        UnifyOptions { occurs_check: true },
    ) {
        Some(store)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_term::parser::parse_term;
    use clare_term::SymbolTable;

    fn unifies(q: &str, c: &str) -> bool {
        let mut sy = SymbolTable::new();
        let qt = parse_term(q, &mut sy).unwrap();
        let ct = parse_term(c, &mut sy).unwrap();
        unify_query_clause(&qt, &ct).is_some()
    }

    #[test]
    fn ground_equality() {
        assert!(unifies("f(a, 1, 2.5)", "f(a, 1, 2.5)"));
        assert!(!unifies("f(a)", "f(b)"));
        assert!(!unifies("f(1)", "f(2)"));
        assert!(!unifies("f(1)", "f(1.0)"), "int and float are distinct");
        assert!(!unifies("f(a)", "g(a)"));
        assert!(!unifies("f(a)", "f(a, b)"));
    }

    #[test]
    fn variables_bind_both_directions() {
        assert!(unifies("f(X)", "f(a)"));
        assert!(unifies("f(a)", "f(Y)"));
        assert!(unifies("f(X)", "f(Y)"));
    }

    #[test]
    fn shared_query_variable_consistency() {
        assert!(unifies("married_couple(S, S)", "married_couple(sue, sue)"));
        assert!(!unifies("married_couple(S, S)", "married_couple(ann, bob)"));
    }

    #[test]
    fn shared_clause_variable_consistency() {
        // f(X, a, b) vs f(A, a, A): A=X, A=b -> X=b; unifies.
        assert!(unifies("f(X, a, b)", "f(A, a, A)"));
        // f(a, b) vs f(A, A): A=a then A=b fails.
        assert!(!unifies("f(a, b)", "f(A, A)"));
    }

    #[test]
    fn cross_binding_chains() {
        // Query X bound to clause var A, then A constrained.
        assert!(unifies("f(X, X)", "f(A, b)"));
        assert!(unifies("f(X, Y, X, Y)", "f(A, A, c, c)"));
        assert!(!unifies("f(X, Y, X, Y)", "f(A, A, c, d)"));
    }

    #[test]
    fn nested_structures() {
        assert!(unifies("f(g(X), X)", "f(g(h(1)), h(1))"));
        assert!(!unifies("f(g(X), X)", "f(g(h(1)), h(2))"));
    }

    #[test]
    fn anonymous_matches_anything_without_binding() {
        assert!(unifies("f(_, _)", "f(a, b)"));
        assert!(unifies("f(_, _)", "f(A, A)"));
        // Each _ is independent: no consistency forced.
        assert!(unifies("f(_, _)", "f(a, g(b))"));
    }

    #[test]
    fn proper_lists() {
        assert!(unifies("[a, b, c]", "[a, b, c]"));
        assert!(!unifies("[a, b]", "[a, b, c]"));
        assert!(unifies("[X, b]", "[a, b]"));
        assert!(!unifies("[a]", "[b]"));
        assert!(unifies("[]", "[]"));
        assert!(!unifies("[]", "[a]"));
    }

    #[test]
    fn partial_lists() {
        assert!(unifies("[a | T]", "[a, b, c]"));
        assert!(unifies("[a, b, c]", "[a | T]"));
        assert!(unifies("[a | T]", "[a]")); // T = []
        assert!(!unifies("[a, b | T]", "[a]")); // not enough elements
        assert!(unifies("[H | T]", "[a, b]"));
        assert!(unifies("[a | T1]", "[H | T2]"));
    }

    #[test]
    fn partial_list_tail_binding_resolves() {
        let mut sy = SymbolTable::new();
        let q = parse_term("[a | T]", &mut sy).unwrap();
        let c = parse_term("[a, b, c]", &mut sy).unwrap();
        let store = unify_query_clause(&q, &c).unwrap();
        assert_eq!(store.resolve(&q), parse_term("[a, b, c]", &mut sy).unwrap());
    }

    #[test]
    fn list_never_unifies_with_struct_or_atom() {
        assert!(!unifies("[a]", "f(a)"));
        assert!(!unifies("[]", "nil"));
    }

    #[test]
    fn occurs_check_optional() {
        let mut sy = SymbolTable::new();
        let x = parse_term("X", &mut sy).unwrap();
        let fx = parse_term("f(X)", &mut sy).unwrap();
        let mut store = BindingStore::with_capacity(1);
        // Without occurs check: binds (classic Prolog behaviour).
        assert!(unify(&x, &fx, &mut store, UnifyOptions::default()));
        let mut store2 = BindingStore::with_capacity(1);
        assert!(!unify(
            &x,
            &fx,
            &mut store2,
            UnifyOptions { occurs_check: true }
        ));
    }

    #[test]
    fn failure_rolls_back_bindings() {
        let mut sy = SymbolTable::new();
        let a = parse_term("f(X, a)", &mut sy).unwrap();
        let b = parse_term("f(q, b)", &mut sy).unwrap();
        let mut store = BindingStore::with_capacity(1);
        assert!(!unify(&a, &b, &mut store, UnifyOptions::default()));
        assert!(
            store.lookup(clare_term::VarId::new(0)).is_none(),
            "X binding rolled back on failure"
        );
    }

    #[test]
    fn answer_substitution_projection() {
        let mut sy = SymbolTable::new();
        let q = parse_term("parent(P, bob)", &mut sy).unwrap();
        let c = parse_term("parent(tom, bob)", &mut sy).unwrap();
        let store = unify_query_clause(&q, &c).unwrap();
        assert_eq!(
            store.resolve(&q),
            parse_term("parent(tom, bob)", &mut sy).unwrap()
        );
    }

    #[test]
    fn symmetric_success() {
        let cases = [
            ("f(X, g(a))", "f(b, Y)"),
            ("[a | T]", "[a, b]"),
            ("h(Q, Q)", "h(c, c)"),
        ];
        for (l, r) in cases {
            assert_eq!(unifies(l, r), unifies(r, l), "symmetry for {l} vs {r}");
        }
    }
}
