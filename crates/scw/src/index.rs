//! The secondary index file and the FS1 scanner.
//!
//! "For fast searching in large files, codewords are generated for facts
//! and rule heads and these are maintained in a secondary file. The
//! secondary file is effectively an index table associating codewords with
//! clause addresses." (§2.1.)

use crate::config::ScwConfig;
use crate::encode::{encode_clause_signature, encode_query_descriptor, ClauseSignature};
use clare_disk::SimNanos;
use clare_term::Term;
use std::fmt;

/// Address of a clause in its compiled clause file: track plus slot within
/// the track. What FS1 hands to FS2 (or the CRS) after an index hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClauseAddr {
    track: u32,
    slot: u16,
}

impl ClauseAddr {
    /// Creates an address.
    pub fn new(track: u32, slot: u16) -> Self {
        ClauseAddr { track, slot }
    }

    /// Track index within the compiled clause file.
    pub fn track(self) -> u32 {
        self.track
    }

    /// Record slot within the track.
    pub fn slot(self) -> u16 {
        self.slot
    }
}

impl fmt::Display for ClauseAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}#{}", self.track, self.slot)
    }
}

/// One secondary-file entry: a clause signature plus the clause address.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexEntry {
    /// Codeword and mask bits for the clause head.
    pub signature: ClauseSignature,
    /// Where the clause record lives.
    pub addr: ClauseAddr,
}

/// Result of one FS1 scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanOutcome {
    /// Addresses of clauses whose codewords matched (potential unifiers,
    /// including false drops).
    pub matches: Vec<ClauseAddr>,
    /// Entries examined (= clause count of the predicate).
    pub entries_scanned: usize,
    /// Secondary-file bytes streamed through the FS1 hardware.
    pub bytes_scanned: usize,
    /// Time the FS1 hardware needs at its scan rate (4.5 MB/s prototype).
    pub fs1_time: SimNanos,
}

impl ScanOutcome {
    /// Fraction of scanned entries that matched.
    pub fn selectivity(&self) -> f64 {
        if self.entries_scanned == 0 {
            0.0
        } else {
            self.matches.len() as f64 / self.entries_scanned as f64
        }
    }
}

/// The secondary index file for one predicate's compiled clause file.
///
/// # Examples
///
/// ```
/// use clare_term::{SymbolTable, parser::parse_term};
/// use clare_scw::{ClauseAddr, IndexFile, ScwConfig};
///
/// let mut sy = SymbolTable::new();
/// let mut index = IndexFile::new(ScwConfig::paper());
/// for (i, fact) in ["p(a)", "p(b)", "p(X)"].iter().enumerate() {
///     let head = parse_term(fact, &mut sy)?;
///     index.insert(&head, ClauseAddr::new(0, i as u16));
/// }
/// let outcome = index.scan(&parse_term("p(a)", &mut sy)?);
/// // p(a) matches; p(X) matches via its mask bit; p(b) is filtered out.
/// assert_eq!(outcome.matches.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct IndexFile {
    config: ScwConfig,
    entries: Vec<IndexEntry>,
}

impl IndexFile {
    /// Creates an empty index with the given scheme parameters.
    pub fn new(config: ScwConfig) -> Self {
        IndexFile {
            config,
            entries: Vec::new(),
        }
    }

    /// The scheme parameters.
    pub fn config(&self) -> &ScwConfig {
        &self.config
    }

    /// Encodes and appends a clause head. Entries keep insertion order —
    /// clause order is user-significant in Prolog and the index preserves
    /// it so retrieval returns clauses in program order.
    pub fn insert(&mut self, head: &Term, addr: ClauseAddr) {
        let signature = encode_clause_signature(head, &self.config);
        self.entries.push(IndexEntry { signature, addr });
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in clause order.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Size of the secondary file in bytes.
    pub fn file_bytes(&self) -> usize {
        self.entries.len() * self.config.entry_bytes()
    }

    /// Scans the whole index against a query, as the FS1 hardware does:
    /// every entry is examined (the match is a streaming comparison, not a
    /// tree descent), and the scan time is the secondary-file size over the
    /// FS1 scan rate.
    pub fn scan(&self, query: &Term) -> ScanOutcome {
        let descriptor = encode_query_descriptor(query, &self.config);
        let matches = self
            .entries
            .iter()
            .filter(|e| descriptor.matches(&e.signature))
            .map(|e| e.addr)
            .collect();
        let bytes_scanned = self.file_bytes();
        ScanOutcome {
            matches,
            entries_scanned: self.entries.len(),
            bytes_scanned,
            fs1_time: self.config.scan_rate().transfer_time(bytes_scanned as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_term::parser::parse_term;
    use clare_term::SymbolTable;

    fn build_index(clauses: &[&str], sy: &mut SymbolTable) -> IndexFile {
        let mut index = IndexFile::new(ScwConfig::paper());
        for (i, src) in clauses.iter().enumerate() {
            let head = parse_term(src, sy).unwrap();
            index.insert(&head, ClauseAddr::new((i / 4) as u32, (i % 4) as u16));
        }
        index
    }

    #[test]
    fn scan_filters_and_preserves_order() {
        let mut sy = SymbolTable::new();
        let index = build_index(
            &["p(a, 1)", "p(b, 2)", "p(a, 3)", "p(X, 4)", "p(a, 5)"],
            &mut sy,
        );
        let outcome = index.scan(&parse_term("p(a, Y)", &mut sy).unwrap());
        // p(a,1), p(a,3), p(X,4) [mask], p(a,5) — in clause order.
        assert_eq!(
            outcome.matches,
            vec![
                ClauseAddr::new(0, 0),
                ClauseAddr::new(0, 2),
                ClauseAddr::new(0, 3),
                ClauseAddr::new(1, 0),
            ]
        );
        assert_eq!(outcome.entries_scanned, 5);
    }

    #[test]
    fn unconstrained_query_retrieves_everything() {
        let mut sy = SymbolTable::new();
        let index = build_index(&["m(a, b)", "m(c, d)", "m(e, e)"], &mut sy);
        let outcome = index.scan(&parse_term("m(S, S)", &mut sy).unwrap());
        assert_eq!(outcome.matches.len(), 3, "shared vars defeat FS1");
        assert_eq!(outcome.selectivity(), 1.0);
    }

    #[test]
    fn selective_query_has_low_selectivity() {
        let mut sy = SymbolTable::new();
        let clauses: Vec<String> = (0..100).map(|i| format!("q(k{i}, v{i})")).collect();
        let refs: Vec<&str> = clauses.iter().map(String::as_str).collect();
        let index = build_index(&refs, &mut sy);
        let outcome = index.scan(&parse_term("q(k42, X)", &mut sy).unwrap());
        assert!(!outcome.matches.is_empty(), "the true hit survives");
        assert!(
            outcome.selectivity() < 0.1,
            "selectivity {} too high",
            outcome.selectivity()
        );
        assert!(outcome
            .matches
            .contains(&ClauseAddr::new(42 / 4, (42 % 4) as u16)));
    }

    #[test]
    fn fs1_time_follows_file_size() {
        let mut sy = SymbolTable::new();
        let clauses: Vec<String> = (0..450).map(|i| format!("r(a{i})")).collect();
        let refs: Vec<&str> = clauses.iter().map(String::as_str).collect();
        let index = build_index(&refs, &mut sy);
        assert_eq!(index.file_bytes(), 450 * index.config().entry_bytes());
        let outcome = index.scan(&parse_term("r(a7)", &mut sy).unwrap());
        // 450 entries × 17 B = 7650 B at 4.5 MB/s = 1.7 ms.
        let expected_ns = (index.file_bytes() as f64 / 4.5e6 * 1e9).round() as u64;
        assert!(
            (outcome.fs1_time.as_ns() as i64 - expected_ns as i64).abs() < 1000,
            "fs1 time {} vs expected {expected_ns} ns",
            outcome.fs1_time
        );
    }

    #[test]
    fn empty_index() {
        let mut sy = SymbolTable::new();
        let index = IndexFile::new(ScwConfig::paper());
        let outcome = index.scan(&parse_term("p(a)", &mut sy).unwrap());
        assert!(outcome.matches.is_empty());
        assert_eq!(outcome.selectivity(), 0.0);
        assert_eq!(outcome.fs1_time, SimNanos::ZERO);
    }

    #[test]
    fn secondary_file_smaller_than_typical_clause_file() {
        // The scheme's whole point: entry size is a handful of bytes,
        // independent of clause size.
        let config = ScwConfig::paper();
        assert!(config.entry_bytes() <= 24);
    }
}
