//! Compilation of terms into PIF argument streams.
//!
//! The stream contains exactly what the FS2 hardware walks:
//!
//! * one word per top-level argument;
//! * for an in-line complex argument (arity ≤ 31), one word per first-level
//!   element immediately following — "Structure Elements Follow" /
//!   "List Elements Follow" in Table A1;
//! * first-level elements that are themselves complex are *pointer* words
//!   (functor/arity summary only), so the stream never nests deeper than
//!   one level — which is precisely why the hardware implements Level 3
//!   matching and no more;
//! * the tail of an unterminated list is not part of the stream (the
//!   two-counter rule never examines it); the lossless copy of the clause
//!   lives in the surrounding [`ClauseRecord`](crate::record::ClauseRecord).
//!
//! Variable occurrences are numbered left-to-right across the whole stream
//! and tagged *first* or *subsequent* — the compile-time classification the
//! paper describes in §3.1.

use crate::error::PifError;
use crate::tags::{TypeTag, MAX_TAG_ARITY};
use crate::word::{PifStream, PifWord, CONTENT_MAX};
use clare_term::{Term, VarId};
use std::collections::HashSet;

/// Which side of the match a stream is compiled for: queries use the
/// `QV` variable tags and clause heads the `DV` tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Query argument stream (pre-loaded into FS2 Query Memory).
    Query,
    /// Database clause-head stream (streamed from disk via the Double
    /// Buffer).
    Db,
}

/// Encodes a query term's arguments into a PIF stream.
///
/// # Errors
///
/// Returns [`PifError::NotCallable`] if `query` is not an atom or
/// structure, or a range error if a constant does not fit its field.
pub fn encode_query(query: &Term) -> Result<PifStream, PifError> {
    encode_side(query, Side::Query)
}

/// Encodes a clause head's arguments into a PIF stream.
///
/// # Errors
///
/// As for [`encode_query`].
pub fn encode_clause_head(head: &Term) -> Result<PifStream, PifError> {
    encode_side(head, Side::Db)
}

/// Encodes either side.
///
/// # Errors
///
/// As for [`encode_query`].
pub fn encode_side(term: &Term, side: Side) -> Result<PifStream, PifError> {
    if term.functor_arity().is_none() {
        return Err(PifError::NotCallable);
    }
    let mut enc = Encoder {
        side,
        seen: HashSet::new(),
        next_pointer: 1,
        stream: PifStream::new(),
    };
    for arg in term.children() {
        enc.emit_argument(arg)?;
    }
    Ok(enc.stream)
}

struct Encoder {
    side: Side,
    seen: HashSet<VarId>,
    next_pointer: u32,
    stream: PifStream,
}

impl Encoder {
    fn fresh_pointer(&mut self) -> u32 {
        let p = self.next_pointer;
        self.next_pointer += 1;
        p.min(CONTENT_MAX)
    }

    fn var_word(&mut self, v: VarId) -> Result<PifWord, PifError> {
        if v.index() > CONTENT_MAX {
            return Err(PifError::VarOffsetTooLarge(v.index()));
        }
        let first = self.seen.insert(v);
        let tag = match self.side {
            Side::Query => TypeTag::QueryVar { first },
            Side::Db => TypeTag::DbVar { first },
        };
        Ok(PifWord::new(tag, v.index()))
    }

    fn symbol_content(offset: u32) -> Result<u32, PifError> {
        if offset > CONTENT_MAX {
            Err(PifError::SymbolOffsetTooLarge(offset))
        } else {
            Ok(offset)
        }
    }

    /// Emits a top-level argument (and its first-level elements).
    fn emit_argument(&mut self, term: &Term) -> Result<(), PifError> {
        match term {
            Term::Atom(s) => {
                let c = Self::symbol_content(s.offset())?;
                self.stream.push(PifWord::new(TypeTag::AtomPtr, c));
            }
            Term::Float(fid) => {
                let c = Self::symbol_content(fid.offset())?;
                self.stream.push(PifWord::new(TypeTag::FloatPtr, c));
            }
            Term::Int(v) => self.stream.push(PifWord::int(*v)?),
            Term::Anon => self.stream.push(PifWord::new(TypeTag::Anon, 0)),
            Term::Var(v) => {
                let w = self.var_word(*v)?;
                self.stream.push(w);
            }
            Term::Struct { functor, args } => {
                let c = Self::symbol_content(functor.offset())?;
                if args.len() <= MAX_TAG_ARITY as usize {
                    self.stream.push(PifWord::new(
                        TypeTag::StructInline {
                            arity: args.len() as u8,
                        },
                        c,
                    ));
                    for element in args {
                        self.emit_element(element)?;
                    }
                } else {
                    let ptr = self.fresh_pointer();
                    self.stream.push(PifWord::with_extension(
                        TypeTag::StructPtr {
                            arity: MAX_TAG_ARITY,
                        },
                        c,
                        ptr,
                    ));
                }
            }
            Term::List { items, tail } => {
                let terminated = tail.is_none();
                if items.len() <= MAX_TAG_ARITY as usize {
                    self.stream.push(PifWord::new(
                        TypeTag::ListInline {
                            arity: items.len() as u8,
                            terminated,
                        },
                        0,
                    ));
                    for element in items {
                        self.emit_element(element)?;
                    }
                    // The tail is not streamed: the two-counter rule stops
                    // at the shorter arity and never inspects it.
                } else {
                    let ptr = self.fresh_pointer();
                    self.stream.push(PifWord::new(
                        TypeTag::ListPtr {
                            arity: MAX_TAG_ARITY,
                            terminated,
                        },
                        ptr,
                    ));
                }
            }
        }
        Ok(())
    }

    /// Emits a first-level element: simple and variable terms appear as
    /// themselves; nested complex terms become pointer words.
    fn emit_element(&mut self, term: &Term) -> Result<(), PifError> {
        match term {
            Term::Struct { functor, args } => {
                let c = Self::symbol_content(functor.offset())?;
                let ptr = self.fresh_pointer();
                self.stream.push(PifWord::with_extension(
                    TypeTag::StructPtr {
                        arity: args.len().min(MAX_TAG_ARITY as usize) as u8,
                    },
                    c,
                    ptr,
                ));
                Ok(())
            }
            Term::List { items, tail } => {
                let ptr = self.fresh_pointer();
                self.stream.push(PifWord::new(
                    TypeTag::ListPtr {
                        arity: items.len().min(MAX_TAG_ARITY as usize) as u8,
                        terminated: tail.is_none(),
                    },
                    ptr,
                ));
                Ok(())
            }
            simple_or_var => self.emit_argument(simple_or_var),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_term::parser::parse_term;
    use clare_term::SymbolTable;

    fn query_tags(src: &str) -> Vec<u8> {
        let mut sy = SymbolTable::new();
        let t = parse_term(src, &mut sy).unwrap();
        encode_query(&t)
            .unwrap()
            .words()
            .iter()
            .map(|w| w.tag())
            .collect()
    }

    fn db_tags(src: &str) -> Vec<u8> {
        let mut sy = SymbolTable::new();
        let t = parse_term(src, &mut sy).unwrap();
        encode_clause_head(&t)
            .unwrap()
            .words()
            .iter()
            .map(|w| w.tag())
            .collect()
    }

    #[test]
    fn married_couple_query_tags() {
        // The paper's shared-variable example: first and subsequent QV.
        assert_eq!(query_tags("married_couple(S, S)"), vec![0x27, 0x25]);
    }

    #[test]
    fn db_variable_tags() {
        assert_eq!(db_tags("f(A, a, A)"), vec![0x26, 0x08, 0x24]);
    }

    #[test]
    fn anonymous_variable_tag() {
        assert_eq!(query_tags("f(_, _)"), vec![0x20, 0x20]);
    }

    #[test]
    fn simple_terms() {
        let mut sy = SymbolTable::new();
        let t = parse_term("f(a, 3, 2.5)", &mut sy).unwrap();
        let stream = encode_query(&t).unwrap();
        let w = stream.words();
        assert_eq!(w[0].tag(), 0x08);
        assert_eq!(w[0].content(), sy.lookup_atom("a").unwrap().offset());
        assert_eq!(w[1].tag(), 0x10); // Integer In-line, high nibble 0
        assert_eq!(w[1].int_value(), Some(3));
        assert_eq!(w[2].tag(), 0x09);
        assert_eq!(w[2].content(), sy.lookup_float(2.5).unwrap().offset());
    }

    #[test]
    fn inline_structure_with_elements() {
        let mut sy = SymbolTable::new();
        let t = parse_term("p(g(a, X))", &mut sy).unwrap();
        let stream = encode_query(&t).unwrap();
        let w = stream.words();
        assert_eq!(w.len(), 3, "struct word + 2 element words");
        assert_eq!(w[0].tag(), 0b0110_0010); // Structure In-line, arity 2
        assert_eq!(w[0].content(), sy.lookup_atom("g").unwrap().offset());
        assert_eq!(w[1].tag(), 0x08);
        assert_eq!(w[2].tag(), 0x27);
    }

    #[test]
    fn nested_complex_becomes_pointer_word() {
        let mut sy = SymbolTable::new();
        let t = parse_term("p(g(h(a, b)))", &mut sy).unwrap();
        let stream = encode_query(&t).unwrap();
        let w = stream.words();
        assert_eq!(w.len(), 2, "g word + h pointer word; h's elements absent");
        assert_eq!(w[0].tag(), 0b0110_0001);
        assert_eq!(w[1].tag(), 0b0100_0010); // Structure Pointer, arity 2
        assert_eq!(w[1].content(), sy.lookup_atom("h").unwrap().offset());
        assert!(w[1].extension().is_some());
    }

    #[test]
    fn list_tags_and_tail_not_streamed() {
        assert_eq!(query_tags("p([a, b])"), vec![0b1110_0010, 0x08, 0x08]);
        // Unterminated: tail variable does not appear in the stream.
        assert_eq!(query_tags("p([a, b | T])"), vec![0b1010_0010, 0x08, 0x08]);
        assert_eq!(query_tags("p([])"), vec![0b1110_0000]);
    }

    #[test]
    fn variable_occurrence_numbering_spans_elements() {
        // X first occurs inside a structure element, then at top level:
        // the top-level occurrence must be Subsequent.
        assert_eq!(query_tags("p(g(X), X)"), vec![0b0110_0001, 0x27, 0x25],);
    }

    #[test]
    fn oversized_structure_becomes_pointer() {
        let mut sy = SymbolTable::new();
        let args: Vec<String> = (0..40).map(|i| format!("a{i}")).collect();
        let t = parse_term(&format!("p(f({}))", args.join(", ")), &mut sy).unwrap();
        let stream = encode_query(&t).unwrap();
        let w = stream.words();
        assert_eq!(w.len(), 1, "pointer word only, no elements");
        assert_eq!(w[0].tag(), 0b0101_1111, "saturated arity 31");
    }

    #[test]
    fn int_out_of_range_propagates() {
        let mut sy = SymbolTable::new();
        let t = parse_term("p(999999999999)", &mut sy).unwrap();
        assert!(matches!(encode_query(&t), Err(PifError::IntOutOfRange(_))));
    }

    #[test]
    fn non_callable_rejected() {
        let mut sy = SymbolTable::new();
        let t = parse_term("42", &mut sy).unwrap();
        assert_eq!(encode_query(&t), Err(PifError::NotCallable));
        let t = parse_term("[a, b]", &mut sy).unwrap();
        assert_eq!(encode_query(&t), Err(PifError::NotCallable));
    }

    #[test]
    fn atom_headed_term_has_empty_stream() {
        let mut sy = SymbolTable::new();
        let t = parse_term("halt", &mut sy).unwrap();
        assert!(encode_query(&t).unwrap().is_empty());
    }

    #[test]
    fn query_and_db_sides_differ_only_in_var_tags() {
        let mut sy = SymbolTable::new();
        let t = parse_term("f(X, a, g(Y))", &mut sy).unwrap();
        let q = encode_query(&t).unwrap();
        let d = encode_clause_head(&t).unwrap();
        assert_eq!(q.len(), d.len());
        for (qw, dw) in q.words().iter().zip(d.words()) {
            match qw.type_tag() {
                TypeTag::QueryVar { first } => {
                    assert_eq!(dw.type_tag(), TypeTag::DbVar { first });
                    assert_eq!(qw.content(), dw.content());
                }
                _ => assert_eq!(qw.tag(), dw.tag()),
            }
        }
    }
}
