//! E3 — Table A1: the CLARE data type scheme.
//!
//! Regenerates the appendix table from the implemented tag scheme and
//! checks the exact byte values the paper prints.

use crate::render_table;
use clare_pif::TypeTag;
use std::fmt;

/// One regenerated row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Item name as printed in Table A1.
    pub item: String,
    /// Tag byte (or tag pattern base for families).
    pub tag_byte: u8,
    /// Bit pattern rendering.
    pub bits: String,
    /// Content-field description.
    pub content: &'static str,
}

/// The regenerated table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableA1 {
    /// Rows in the paper's order.
    pub rows: Vec<Row>,
    /// Number of distinct valid tag byte values in the scheme.
    pub tag_value_count: usize,
}

fn row(tag: TypeTag, content: &'static str) -> Row {
    let byte = tag.to_byte();
    Row {
        item: tag.to_string(),
        tag_byte: byte,
        bits: format!("{:04b} {:04b}", byte >> 4, byte & 0xF),
        content,
    }
}

/// Runs the experiment.
pub fn run() -> TableA1 {
    let rows = vec![
        row(TypeTag::Anon, "-"),
        row(TypeTag::QueryVar { first: true }, "Variable Offset"),
        row(TypeTag::QueryVar { first: false }, "Variable Offset"),
        row(TypeTag::DbVar { first: true }, "Variable Offset"),
        row(TypeTag::DbVar { first: false }, "Variable Offset"),
        row(TypeTag::AtomPtr, "Symbol Table Offset"),
        row(TypeTag::FloatPtr, "Symbol Table Offset"),
        row(
            TypeTag::IntInline { high_nibble: 0 },
            "Least Significant Value (nibble = MS nibble)",
        ),
        row(
            TypeTag::StructInline { arity: 0 },
            "Functor Symbol Table Offset; Elements Follow",
        ),
        row(
            TypeTag::StructPtr { arity: 0 },
            "Functor Symbol Table Offset; Extension = Pointer",
        ),
        row(
            TypeTag::ListInline {
                arity: 0,
                terminated: true,
            },
            "List Elements Follow",
        ),
        row(
            TypeTag::ListInline {
                arity: 0,
                terminated: false,
            },
            "List Elements Follow",
        ),
        row(
            TypeTag::ListPtr {
                arity: 0,
                terminated: true,
            },
            "Pointer to List (DB argument only)",
        ),
        row(
            TypeTag::ListPtr {
                arity: 0,
                terminated: false,
            },
            "Pointer to List (DB argument only)",
        ),
    ];
    TableA1 {
        rows,
        tag_value_count: clare_pif::tags::TAG_VALUE_COUNT,
    }
}

impl fmt::Display for TableA1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E3 / Table A1: CLARE Data Type Scheme (PIF tags)\n")?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.item.clone(),
                    format!("{} ({:#04x})", r.bits, r.tag_byte),
                    r.content.to_owned(),
                ]
            })
            .collect();
        f.write_str(&render_table(&["item", "type tag", "content"], &rows))?;
        writeln!(
            f,
            "\n{} distinct valid tag byte values (paper's production scheme: 107 types)",
            self.tag_value_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_values_match_the_printed_table() {
        let t = run();
        let byte = |item: &str| {
            t.rows
                .iter()
                .find(|r| r.item == item)
                .unwrap_or_else(|| panic!("row {item}"))
                .tag_byte
        };
        assert_eq!(byte("Anonymous Var"), 0x20);
        assert_eq!(byte("First Query Var"), 0x27);
        assert_eq!(byte("Subsequent Query Var"), 0x25);
        assert_eq!(byte("First DB Var"), 0x26);
        assert_eq!(byte("Subsequent DB Var"), 0x24);
        assert_eq!(byte("Atom Pointer"), 0x08);
        assert_eq!(byte("Float Pointer"), 0x09);
        assert_eq!(byte("Integer In-line"), 0x10);
        assert_eq!(byte("Structure In-line/0"), 0b0110_0000);
        assert_eq!(byte("Structure Pointer/0"), 0b0100_0000);
        assert_eq!(byte("Terminated List In-line/0"), 0b1110_0000);
        assert_eq!(byte("Unterminated List In-line/0"), 0b1010_0000);
        assert_eq!(byte("Terminated List Pointer/0"), 0b1100_0000);
        assert_eq!(byte("Unterminated List Pointer/0"), 0b1000_0000);
    }

    #[test]
    fn renders_bit_patterns() {
        let text = run().to_string();
        assert!(text.contains("0010 0000 (0x20)"));
        assert!(text.contains("0010 0111 (0x27)"));
    }
}
