//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the tiny [`Buf`]/[`BufMut`] subset it actually uses. Semantics mirror
//! `bytes` 1.x: multi-byte accessors are big-endian, and reading past the
//! end panics (callers bounds-check with [`Buf::remaining`] first).

#![warn(missing_docs)]

/// Read access to a contiguous byte cursor.
pub trait Buf {
    /// Bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any unread bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        i64::from_be_bytes(raw)
    }

    /// Copies `dst.len()` bytes out of the buffer and advances.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Append access to a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_i64(-42);
        buf.put_slice(b"xyz");
        let mut cursor = buf.as_slice();
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u16(), 0x1234);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_i64(), -42);
        let mut tail = [0u8; 3];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn nested_mut_refs_delegate() {
        let mut buf: &[u8] = &[1, 2, 3];
        fn take_two(b: &mut impl Buf) -> (u8, u8) {
            (b.get_u8(), b.get_u8())
        }
        assert_eq!(take_two(&mut buf), (1, 2));
        assert_eq!(buf.remaining(), 1);
    }
}
