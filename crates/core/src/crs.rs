//! The four CRS search modes and their timing pipelines (§2.2).
//!
//! Every mode ends with **full unification** of the surviving candidates
//! on the host CPU; what differs is which filters run first and what has
//! to come off the disk:
//!
//! | mode | index scanned | clause file read | filter |
//! |---|---|---|---|
//! | (a) `SoftwareOnly` | no | all of it (if disk resident) | host CPU |
//! | (b) `Fs1Only` | yes, via FS1 | candidate tracks | codewords only |
//! | (c) `Fs2Only` | no | all of it, streamed through FS2 | test unification |
//! | (d) `TwoStage` | yes, via FS1 | candidate tracks through FS2 | both |
//!
//! Because each filter is *complete* (no false negatives — property-tested
//! across the workspace), every mode returns the same answer set; the
//! modes differ in elapsed time and in how many false drops reach the full
//! unifier.

use crate::cost::SoftwareCostModel;
use clare_disk::{DiskProfile, SimNanos};
use clare_fs2::Fs2Engine;
use clare_kb::{KnowledgeBase, ModuleKind, Predicate};
use clare_pif::{encode_query, ClauseRecord};
use clare_scw::{encode_query_descriptor, ClauseAddr};
use clare_term::{term_size, ClauseId, Term};
use clare_unify::partial::{partial_match, PartialConfig};
use clare_unify::unify_query_clause;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// The four searching modes of §2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchMode {
    /// (a) The CRS performs all the search operations itself.
    SoftwareOnly,
    /// (b) The superimposed-codeword hardware only.
    Fs1Only,
    /// (c) The partial-test-unification hardware only.
    Fs2Only,
    /// (d) The two-stage hardware filter.
    TwoStage,
}

impl SearchMode {
    /// All four modes, in the paper's (a)–(d) order.
    pub const ALL: [SearchMode; 4] = [
        SearchMode::SoftwareOnly,
        SearchMode::Fs1Only,
        SearchMode::Fs2Only,
        SearchMode::TwoStage,
    ];
}

impl fmt::Display for SearchMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SearchMode::SoftwareOnly => "software only",
            SearchMode::Fs1Only => "FS1 only",
            SearchMode::Fs2Only => "FS2 only",
            SearchMode::TwoStage => "FS1+FS2",
        })
    }
}

/// CRS configuration: the disk the knowledge base lives on and the host
/// software cost model.
#[derive(Debug, Clone)]
pub struct CrsOptions {
    /// Disk profile for all streaming/fetch timing.
    pub disk: DiskProfile,
    /// Host CPU cost model.
    pub cost: SoftwareCostModel,
    /// Worker threads for the FS1 index scan. `None` (the default) defers
    /// to the index's own [`clare_scw::ScwConfig::parallelism`]; `Some(n)`
    /// overrides it per server. The answer set and all modelled times are
    /// identical at every level — only host wall-clock changes.
    pub fs1_parallelism: Option<usize>,
}

impl Default for CrsOptions {
    fn default() -> Self {
        CrsOptions {
            disk: DiskProfile::fujitsu_m2351a(),
            cost: SoftwareCostModel::m68020(),
            fs1_parallelism: None,
        }
    }
}

/// Timing and selectivity statistics for one retrieval.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrievalStats {
    /// The mode that ran.
    pub mode: SearchMode,
    /// Clauses in the predicate.
    pub clauses_total: usize,
    /// Candidates surviving FS1, when it ran.
    pub after_fs1: Option<usize>,
    /// Candidates surviving FS2, when it ran.
    pub after_fs2: Option<usize>,
    /// Candidates handed to full unification.
    pub candidates: usize,
    /// Clauses that fully unify (the answer set — identical across modes).
    pub unified: usize,
    /// `candidates - unified`: filter false drops that reached the host.
    pub false_drops: usize,
    /// Simulated disk time (streaming + fetches).
    pub disk_time: SimNanos,
    /// FS1 hardware scan time.
    pub fs1_time: SimNanos,
    /// FS2 hardware matching time (sum of Table 1 costs).
    pub fs2_time: SimNanos,
    /// Host time spent software-filtering (mode (a) only).
    pub software_filter_time: SimNanos,
    /// Host time spent fully unifying the candidates.
    pub full_unify_time: SimNanos,
    /// Modelled wall-clock for the whole retrieval, with disk/filter
    /// overlap where the double-buffered hardware provides it.
    pub elapsed: SimNanos,
    /// Bytes that came off the disk.
    pub bytes_from_disk: u64,
    /// Tracks whose satisfier count exceeded the 64-slot Result Memory
    /// (each would force a re-read on the real hardware).
    pub result_memory_overflows: usize,
}

impl RetrievalStats {
    fn empty(mode: SearchMode) -> Self {
        RetrievalStats {
            mode,
            clauses_total: 0,
            after_fs1: None,
            after_fs2: None,
            candidates: 0,
            unified: 0,
            false_drops: 0,
            disk_time: SimNanos::ZERO,
            fs1_time: SimNanos::ZERO,
            fs2_time: SimNanos::ZERO,
            software_filter_time: SimNanos::ZERO,
            full_unify_time: SimNanos::ZERO,
            elapsed: SimNanos::ZERO,
            bytes_from_disk: 0,
            result_memory_overflows: 0,
        }
    }
}

/// A retrieval's outcome: the candidate clause ids (in program order) that
/// survived the filters, plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Retrieval {
    /// Candidates for full unification, in clause order.
    pub candidates: Vec<ClauseId>,
    /// Timing and selectivity.
    pub stats: RetrievalStats,
}

/// Retrieves all candidate clauses for `query` using `mode`.
///
/// A query that cannot be compiled for the hardware (an integer outside
/// the 28-bit in-line range, or a stream larger than the Query Memory)
/// falls back to software-only retrieval; `stats.mode` reports what
/// actually ran.
pub fn retrieve(
    kb: &KnowledgeBase,
    query: &Term,
    mode: SearchMode,
    opts: &CrsOptions,
) -> Retrieval {
    retrieve_inner(kb, query, mode, opts, None)
}

/// Retrieves candidates for several queries, amortizing the FS1 index
/// sweep: queries against the same predicate are compiled together and
/// their descriptors tested in one pass over the packed secondary file
/// ([`clare_scw::IndexFile::scan_batch`]). Results come back in input
/// order, and each is exactly what [`retrieve`] would return for that
/// query alone — the batch changes host wall-clock, not semantics or
/// modelled times.
pub fn retrieve_batch(
    kb: &KnowledgeBase,
    queries: &[Term],
    mode: SearchMode,
    opts: &CrsOptions,
) -> Vec<Retrieval> {
    // Group FS1-eligible queries by predicate so each group shares a pass.
    let wants_fs1 = matches!(mode, SearchMode::Fs1Only | SearchMode::TwoStage);
    let mut groups: HashMap<(clare_term::Symbol, usize), Vec<usize>> = HashMap::new();
    if wants_fs1 {
        for (i, query) in queries.iter().enumerate() {
            if let Some(key) = query.functor_arity() {
                groups.entry(key).or_default().push(i);
            }
        }
    }

    let mut fs1_outcomes: Vec<Option<clare_scw::ScanOutcome>> = vec![None; queries.len()];
    for ((functor, arity), members) in groups {
        let Some((_, pred)) = kb.module_of(functor, arity) else {
            continue;
        };
        let index = pred.index();
        let descriptors: Vec<_> = members
            .iter()
            .map(|&i| encode_query_descriptor(&queries[i], index.config()))
            .collect();
        let workers = opts.fs1_parallelism.unwrap_or(index.config().parallelism());
        let outcomes = index.scan_batch_with(&descriptors, workers);
        for (&i, outcome) in members.iter().zip(outcomes) {
            fs1_outcomes[i] = Some(outcome);
        }
    }

    queries
        .iter()
        .zip(fs1_outcomes)
        .map(|(query, fs1)| retrieve_inner(kb, query, mode, opts, fs1))
        .collect()
}

fn retrieve_inner(
    kb: &KnowledgeBase,
    query: &Term,
    mode: SearchMode,
    opts: &CrsOptions,
    fs1_precomputed: Option<clare_scw::ScanOutcome>,
) -> Retrieval {
    let Some((functor, arity)) = query.functor_arity() else {
        return Retrieval {
            candidates: Vec::new(),
            stats: RetrievalStats::empty(mode),
        };
    };
    let Some((module, pred)) = kb.module_of(functor, arity) else {
        return Retrieval {
            candidates: Vec::new(),
            stats: RetrievalStats::empty(mode),
        };
    };
    let disk_resident = module.kind() == ModuleKind::Large;

    // Hardware modes need an encodable query.
    let hw_query = match mode {
        SearchMode::SoftwareOnly => None,
        _ => match encode_query(query) {
            Ok(stream) => Fs2Engine::new(&stream).ok(),
            Err(_) => None,
        },
    };
    let effective_mode = match (mode, &hw_query) {
        (SearchMode::SoftwareOnly, _) => SearchMode::SoftwareOnly,
        // FS1 needs no query stream, only a descriptor, so it stays viable.
        (SearchMode::Fs1Only, _) => SearchMode::Fs1Only,
        (m, Some(_)) => m,
        (_, None) => SearchMode::SoftwareOnly,
    };

    let mut stats = RetrievalStats::empty(effective_mode);
    stats.clauses_total = pred.clauses().len();

    let candidates: Vec<ClauseId> = match effective_mode {
        SearchMode::SoftwareOnly => software_phase(pred, query, opts, disk_resident, &mut stats),
        SearchMode::Fs1Only => {
            let addrs = fs1_phase(pred, query, opts, fs1_precomputed, &mut stats);
            fetch_candidate_tracks(pred, &addrs, opts, &mut stats);
            stats.after_fs1 = Some(addrs.len());
            addrs_to_ids(pred, &addrs)
        }
        SearchMode::Fs2Only => {
            let mut engine = hw_query.expect("checked above");
            let all_tracks: Vec<usize> = (0..pred.file().track_count()).collect();
            let satisfiers = fs2_phase(pred, &mut engine, &all_tracks, opts, &mut stats);
            stats.after_fs2 = Some(satisfiers.len());
            addrs_to_ids(pred, &satisfiers)
        }
        SearchMode::TwoStage => {
            let mut engine = hw_query.expect("checked above");
            let fs1_addrs = fs1_phase(pred, query, opts, fs1_precomputed, &mut stats);
            stats.after_fs1 = Some(fs1_addrs.len());
            let tracks: Vec<usize> = fs1_addrs
                .iter()
                .map(|a| a.track() as usize)
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            let fs2_addrs = fs2_phase(pred, &mut engine, &tracks, opts, &mut stats);
            // Intersect: only clauses selected by both stages go on.
            let fs1_set: BTreeSet<ClauseAddr> = fs1_addrs.into_iter().collect();
            let joint: Vec<ClauseAddr> = fs2_addrs
                .into_iter()
                .filter(|a| fs1_set.contains(a))
                .collect();
            stats.after_fs2 = Some(joint.len());
            addrs_to_ids(pred, &joint)
        }
    };

    // Full unification of the survivors — the answer set.
    let query_nodes = term_size(query);
    let mut unified = 0usize;
    for id in &candidates {
        let clause = &pred.clauses()[id.index() as usize];
        stats.full_unify_time += opts
            .cost
            .full_unify_cost(query_nodes, term_size(clause.head()));
        if unify_query_clause(query, clause.head()).is_some() {
            unified += 1;
        }
    }
    stats.candidates = candidates.len();
    stats.unified = unified;
    stats.false_drops = candidates.len() - unified;
    stats.elapsed += stats.full_unify_time;

    Retrieval { candidates, stats }
}

fn addrs_to_ids(pred: &Predicate, addrs: &[ClauseAddr]) -> Vec<ClauseId> {
    let by_addr: HashMap<ClauseAddr, usize> = pred
        .addrs()
        .iter()
        .enumerate()
        .map(|(i, a)| (*a, i))
        .collect();
    let mut ids: Vec<ClauseId> = addrs
        .iter()
        .map(|a| ClauseId::new(by_addr[a] as u32))
        .collect();
    ids.sort();
    ids
}

/// Mode (a): stream everything (if disk resident) and filter on the host.
fn software_phase(
    pred: &Predicate,
    query: &Term,
    opts: &CrsOptions,
    disk_resident: bool,
    stats: &mut RetrievalStats,
) -> Vec<ClauseId> {
    if disk_resident {
        stats.disk_time = pred.file().scan_time(&opts.disk);
        stats.bytes_from_disk = pred.file().occupied_bytes() as u64;
    }
    let mut out = Vec::new();
    for (i, clause) in pred.clauses().iter().enumerate() {
        let report = partial_match(query, clause.head(), PartialConfig::fs2());
        stats.software_filter_time += opts.cost.partial_match_cost(report.ops.len().max(1));
        if report.matched {
            out.push(ClauseId::new(i as u32));
        }
    }
    // The host cannot overlap its own filtering with much else.
    stats.elapsed = stats.disk_time + stats.software_filter_time;
    out
}

/// FS1 phase: stream the secondary file, scan codewords at 4.5 MB/s.
/// `precomputed` carries a batch scan's outcome so grouped queries do not
/// sweep the index again.
fn fs1_phase(
    pred: &Predicate,
    query: &Term,
    opts: &CrsOptions,
    precomputed: Option<clare_scw::ScanOutcome>,
    stats: &mut RetrievalStats,
) -> Vec<ClauseAddr> {
    let outcome = precomputed.unwrap_or_else(|| {
        let index = pred.index();
        match opts.fs1_parallelism {
            Some(workers) => {
                let descriptor = encode_query_descriptor(query, index.config());
                index.scan_with(&descriptor, workers)
            }
            None => index.scan(query),
        }
    });
    let index_bytes = outcome.bytes_scanned as u64;
    let disk_transfer = opts.disk.sustained_rate().transfer_time(index_bytes);
    let positioning = opts.disk.avg_seek() + opts.disk.avg_rotational_latency();
    stats.fs1_time += outcome.fs1_time;
    stats.disk_time += positioning + disk_transfer;
    stats.bytes_from_disk += index_bytes;
    // FS1 filters on the fly: the scan overlaps the transfer.
    stats.elapsed += positioning + disk_transfer.max(outcome.fs1_time);
    outcome.matches
}

/// Disk time to fetch the tracks containing `addrs` (mode (b): the host
/// reads candidate tracks whole, then unifies).
fn fetch_candidate_tracks(
    pred: &Predicate,
    addrs: &[ClauseAddr],
    opts: &CrsOptions,
    stats: &mut RetrievalStats,
) {
    let tracks: BTreeSet<u32> = addrs.iter().map(|a| a.track()).collect();
    let mut prev: Option<u32> = None;
    for &t in &tracks {
        let contiguous = prev.is_some_and(|p| t == p + 1);
        let positioning = if contiguous {
            SimNanos::ZERO
        } else {
            opts.disk.avg_seek() + opts.disk.avg_rotational_latency()
        };
        let transfer = opts.disk.track_transfer_time();
        stats.disk_time += positioning + transfer;
        stats.elapsed += positioning + transfer;
        stats.bytes_from_disk += pred.file().track_bytes() as u64;
        prev = Some(t);
    }
}

/// FS2 phase over the given tracks: each track streams from disk into the
/// Double Buffer while the previous track's clauses are matched, so the
/// per-track elapsed time is `max(transfer, matching)`.
fn fs2_phase(
    pred: &Predicate,
    engine: &mut Fs2Engine,
    tracks: &[usize],
    opts: &CrsOptions,
    stats: &mut RetrievalStats,
) -> Vec<ClauseAddr> {
    let mut satisfiers = Vec::new();
    let mut prev: Option<usize> = None;
    for &t in tracks {
        let track = &pred.file().tracks()[t];
        let mut track_fs2 = SimNanos::ZERO;
        let mut track_hits = 0usize;
        for (slot, record_bytes) in track.records().iter().enumerate() {
            let (record, _) = ClauseRecord::from_bytes(record_bytes)
                .expect("knowledge base records are well-formed");
            let verdict = engine.match_clause_stream(record.head_stream());
            track_fs2 += verdict.time;
            if verdict.matched {
                satisfiers.push(ClauseAddr::new(t as u32, slot as u16));
                track_hits += 1;
            }
        }
        if track_hits > clare_fs2::result::SATISFIER_SLOTS {
            stats.result_memory_overflows += 1;
        }
        // Adjacent tracks continue the sweep for free; a gap costs a
        // fresh positioning (seek + rotational latency).
        let positioning = if prev.is_none() {
            opts.disk.avg_seek() + opts.disk.avg_rotational_latency()
        } else if prev == Some(t.wrapping_sub(1)) {
            SimNanos::ZERO
        } else {
            opts.disk.avg_seek() + opts.disk.avg_rotational_latency()
        };
        let transfer = opts.disk.track_transfer_time();
        stats.fs2_time += track_fs2;
        stats.disk_time += positioning + transfer;
        stats.bytes_from_disk += pred.file().track_bytes() as u64;
        // Double buffering overlaps matching with the next transfer.
        stats.elapsed += positioning + transfer.max(track_fs2);
        prev = Some(t);
    }
    satisfiers
}

/// The mode-selection heuristic the paper sketches: "depending on the
/// nature of a query (e.g. whether it contains cross bound variables) and
/// the knowledge base (e.g. whether it is rule or fact intensive)".
pub fn choose_mode(kb: &KnowledgeBase, query: &Term) -> SearchMode {
    let Some((functor, arity)) = query.functor_arity() else {
        return SearchMode::SoftwareOnly;
    };
    let Some((module, pred)) = kb.module_of(functor, arity) else {
        return SearchMode::SoftwareOnly;
    };
    // Memory-resident modules are searched by the host directly.
    if module.kind() == ModuleKind::Small {
        return SearchMode::SoftwareOnly;
    }
    let descriptor = encode_query_descriptor(query, pred.index().config());
    let shared_vars = clare_term::visit::has_repeated_vars(query);
    if descriptor.is_unconstrained() {
        // FS1 would retrieve the whole predicate (the married_couple
        // case); go straight to FS2, which shared variables need anyway.
        return SearchMode::Fs2Only;
    }
    if pred.rule_fraction() > 0.5 {
        // Rule-intensive predicate: heads are mostly non-ground, so their
        // index masks make FS1 unselective — the paper's "rule or fact
        // intensive" criterion.
        return SearchMode::Fs2Only;
    }
    if query.is_ground() && pred.rule_fraction() < 0.2 && !shared_vars {
        // Ground queries against fact-intensive predicates: FS1's deep
        // keys are already highly selective.
        return SearchMode::Fs1Only;
    }
    SearchMode::TwoStage
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_kb::{KbBuilder, KbConfig};
    use clare_term::parser::parse_term;

    fn kb_with(source: &str) -> (KnowledgeBase, Vec<Term>) {
        (build(source, &[]).0, vec![])
    }

    fn build(source: &str, queries: &[&str]) -> (KnowledgeBase, Vec<Term>) {
        let mut b = KbBuilder::new();
        b.consult("m", source).unwrap();
        let terms: Vec<Term> = queries
            .iter()
            .map(|q| parse_term(q, b.symbols_mut()).unwrap())
            .collect();
        (b.finish(KbConfig::default()), terms)
    }

    fn big_facts(n: usize) -> String {
        (0..n)
            .map(|i| format!("fact(k{i}, v{}).", i % 10))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn all_modes_agree_on_answer_set() {
        let (kb, queries) = build(
            &big_facts(500),
            &["fact(k42, X)", "fact(K, v3)", "fact(S, S)", "fact(k1, v1)"],
        );
        let opts = CrsOptions::default();
        for q in &queries {
            let unified: Vec<usize> = SearchMode::ALL
                .iter()
                .map(|m| retrieve(&kb, q, *m, &opts).stats.unified)
                .collect();
            assert!(
                unified.windows(2).all(|w| w[0] == w[1]),
                "modes disagree for query: {unified:?}"
            );
        }
    }

    #[test]
    fn candidates_superset_of_answers_and_ordered() {
        let (kb, queries) = build(&big_facts(300), &["fact(k7, X)"]);
        let opts = CrsOptions::default();
        for mode in SearchMode::ALL {
            let r = retrieve(&kb, &queries[0], mode, &opts);
            assert!(r.stats.candidates >= r.stats.unified);
            assert_eq!(r.stats.false_drops, r.stats.candidates - r.stats.unified);
            assert!(
                r.candidates.windows(2).all(|w| w[0] < w[1]),
                "clause order preserved"
            );
        }
    }

    #[test]
    fn two_stage_never_more_candidates_than_single_stages() {
        let (kb, queries) = build(&big_facts(400), &["fact(k9, X)", "fact(K, v2)"]);
        let opts = CrsOptions::default();
        for q in &queries {
            let fs1 = retrieve(&kb, q, SearchMode::Fs1Only, &opts);
            let fs2 = retrieve(&kb, q, SearchMode::Fs2Only, &opts);
            let two = retrieve(&kb, q, SearchMode::TwoStage, &opts);
            assert!(two.stats.candidates <= fs1.stats.candidates);
            assert!(two.stats.candidates <= fs2.stats.candidates);
        }
    }

    #[test]
    fn shared_variable_query_defeats_fs1_but_not_fs2() {
        let mut src = big_facts(100);
        src.push_str("\nfact(same, same).");
        let (kb, queries) = build(&src, &["fact(S, S)"]);
        let opts = CrsOptions::default();
        let fs1 = retrieve(&kb, &queries[0], SearchMode::Fs1Only, &opts);
        let fs2 = retrieve(&kb, &queries[0], SearchMode::Fs2Only, &opts);
        assert_eq!(
            fs1.stats.candidates, 101,
            "FS1 retrieves the entire predicate"
        );
        assert!(
            fs2.stats.candidates < 15,
            "FS2 cross-binding checks cut it down: {}",
            fs2.stats.candidates
        );
        assert_eq!(fs2.stats.unified, fs1.stats.unified);
    }

    #[test]
    fn timing_fields_populated_per_mode() {
        let (kb, queries) = build(&big_facts(2000), &["fact(k100, X)"]);
        let opts = CrsOptions::default();
        let q = &queries[0];
        let sw = retrieve(&kb, q, SearchMode::SoftwareOnly, &opts);
        assert!(sw.stats.software_filter_time.as_ns() > 0);
        assert_eq!(sw.stats.fs1_time, SimNanos::ZERO);
        assert_eq!(sw.stats.fs2_time, SimNanos::ZERO);
        let fs1 = retrieve(&kb, q, SearchMode::Fs1Only, &opts);
        assert!(fs1.stats.fs1_time.as_ns() > 0);
        assert_eq!(fs1.stats.fs2_time, SimNanos::ZERO);
        let fs2 = retrieve(&kb, q, SearchMode::Fs2Only, &opts);
        assert!(fs2.stats.fs2_time.as_ns() > 0);
        assert_eq!(fs2.stats.fs1_time, SimNanos::ZERO);
        let two = retrieve(&kb, q, SearchMode::TwoStage, &opts);
        assert!(two.stats.fs1_time.as_ns() > 0);
        assert!(two.stats.fs2_time.as_ns() > 0);
        // The two-stage filter reads fewer bytes than a full FS2 scan.
        assert!(two.stats.bytes_from_disk < fs2.stats.bytes_from_disk);
    }

    #[test]
    fn missing_predicate_is_empty() {
        let (kb, queries) = build("p(a).", &["q(a)"]);
        let r = retrieve(
            &kb,
            &queries[0],
            SearchMode::TwoStage,
            &CrsOptions::default(),
        );
        assert!(r.candidates.is_empty());
        assert_eq!(r.stats.unified, 0);
    }

    #[test]
    fn unencodable_query_falls_back_to_software() {
        let (kb, queries) = build("p(1).", &["p(999999999999)"]);
        let r = retrieve(
            &kb,
            &queries[0],
            SearchMode::Fs2Only,
            &CrsOptions::default(),
        );
        assert_eq!(r.stats.mode, SearchMode::SoftwareOnly);
        assert_eq!(r.stats.unified, 0);
    }

    #[test]
    fn mode_selection_heuristic() {
        let mut src = big_facts(3000); // large module
        src.push_str("\nrule_pred(X) :- fact(X, v0).\n");
        let (kb, queries) = build(&src, &["fact(S, S)", "fact(k1, v1)", "fact(k1, X)"]);
        assert_eq!(choose_mode(&kb, &queries[0]), SearchMode::Fs2Only);
        assert_eq!(choose_mode(&kb, &queries[1]), SearchMode::Fs1Only);
        assert_eq!(choose_mode(&kb, &queries[2]), SearchMode::TwoStage);
        // Small module -> software.
        let (small_kb, small_q) = build("p(a).", &["p(a)"]);
        assert_eq!(
            choose_mode(&small_kb, &small_q[0]),
            SearchMode::SoftwareOnly
        );
    }

    #[test]
    fn rules_are_retrieved_too() {
        let (kb, queries) = build(
            "anc(X, Y) :- parent(X, Y).
             anc(X, Z) :- parent(X, Y), anc(Y, Z).
             parent(a, b).",
            &["anc(a, Q)"],
        );
        let r = retrieve(
            &kb,
            &queries[0],
            SearchMode::TwoStage,
            &CrsOptions::default(),
        );
        assert_eq!(r.stats.unified, 2, "both rule heads unify");
    }

    #[test]
    fn empty_source_ignored() {
        let (kb, _) = kb_with("p(a).");
        assert_eq!(kb.clause_count(), 1);
    }
}
