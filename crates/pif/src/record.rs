//! On-disk clause records.
//!
//! A compiled clause file (one per predicate — "predicates with the same
//! functor names and arities are stored in a compiled clause file") is a
//! sequence of records. Each record carries:
//!
//! 1. the **PIF head stream** — what FS2's Test Unification Engine walks;
//! 2. a **lossless serialization of the whole clause** — the "compiled
//!    clause" that the Prolog system full-unifies after the filters accept
//!    the record (our stand-in for Prolog-X bytecode).
//!
//! The record length is the quantity streamed from disk, so it drives every
//! throughput figure (the paper's MB/s rates are bytes-past-the-filter per
//! second).

use crate::encode::encode_clause_head;
use crate::error::PifError;
use crate::termio::{ensure, read_term, write_term, TermLimits};
use crate::word::PifStream;
use bytes::{Buf, BufMut};
use clare_term::Clause;

/// A compiled clause record: PIF head stream plus the full clause.
///
/// # Examples
///
/// ```
/// use clare_term::{SymbolTable, parser::parse_clause};
/// use clare_pif::ClauseRecord;
///
/// let mut sy = SymbolTable::new();
/// let clause = parse_clause("parent(tom, bob).", &mut sy)?;
/// let record = ClauseRecord::compile(&clause)?;
/// let bytes = record.to_bytes();
/// let (back, consumed) = ClauseRecord::from_bytes(&bytes)?;
/// assert_eq!(consumed, bytes.len());
/// assert_eq!(back.clause(), &clause);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClauseRecord {
    head_stream: PifStream,
    clause: Clause,
}

impl ClauseRecord {
    /// Compiles a clause: encodes its head into a PIF stream (database
    /// side) and retains the clause for post-filter full unification.
    ///
    /// # Errors
    ///
    /// Returns a [`PifError`] if the head cannot be encoded (out-of-range
    /// integer, oversized offsets).
    pub fn compile(clause: &Clause) -> Result<Self, PifError> {
        let head_stream = encode_clause_head(clause.head())?;
        Ok(ClauseRecord {
            head_stream,
            clause: clause.clone(),
        })
    }

    /// The PIF stream FS2 matches against the query.
    pub fn head_stream(&self) -> &PifStream {
        &self.head_stream
    }

    /// The complete stored clause.
    pub fn clause(&self) -> &Clause {
        &self.clause
    }

    /// Serializes the record: `u32` total length (including the length
    /// field itself), PIF stream, then the clause.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::new();
        self.head_stream.write_to(&mut body);
        write_clause(&self.clause, &mut body);
        let mut out = Vec::with_capacity(body.len() + 4);
        out.put_u32((body.len() + 4) as u32);
        out.extend_from_slice(&body);
        out
    }

    /// Size of the serialized record in bytes.
    pub fn byte_len(&self) -> usize {
        // Avoids materialising the buffer twice in hot paths would be
        // nicer, but records are compiled once and cached by the KB layer.
        self.to_bytes().len()
    }

    /// Deserializes one record from the front of `data`, returning it and
    /// the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`PifError::Malformed`] on truncation or invalid content.
    pub fn from_bytes(data: &[u8]) -> Result<(Self, usize), PifError> {
        let malformed = |offset: usize, reason: &str| PifError::Malformed {
            offset,
            reason: reason.to_owned(),
        };
        if data.len() < 4 {
            return Err(malformed(0, "truncated record length"));
        }
        let total = u32::from_be_bytes([data[0], data[1], data[2], data[3]]) as usize;
        if total < 4 || data.len() < total {
            return Err(malformed(0, "record length exceeds available data"));
        }
        let mut buf = &data[4..total];
        let head_stream = PifStream::read_from(&mut buf)?;
        let clause = read_clause(&mut buf)?;
        Ok((
            ClauseRecord {
                head_stream,
                clause,
            },
            total,
        ))
    }
}

fn write_clause(clause: &Clause, buf: &mut impl BufMut) {
    write_term(clause.head(), buf);
    buf.put_u16(clause.body().len() as u16);
    for goal in clause.body() {
        write_term(goal, buf);
    }
    buf.put_u16(clause.var_names().len() as u16);
    for name in clause.var_names() {
        buf.put_u16(name.len() as u16);
        buf.put_slice(name.as_bytes());
    }
}

fn read_clause(buf: &mut impl Buf) -> Result<Clause, PifError> {
    let malformed = |reason: &str| PifError::Malformed {
        offset: 0,
        reason: reason.to_owned(),
    };
    let limits = TermLimits::default();
    let head = read_term(buf, &limits)?;
    ensure(buf, 2)?;
    let n_body = buf.get_u16() as usize;
    let mut body = Vec::with_capacity(n_body.min(1024));
    for _ in 0..n_body {
        body.push(read_term(buf, &limits)?);
    }
    ensure(buf, 2)?;
    let n_vars = buf.get_u16() as usize;
    let mut var_names = Vec::with_capacity(n_vars.min(1024));
    for _ in 0..n_vars {
        ensure(buf, 2)?;
        let len = buf.get_u16() as usize;
        ensure(buf, len)?;
        let mut bytes = vec![0u8; len];
        buf.copy_to_slice(&mut bytes);
        var_names
            .push(String::from_utf8(bytes).map_err(|_| malformed("variable name is not UTF-8"))?);
    }
    Clause::new(head, body, var_names).map_err(|_| malformed("stored head is not callable"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_term::parser::parse_clause;
    use clare_term::SymbolTable;

    fn roundtrip(src: &str) {
        let mut sy = SymbolTable::new();
        let clause = parse_clause(src, &mut sy).unwrap();
        let record = ClauseRecord::compile(&clause).unwrap();
        let bytes = record.to_bytes();
        let (back, consumed) = ClauseRecord::from_bytes(&bytes).unwrap();
        assert_eq!(consumed, bytes.len(), "whole record consumed for {src}");
        assert_eq!(back.clause(), &clause, "clause roundtrip for {src}");
        assert_eq!(
            back.head_stream(),
            record.head_stream(),
            "stream roundtrip for {src}"
        );
    }

    #[test]
    fn roundtrips_facts_and_rules() {
        roundtrip("parent(tom, bob).");
        roundtrip("p(1, -2, 3.5, 'quoted atom').");
        roundtrip("gp(X, Z) :- p(X, Y), p(Y, Z).");
        roundtrip("member(X, [X | _]).");
        roundtrip("member(X, [_ | T]) :- member(X, T).");
        roundtrip("deep(f(g(h([a, b, [c | T]])))).");
        roundtrip("halt.");
    }

    #[test]
    fn record_length_prefix_is_total() {
        let mut sy = SymbolTable::new();
        let clause = parse_clause("p(a).", &mut sy).unwrap();
        let record = ClauseRecord::compile(&clause).unwrap();
        let bytes = record.to_bytes();
        let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        assert_eq!(len, bytes.len());
        assert_eq!(record.byte_len(), bytes.len());
    }

    #[test]
    fn consecutive_records_parse_from_one_buffer() {
        let mut sy = SymbolTable::new();
        let c1 = parse_clause("p(a).", &mut sy).unwrap();
        let c2 = parse_clause("p(b, c).", &mut sy).unwrap();
        let mut buf = ClauseRecord::compile(&c1).unwrap().to_bytes();
        buf.extend(ClauseRecord::compile(&c2).unwrap().to_bytes());
        let (r1, n1) = ClauseRecord::from_bytes(&buf).unwrap();
        let (r2, n2) = ClauseRecord::from_bytes(&buf[n1..]).unwrap();
        assert_eq!(r1.clause(), &c1);
        assert_eq!(r2.clause(), &c2);
        assert_eq!(n1 + n2, buf.len());
    }

    #[test]
    fn truncated_record_rejected() {
        let mut sy = SymbolTable::new();
        let clause = parse_clause("p(a, b, c).", &mut sy).unwrap();
        let bytes = ClauseRecord::compile(&clause).unwrap().to_bytes();
        for cut in [0, 2, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                ClauseRecord::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(ClauseRecord::from_bytes(&[0xFF; 16]).is_err());
    }

    #[test]
    fn head_stream_matches_direct_encoding() {
        let mut sy = SymbolTable::new();
        let clause = parse_clause("f(A, a, A).", &mut sy).unwrap();
        let record = ClauseRecord::compile(&clause).unwrap();
        let direct = encode_clause_head(clause.head()).unwrap();
        assert_eq!(record.head_stream(), &direct);
        let tags: Vec<u8> = record
            .head_stream()
            .words()
            .iter()
            .map(|w| w.tag())
            .collect();
        assert_eq!(tags, vec![0x26, 0x08, 0x24]);
    }
}
