//! Deterministic fault injection for the CLARE storage and network path.
//!
//! The paper's engine streams clauses off a disk, filters them in
//! hardware, and (in our reproduction) serves them over TCP — three
//! places where bytes can rot, reads can come up short, and workers can
//! die. This crate is the one switchboard every layer consults before
//! trusting its inputs:
//!
//! * [`crc32c`] — the Castagnoli checksum guarding disk tracks, `.ckb`
//!   sections, and wire frames (hand-rolled, resumable, slicing-by-8).
//! * [`FaultInjector`] — a trait deciding, per *site* and *context*,
//!   whether to corrupt the operation in flight. The default is a no-op;
//!   production code pays one relaxed atomic load per injection point.
//! * [`DeterministicInjector`] — a seeded injector whose every decision
//!   is a pure hash of `(seed, site, context)`. No sequence counters, no
//!   shared state: the same seed produces the same faults regardless of
//!   thread interleaving, which is what lets the chaos harness replay
//!   10,000 schedules and diff answers against a fault-free run.
//! * [`install`] — swaps an injector into the process-wide registry and
//!   returns an RAII guard. The guard also holds a global lock, so chaos
//!   tests in one binary serialize instead of corrupting each other.
//!
//! Injection *sites* are coarse, stable names ([`FaultSite`]); the
//! *context* is a site-specific 64-bit key (track index, byte offset,
//! request id) so faults land on addressable units that tests can reason
//! about.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod crc32c;

pub use crc32c::{crc32c, crc32c_append};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Where in the pipeline a fault decision is being made.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A disk [`Track`](../clare_disk/volume/struct.Track.html) being
    /// delivered to a reader. Context: track index mixed with a hash of
    /// the file name. Menu: bit flips, short reads.
    DiskTrackRead,
    /// A chunk read while loading a `.ckb` knowledge-base image.
    /// Context: byte offset of the chunk. Menu: bit flips, short reads.
    KbRead,
    /// A chunk written while saving a `.ckb` image. Context: byte offset.
    /// Menu: torn write (the file ends here, as if power was lost).
    CkbWrite,
    /// An FS2 sweep worker claiming a shard. Context: the shard's first
    /// track index. Menu: delays, panics.
    Fs2Worker,
    /// The server writing a reply frame. Context: request id. Menu:
    /// dropped frame, half-written frame, bit flip in the payload.
    NetServerSend,
    /// The client writing a request frame. Context: request id. Menu:
    /// dropped frame, half-written frame.
    NetClientSend,
    /// The epoll reactor pulling bytes off a ready socket. Context: the
    /// connection token mixed with the read round. Menu: short read
    /// (deliver only a prefix of what the kernel had — the frame
    /// reassembler must pick up mid-frame), spurious wakeup (an EAGAIN
    /// storm: the readiness notification yields no bytes this round).
    /// Both are *transparent* faults: answers must stay byte-identical.
    NetReactorRead,
    /// The epoll reactor flushing a connection's outbound queue.
    /// Context: the connection token mixed with the flush round. Menu:
    /// torn write (only a prefix of the pending bytes — possibly
    /// splitting a frame's length prefix — leaves this round; the rest
    /// must follow on a later `EPOLLOUT`). Transparent: replies must
    /// still arrive byte-identical.
    NetReactorWrite,
    /// The write-ahead log appending a commit batch. Context: the first
    /// sequence number of the batch. Menu: torn append (a prefix of the
    /// batch's frames reaches the file and the append reports failure, as
    /// if power was lost mid-write — the batch is never acknowledged, and
    /// replay-on-open must truncate the torn tail).
    WalAppend,
    /// The cluster router forwarding a shipped WAL frame to a shard's
    /// backup. Context: the record's sequence number. Menu: `Drop` (the
    /// frame never leaves — the resend window must recover it),
    /// `Delay` (the call site holds the frame one slot and swaps it with
    /// its successor — a reorder), `Truncate` (the call site forwards
    /// the frame twice — a duplicate). The last two are site-interpreted
    /// shapes, the established pattern for worker-style sites.
    ReplSend,
    /// A backup applying a shipped WAL frame. Context: the record's
    /// sequence number. Menu: `Drop` (refuse the frame with an error
    /// reply, forcing the router to retry), `Delay` (stall before
    /// applying).
    ReplApply,
    /// A serving worker beginning to execute a dequeued job. Context:
    /// the request id. Menu: `Delay` only — the worker stalls before
    /// touching the engine, so chaos schedules can pin workers long
    /// enough that queued jobs outlive their deadlines and must be shed
    /// (never executed, never cached).
    WorkerStall,
}

/// Number of distinct [`FaultSite`]s (sizes the counter arrays).
pub const SITE_COUNT: usize = 12;

impl FaultSite {
    /// All sites, in counter index order.
    pub const ALL: [FaultSite; SITE_COUNT] = [
        FaultSite::DiskTrackRead,
        FaultSite::KbRead,
        FaultSite::CkbWrite,
        FaultSite::Fs2Worker,
        FaultSite::NetServerSend,
        FaultSite::NetClientSend,
        FaultSite::NetReactorRead,
        FaultSite::NetReactorWrite,
        FaultSite::WalAppend,
        FaultSite::ReplSend,
        FaultSite::ReplApply,
        FaultSite::WorkerStall,
    ];

    /// Index of this site in [`Self::ALL`].
    pub fn index(self) -> usize {
        match self {
            FaultSite::DiskTrackRead => 0,
            FaultSite::KbRead => 1,
            FaultSite::CkbWrite => 2,
            FaultSite::Fs2Worker => 3,
            FaultSite::NetServerSend => 4,
            FaultSite::NetClientSend => 5,
            FaultSite::NetReactorRead => 6,
            FaultSite::NetReactorWrite => 7,
            FaultSite::WalAppend => 8,
            FaultSite::ReplSend => 9,
            FaultSite::ReplApply => 10,
            FaultSite::WorkerStall => 11,
        }
    }

    /// Stable display name (used in chaos reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::DiskTrackRead => "disk_track_read",
            FaultSite::KbRead => "kb_read",
            FaultSite::CkbWrite => "ckb_write",
            FaultSite::Fs2Worker => "fs2_worker",
            FaultSite::NetServerSend => "net_server_send",
            FaultSite::NetClientSend => "net_client_send",
            FaultSite::NetReactorRead => "net_reactor_read",
            FaultSite::NetReactorWrite => "net_reactor_write",
            FaultSite::WalAppend => "wal_append",
            FaultSite::ReplSend => "repl_send",
            FaultSite::ReplApply => "repl_apply",
            FaultSite::WorkerStall => "worker_stall",
        }
    }
}

/// What the injector asks the call site to do to the operation in
/// flight. Offsets and lengths are raw 64-bit values; the call site
/// reduces them modulo its buffer size, so one action shape serves every
/// site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Proceed untouched (the default, and the only answer the no-op
    /// injector ever gives).
    None,
    /// Flip one bit of the payload. The call site takes
    /// `bit % (len * 8)`.
    FlipBit {
        /// Raw bit selector, reduced modulo the payload bit length.
        bit: u64,
    },
    /// Deliver or persist only a prefix. The call site keeps
    /// `keep % len` bytes (possibly zero).
    Truncate {
        /// Raw length selector, reduced modulo the payload length.
        keep: u64,
    },
    /// Drop the operation entirely (a frame that never hits the wire).
    Drop,
    /// Stall for roughly this long before proceeding (worker sites).
    Delay {
        /// Stall duration in microseconds.
        micros: u64,
    },
    /// Panic at the injection point (worker sites).
    Panic,
}

/// A fault decision source. Implementations must be cheap and pure:
/// `decide` is called on hot paths and must give the same answer for the
/// same `(site, context)` pair for the lifetime of the injector.
pub trait FaultInjector: Send + Sync {
    /// The fault (if any) to apply at `site` for the unit identified by
    /// `context`.
    fn decide(&self, site: FaultSite, context: u64) -> FaultAction;
}

/// Per-site fault probabilities, in permille (0..=1000).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    permille: [u32; SITE_COUNT],
}

impl FaultPlan {
    /// A plan that injects nothing anywhere.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan injecting at every site with the same probability.
    pub fn uniform(permille: u32) -> Self {
        FaultPlan {
            permille: [permille.min(1000); SITE_COUNT],
        }
    }

    /// Sets one site's fault probability (builder style).
    pub fn with(mut self, site: FaultSite, permille: u32) -> Self {
        self.permille[site.index()] = permille.min(1000);
        self
    }

    /// This site's fault probability in permille.
    pub fn permille(&self, site: FaultSite) -> u32 {
        self.permille[site.index()]
    }
}

/// SplitMix64 finalizer — a strong 64-bit mix.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded injector whose decisions are pure functions of
/// `(seed, site, context)` — deterministic under any thread
/// interleaving, which is what makes chaos schedules replayable.
#[derive(Debug, Clone)]
pub struct DeterministicInjector {
    seed: u64,
    plan: FaultPlan,
}

impl DeterministicInjector {
    /// An injector driven by `seed` with per-site rates from `plan`.
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        DeterministicInjector { seed, plan }
    }
}

impl FaultInjector for DeterministicInjector {
    fn decide(&self, site: FaultSite, context: u64) -> FaultAction {
        let p = self.plan.permille(site);
        if p == 0 {
            return FaultAction::None;
        }
        let h = mix64(self.seed ^ mix64((site.index() as u64 + 1) ^ context.rotate_left(17)));
        if (h % 1000) as u32 >= p {
            return FaultAction::None;
        }
        // More independent bits pick the action and its parameter.
        let choice = mix64(h);
        let param = mix64(choice);
        match site {
            FaultSite::DiskTrackRead | FaultSite::KbRead => {
                if choice.is_multiple_of(2) {
                    FaultAction::FlipBit { bit: param }
                } else {
                    FaultAction::Truncate { keep: param }
                }
            }
            FaultSite::CkbWrite => FaultAction::Truncate { keep: param },
            FaultSite::Fs2Worker => {
                if choice.is_multiple_of(4) {
                    FaultAction::Panic
                } else {
                    FaultAction::Delay {
                        micros: param % 500,
                    }
                }
            }
            FaultSite::NetServerSend => match choice % 3 {
                0 => FaultAction::Drop,
                1 => FaultAction::Truncate { keep: param },
                _ => FaultAction::FlipBit { bit: param },
            },
            FaultSite::NetClientSend => {
                if choice.is_multiple_of(2) {
                    FaultAction::Drop
                } else {
                    FaultAction::Truncate { keep: param }
                }
            }
            FaultSite::NetReactorRead => {
                if choice.is_multiple_of(2) {
                    // Short read: the reactor caps how much it pulls off
                    // the socket this round.
                    FaultAction::Truncate { keep: param }
                } else {
                    // Spurious wakeup: zero bytes this round, as if the
                    // readiness notification raced a draining peer.
                    FaultAction::Drop
                }
            }
            FaultSite::NetReactorWrite => FaultAction::Truncate { keep: param },
            FaultSite::WalAppend => FaultAction::Truncate { keep: param },
            FaultSite::ReplSend => match choice % 3 {
                0 => FaultAction::Drop,
                1 => FaultAction::Delay {
                    micros: param % 500,
                },
                _ => FaultAction::Truncate { keep: param },
            },
            FaultSite::ReplApply => {
                if choice.is_multiple_of(2) {
                    FaultAction::Drop
                } else {
                    FaultAction::Delay {
                        micros: param % 500,
                    }
                }
            }
            // Worker stalls reach up to 100 ms — long enough to push a
            // queued job past a 50 ms deadline, short enough that chaos
            // schedules stay fast.
            FaultSite::WorkerStall => FaultAction::Delay {
                micros: param % 100_000,
            },
        }
    }
}

/// The always-clean injector the registry falls back to.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopInjector;

impl FaultInjector for NoopInjector {
    fn decide(&self, _site: FaultSite, _context: u64) -> FaultAction {
        FaultAction::None
    }
}

// --- process-wide registry ----------------------------------------------

/// Fast-path flag: injection points pay one relaxed load when no
/// injector is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);
static INJECTOR: RwLock<Option<Arc<dyn FaultInjector>>> = RwLock::new(None);
/// Serializes chaos tests within one binary: [`install`] holds this for
/// the guard's lifetime.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());
/// Faults actually handed out, per site (for chaos assertions).
static INJECTED: [AtomicU64; SITE_COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

fn read_injector() -> Option<Arc<dyn FaultInjector>> {
    match INJECTOR.read() {
        Ok(slot) => slot.clone(),
        Err(poisoned) => poisoned.into_inner().clone(),
    }
}

/// The fault decision for `site`/`context`. This is the call every
/// injection point makes; with no injector installed it is one relaxed
/// atomic load.
pub fn decide(site: FaultSite, context: u64) -> FaultAction {
    if !ENABLED.load(Ordering::Relaxed) {
        return FaultAction::None;
    }
    let Some(injector) = read_injector() else {
        return FaultAction::None;
    };
    let action = injector.decide(site, context);
    if action != FaultAction::None {
        INJECTED[site.index()].fetch_add(1, Ordering::Relaxed);
    }
    action
}

/// True when an injector is installed (cheap; used to skip building
/// fault-only context values on hot paths).
pub fn active() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Faults handed out so far, indexed like [`FaultSite::ALL`].
pub fn injected_counts() -> [u64; SITE_COUNT] {
    let mut out = [0u64; SITE_COUNT];
    for (slot, counter) in out.iter_mut().zip(INJECTED.iter()) {
        *slot = counter.load(Ordering::Relaxed);
    }
    out
}

/// Total faults handed out so far across all sites.
pub fn injected_total() -> u64 {
    injected_counts().iter().sum()
}

/// Keeps an injector installed; uninstalls on drop. Holding the guard
/// also holds a process-wide lock, so concurrent `install` calls (e.g.
/// chaos tests running in one binary) serialize.
pub struct InstallGuard {
    _lock: MutexGuard<'static, ()>,
}

impl std::fmt::Debug for InstallGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("InstallGuard")
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        match INJECTOR.write() {
            Ok(mut slot) => *slot = None,
            Err(poisoned) => *poisoned.into_inner() = None,
        }
    }
}

/// Installs `injector` as the process-wide fault source until the
/// returned guard drops. Blocks while another guard is alive.
pub fn install(injector: Arc<dyn FaultInjector>) -> InstallGuard {
    let lock = match INSTALL_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    match INJECTOR.write() {
        Ok(mut slot) => *slot = Some(injector),
        Err(poisoned) => *poisoned.into_inner() = Some(injector),
    }
    ENABLED.store(true, Ordering::SeqCst);
    InstallGuard { _lock: lock }
}

/// Applies a [`FaultAction`] to a byte buffer in place, returning `true`
/// when the buffer was changed. `Drop`/`Delay`/`Panic` are call-site
/// behaviors and leave the buffer alone.
pub fn corrupt_in_place(action: FaultAction, bytes: &mut Vec<u8>) -> bool {
    match action {
        FaultAction::FlipBit { bit } if !bytes.is_empty() => {
            let i = (bit % (bytes.len() as u64 * 8)) as usize;
            bytes[i / 8] ^= 1 << (i % 8);
            true
        }
        FaultAction::Truncate { keep } if !bytes.is_empty() => {
            let keep = (keep % bytes.len() as u64) as usize;
            bytes.truncate(keep);
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_injector_never_faults() {
        let inj = NoopInjector;
        for site in FaultSite::ALL {
            for ctx in 0..100 {
                assert_eq!(inj.decide(site, ctx), FaultAction::None);
            }
        }
    }

    #[test]
    fn decisions_are_pure_and_seed_sensitive() {
        let plan = FaultPlan::uniform(500);
        let a = DeterministicInjector::new(42, plan);
        let b = DeterministicInjector::new(42, plan);
        let c = DeterministicInjector::new(43, plan);
        let mut diverged = false;
        for site in FaultSite::ALL {
            for ctx in 0..200u64 {
                assert_eq!(a.decide(site, ctx), b.decide(site, ctx), "not pure");
                if a.decide(site, ctx) != c.decide(site, ctx) {
                    diverged = true;
                }
            }
        }
        assert!(diverged, "seeds 42 and 43 gave identical schedules");
    }

    #[test]
    fn rates_roughly_track_the_plan() {
        let inj = DeterministicInjector::new(7, FaultPlan::uniform(250));
        let hits = (0..4000u64)
            .filter(|&ctx| inj.decide(FaultSite::DiskTrackRead, ctx) != FaultAction::None)
            .count();
        // 25% nominal; accept a generous band.
        assert!((600..1400).contains(&hits), "hit rate {hits}/4000");
    }

    #[test]
    fn site_menus_are_respected() {
        let inj = DeterministicInjector::new(9, FaultPlan::uniform(1000));
        for ctx in 0..500u64 {
            match inj.decide(FaultSite::CkbWrite, ctx) {
                FaultAction::Truncate { .. } => {}
                other => panic!("CkbWrite produced {other:?}"),
            }
            match inj.decide(FaultSite::Fs2Worker, ctx) {
                FaultAction::Delay { micros } => assert!(micros < 500),
                FaultAction::Panic => {}
                other => panic!("Fs2Worker produced {other:?}"),
            }
            match inj.decide(FaultSite::WalAppend, ctx) {
                FaultAction::Truncate { .. } => {}
                other => panic!("WalAppend produced {other:?}"),
            }
            match inj.decide(FaultSite::WorkerStall, ctx) {
                FaultAction::Delay { micros } => assert!(micros < 100_000),
                other => panic!("WorkerStall produced {other:?}"),
            }
        }
    }

    #[test]
    fn registry_roundtrip_and_counters() {
        assert_eq!(decide(FaultSite::KbRead, 1), FaultAction::None);
        let before = injected_total();
        {
            let _guard = install(Arc::new(DeterministicInjector::new(
                3,
                FaultPlan::uniform(1000),
            )));
            assert!(active());
            let mut any = false;
            for ctx in 0..32 {
                if decide(FaultSite::KbRead, ctx) != FaultAction::None {
                    any = true;
                }
            }
            assert!(any, "a 100% plan never fired");
            assert!(injected_total() > before);
        }
        assert!(!active());
        assert_eq!(decide(FaultSite::KbRead, 1), FaultAction::None);
    }

    #[test]
    fn corrupt_in_place_flips_and_truncates() {
        let mut buf = vec![0u8; 16];
        assert!(corrupt_in_place(
            FaultAction::FlipBit { bit: 130 },
            &mut buf
        ));
        assert_eq!(buf.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
        let mut buf = vec![1u8; 16];
        assert!(corrupt_in_place(
            FaultAction::Truncate { keep: 21 },
            &mut buf
        ));
        assert_eq!(buf.len(), 5);
        let mut empty: Vec<u8> = Vec::new();
        assert!(!corrupt_in_place(
            FaultAction::FlipBit { bit: 3 },
            &mut empty
        ));
    }
}
