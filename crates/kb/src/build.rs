//! Building knowledge bases: consult source text or add clauses
//! programmatically, then compile every predicate to its clause file and
//! secondary index.

use crate::arena::ClauseArena;
use crate::predicate::{KnowledgeBase, Module, ModuleKind, Predicate};
use clare_disk::{DiskProfile, FileBuilder};
use clare_pif::ClauseRecord;
use clare_scw::{ClauseAddr, IndexFile, ScwConfig};
use clare_term::parser::{parse_program, ParseError};
use clare_term::{Clause, Symbol, SymbolTable};
use std::collections::HashMap;
use std::fmt;

/// Compilation parameters.
#[derive(Debug, Clone)]
pub struct KbConfig {
    /// Disk whose track geometry lays out the clause files.
    pub disk: DiskProfile,
    /// SCW+MB scheme for the secondary files.
    pub scw: ScwConfig,
    /// Modules whose compiled size exceeds this many bytes are classified
    /// [`ModuleKind::Large`] (disk resident). The default, 64 KB, keeps
    /// toy modules in memory and pushes anything substantial to disk.
    pub large_module_threshold: usize,
}

impl Default for KbConfig {
    fn default() -> Self {
        KbConfig {
            disk: DiskProfile::fujitsu_m2351a(),
            scw: ScwConfig::paper(),
            large_module_threshold: 64 * 1024,
        }
    }
}

impl KbConfig {
    /// Fingerprint of every parameter that affects compiled retrieval
    /// results (index bits, modelled scan rate, track layout). Two
    /// compilations of the same clauses agree byte-for-byte iff their
    /// fingerprints agree — the guard that lets
    /// [`KnowledgeBase::touched_predicates`] justify per-predicate cache
    /// invalidation. Worker parallelism is deliberately excluded: it
    /// changes wall-clock only, never results.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [
            u64::from(self.scw.width_bits()),
            u64::from(self.scw.bits_per_key()),
            self.scw.encoded_args() as u64,
            self.scw.scan_rate().as_bytes_per_sec().to_bits(),
            self.disk.track_bytes() as u64,
            self.large_module_threshold as u64,
        ] {
            h = (h ^ v).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Mints process-unique knowledge-base generations.
fn next_generation() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Errors while building a knowledge base.
#[derive(Debug)]
pub enum KbError {
    /// Source text failed to parse.
    Parse(ParseError),
    /// A clause could not be compiled to PIF.
    Pif(clare_pif::PifError),
    /// A clause record exceeds one disk track.
    RecordTooLarge(clare_disk::RecordTooLargeError),
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::Parse(e) => write!(f, "parse error: {e}"),
            KbError::Pif(e) => write!(f, "PIF compilation error: {e}"),
            KbError::RecordTooLarge(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for KbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KbError::Parse(e) => Some(e),
            KbError::Pif(e) => Some(e),
            KbError::RecordTooLarge(e) => Some(e),
        }
    }
}

impl From<ParseError> for KbError {
    fn from(e: ParseError) -> Self {
        KbError::Parse(e)
    }
}

impl From<clare_pif::PifError> for KbError {
    fn from(e: clare_pif::PifError) -> Self {
        KbError::Pif(e)
    }
}

impl From<clare_disk::RecordTooLargeError> for KbError {
    fn from(e: clare_disk::RecordTooLargeError) -> Self {
        KbError::RecordTooLarge(e)
    }
}

/// Accumulates clauses module by module, then compiles.
///
/// # Examples
///
/// ```
/// use clare_kb::{KbBuilder, KbConfig};
///
/// let mut b = KbBuilder::new();
/// b.consult("m", "p(a). p(b).")?;
/// let kb = b.finish(KbConfig::default());
/// assert_eq!(kb.modules().len(), 1);
/// # Ok::<(), clare_kb::KbError>(())
/// ```
#[derive(Debug, Default)]
pub struct KbBuilder {
    symbols: SymbolTable,
    modules: Vec<(String, Vec<Clause>)>,
    module_index: HashMap<String, usize>,
    /// Generation of the base this builder was decompiled from, if any.
    parent_generation: Option<u64>,
    /// Module slots that gained clauses since [`Self::set_baseline`] (or
    /// since creation, for a from-scratch builder). Dirtiness is tracked
    /// per *module*, not per predicate: appending clauses anywhere in a
    /// module can flip its [`ModuleKind`] across the large-module
    /// threshold, which changes the retrieval timing of every sibling
    /// predicate — so they must all count as touched.
    dirty_modules: std::collections::HashSet<usize>,
}

impl KbBuilder {
    /// An empty builder with a fresh symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The symbol table being populated (e.g. for building query terms in
    /// the same namespace).
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// Parses `source` and adds its clauses to `module` (created on first
    /// use), preserving order.
    ///
    /// # Errors
    ///
    /// Returns [`KbError::Parse`] on malformed source.
    pub fn consult(&mut self, module: &str, source: &str) -> Result<(), KbError> {
        let clauses = parse_program(source, &mut self.symbols)?;
        let slot = self.module_slot(module);
        if !clauses.is_empty() {
            self.dirty_modules.insert(slot);
        }
        self.modules[slot].1.extend(clauses);
        Ok(())
    }

    /// Adds one already-built clause to `module`.
    pub fn add_clause(&mut self, module: &str, clause: Clause) {
        let slot = self.module_slot(module);
        self.dirty_modules.insert(slot);
        self.modules[slot].1.push(clause);
    }

    /// The clauses currently staged for `module`, if it exists.
    pub fn module_clauses(&self, module: &str) -> Option<&[Clause]> {
        self.module_index
            .get(module)
            .map(|&i| self.modules[i].1.as_slice())
    }

    /// Replaces `module`'s staged clauses wholesale (the module is
    /// created on first use) and marks it dirty, so `try_finish` records
    /// every one of its predicates as touched. Compaction uses this to
    /// fold the memtable overlay into rebuilt track segments while the
    /// epoch scheme invalidates only the affected predicates.
    pub fn set_module_clauses(&mut self, module: &str, clauses: Vec<Clause>) {
        let slot = self.module_slot(module);
        self.dirty_modules.insert(slot);
        self.modules[slot].1 = clauses;
    }

    /// Declares the clauses added so far to be the verbatim content of the
    /// base with generation `parent`: the dirty set restarts empty, so the
    /// finished base's [`KnowledgeBase::touched_predicates`] lists only
    /// predicates modified *after* this point.
    pub(crate) fn set_baseline(&mut self, parent: u64) {
        self.parent_generation = Some(parent);
        self.dirty_modules.clear();
    }

    fn module_slot(&mut self, module: &str) -> usize {
        if let Some(&i) = self.module_index.get(module) {
            return i;
        }
        let i = self.modules.len();
        self.modules.push((module.to_owned(), Vec::new()));
        self.module_index.insert(module.to_owned(), i);
        i
    }

    /// Compiles everything: groups clauses into predicates (preserving
    /// clause order within each), lays each predicate's records onto disk
    /// tracks, and builds its secondary index.
    ///
    /// Clauses that fail PIF compilation are skipped with a debug
    /// assertion; use [`Self::try_finish`] to surface the error.
    pub fn finish(self, config: KbConfig) -> KnowledgeBase {
        self.try_finish(config).expect("clauses compile to PIF")
    }

    /// Fallible variant of [`Self::finish`].
    ///
    /// # Errors
    ///
    /// Returns the first PIF or layout error encountered.
    pub fn try_finish(self, config: KbConfig) -> Result<KnowledgeBase, KbError> {
        let mut modules = Vec::new();
        let mut by_indicator = HashMap::new();
        let mut touched: Vec<(Symbol, usize)> = Vec::new();
        for (mi, (name, clauses)) in self.modules.into_iter().enumerate() {
            // Group into predicates, preserving first-seen order.
            let mut order: Vec<(Symbol, usize)> = Vec::new();
            let mut grouped: HashMap<(Symbol, usize), Vec<Clause>> = HashMap::new();
            for clause in clauses {
                let key = clause.predicate();
                if !grouped.contains_key(&key) {
                    order.push(key);
                }
                grouped.entry(key).or_default().push(clause);
            }
            if self.dirty_modules.contains(&mi) {
                // Every predicate of a dirty module counts as touched: new
                // clauses elsewhere in the module can flip its ModuleKind,
                // which changes sibling predicates' retrieval timing.
                touched.extend(order.iter().copied());
            }
            let mut predicates = Vec::new();
            for (pi, key) in order.iter().enumerate() {
                let clauses = grouped.remove(key).expect("grouped by key");
                let predicate = compile_predicate(*key, clauses, &config)?;
                by_indicator.insert(*key, (mi, pi));
                predicates.push(predicate);
            }
            let mut module = Module {
                name,
                kind: ModuleKind::Small,
                predicates,
            };
            if module.compiled_bytes() > config.large_module_threshold {
                module.kind = ModuleKind::Large;
            }
            modules.push(module);
        }
        touched.sort_unstable_by_key(|(s, a)| (s.offset(), *a));
        let mut kb = KnowledgeBase {
            symbols: self.symbols,
            modules,
            by_indicator,
            generation: next_generation(),
            parent_generation: self.parent_generation,
            touched,
            build_fingerprint: config.fingerprint(),
            content_fingerprint: 0,
        };
        kb.content_fingerprint = kb.compute_content_fingerprint();
        Ok(kb)
    }
}

fn compile_predicate(
    (functor, arity): (Symbol, usize),
    clauses: Vec<Clause>,
    config: &KbConfig,
) -> Result<Predicate, KbError> {
    let mut file_builder = FileBuilder::new(config.disk.track_bytes());
    let mut index = IndexFile::with_capacity(config.scw, clauses.len());
    let mut addrs = Vec::with_capacity(clauses.len());
    let mut arena = ClauseArena::default();
    let mut id_by_addr = HashMap::with_capacity(clauses.len());
    // Track layout mirrors FileBuilder's first-fit so addresses line up.
    let mut track = 0u32;
    let mut slot = 0u16;
    let mut used = 0usize;
    for (i, clause) in clauses.iter().enumerate() {
        let record = ClauseRecord::compile(clause)?;
        let bytes = record.to_bytes();
        if used + bytes.len() > config.disk.track_bytes() && used > 0 {
            track += 1;
            slot = 0;
            used = 0;
        }
        file_builder.append_record(&bytes)?;
        let addr = ClauseAddr::new(track, slot);
        index.insert(clause.head(), addr);
        addrs.push(addr);
        // The head stream is already decoded here — capture it so
        // retrievals never re-parse record bytes.
        arena.push_clause(track as usize, record.head_stream().words());
        id_by_addr.insert(addr, i);
        used += bytes.len();
        slot += 1;
    }
    Ok(Predicate {
        functor,
        arity,
        clauses,
        file: file_builder.finish(format!("pred_{}_{arity}.pdb", functor.offset())),
        index,
        addrs,
        arena,
        id_by_addr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_agree_with_file_layout() {
        let mut b = KbBuilder::new();
        let facts: Vec<String> = (0..2000).map(|i| format!("big(k{i}, v{i}).")).collect();
        b.consult("m", &facts.join("\n")).unwrap();
        let kb = b.finish(KbConfig::default());
        let p = kb.lookup("big", 2).unwrap();
        assert!(p.file().track_count() > 1, "spans multiple tracks");
        // Every address must point at the right record.
        for (i, addr) in p.addrs().iter().enumerate() {
            let record = p.record_at(*addr);
            let (decoded, _) = clare_pif::ClauseRecord::from_bytes(record).unwrap();
            assert_eq!(
                decoded.clause(),
                &p.clauses()[i],
                "address {addr} for clause {i}"
            );
        }
    }

    #[test]
    fn small_and_large_module_classification() {
        let mut b = KbBuilder::new();
        b.consult("tiny", "p(a).").unwrap();
        let facts: Vec<String> = (0..5000).map(|i| format!("q(k{i}, data{i}).")).collect();
        b.consult("huge", &facts.join("\n")).unwrap();
        let kb = b.finish(KbConfig::default());
        assert_eq!(kb.modules()[0].kind(), ModuleKind::Small);
        assert_eq!(kb.modules()[1].kind(), ModuleKind::Large);
    }

    #[test]
    fn consult_accumulates_across_calls() {
        let mut b = KbBuilder::new();
        b.consult("m", "p(a).").unwrap();
        b.consult("m", "p(b). q(c).").unwrap();
        let kb = b.finish(KbConfig::default());
        assert_eq!(kb.modules().len(), 1);
        assert_eq!(kb.lookup("p", 1).unwrap().clauses().len(), 2);
        assert_eq!(kb.lookup("q", 1).unwrap().clauses().len(), 1);
    }

    #[test]
    fn parse_errors_surface() {
        let mut b = KbBuilder::new();
        assert!(matches!(b.consult("m", "p(a"), Err(KbError::Parse(_))));
    }

    #[test]
    fn pif_errors_surface_in_try_finish() {
        let mut b = KbBuilder::new();
        b.consult("m", "p(999999999999).").unwrap();
        assert!(matches!(
            b.try_finish(KbConfig::default()),
            Err(KbError::Pif(_))
        ));
    }

    #[test]
    fn incremental_builders_track_touched_predicates() {
        let mut b = KbBuilder::new();
        b.consult("m", "p(a). q(b).").unwrap();
        b.consult("other", "r(z).").unwrap();
        let kb = b.finish(KbConfig::default());
        assert!(kb.parent_generation().is_none());
        assert_eq!(kb.touched_predicates().len(), 3);

        let mut inc = kb.to_builder();
        inc.consult("m", "p(c).").unwrap();
        let kb2 = inc.finish(KbConfig::default());
        assert_eq!(kb2.parent_generation(), Some(kb.generation()));
        assert_ne!(kb2.generation(), kb.generation());
        // Touching p/1 touches its whole module (the module's kind could
        // have flipped), but not the untouched `other` module.
        let p = kb2.symbols().lookup_atom("p").unwrap();
        let q = kb2.symbols().lookup_atom("q").unwrap();
        let mut want = vec![(p, 1), (q, 1)];
        want.sort_unstable_by_key(|(s, a)| (s.offset(), *a));
        assert_eq!(kb2.touched_predicates(), want.as_slice());
        assert_eq!(kb.build_fingerprint(), kb2.build_fingerprint());

        // An untouched incremental rebuild touches nothing.
        let kb3 = kb2.to_builder().finish(KbConfig::default());
        assert!(kb3.touched_predicates().is_empty());
        assert_eq!(kb3.parent_generation(), Some(kb2.generation()));
    }

    #[test]
    fn fingerprint_tracks_result_affecting_parameters() {
        let base = KbConfig::default();
        assert_eq!(base.fingerprint(), KbConfig::default().fingerprint());
        let wider = KbConfig {
            scw: ScwConfig::custom(128, 3, 12),
            ..KbConfig::default()
        };
        assert_ne!(base.fingerprint(), wider.fingerprint());
        // Parallelism is wall-clock only: same fingerprint.
        let parallel = KbConfig {
            scw: ScwConfig::paper().with_parallelism(8),
            ..KbConfig::default()
        };
        assert_eq!(base.fingerprint(), parallel.fingerprint());
    }

    #[test]
    fn add_clause_programmatically() {
        let mut b = KbBuilder::new();
        let mut builder_scope = clare_term::builder::TermBuilder::new(b.symbols_mut());
        let args = vec![builder_scope.atom("x"), builder_scope.int(1)];
        let fact = builder_scope.fact("p", args);
        b.add_clause("m", fact);
        let kb = b.finish(KbConfig::default());
        assert_eq!(kb.lookup("p", 2).unwrap().clauses().len(), 1);
    }
}
