//! Overhead budget for the observability layer: the FS2 hot path with
//! its metric recording (per-track local accumulation flushed to the
//! process registry, plus a span with no sink installed) must cost less
//! than 2% over the bare engine loop.
//!
//! The criterion shim prints medians but exposes no programmatic
//! results, so the <2% check runs as a separate best-of-N measurement
//! after the criterion groups and fails the bench run loudly if the
//! budget is blown. Measurement noise is damped by taking the minimum of
//! several alternating rounds.

use clare_fs2::Fs2Engine;
use clare_pif::{encode_clause_head, encode_query, PifStream};
use clare_term::parser::{parse_clause, parse_term};
use clare_term::SymbolTable;
use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use std::time::Instant;

const CLAUSES: usize = 20_000;

fn workload() -> (PifStream, Vec<PifStream>) {
    let mut symbols = SymbolTable::new();
    let query = parse_term("fact(k17, X, T)", &mut symbols).unwrap();
    let streams: Vec<PifStream> = (0..CLAUSES)
        .map(|i| {
            let c = parse_clause(
                &format!("fact(k{}, v{}, t{}).", i % 37, i, i % 11),
                &mut symbols,
            )
            .unwrap();
            encode_clause_head(c.head()).unwrap()
        })
        .collect();
    (encode_query(&query).unwrap(), streams)
}

/// The bare engine loop: what FS2 filtering costs with no observability.
fn run_bare(engine: &mut Fs2Engine, streams: &[PifStream]) -> usize {
    let mut hits = 0usize;
    for s in streams {
        if engine.match_clause_quiet(s).matched {
            hits += 1;
        }
    }
    hits
}

/// The instrumented loop: exactly the recording the retrieval pipeline
/// performs per track — per-clause locals, one registry flush, and a
/// span with no sink installed.
fn run_instrumented(engine: &mut Fs2Engine, streams: &[PifStream]) -> usize {
    let _span = clare_trace::span("fs2.track");
    let start = Instant::now();
    let mut hits = 0usize;
    let mut clauses = 0u64;
    let mut ops = [0u64; clare_trace::FS2_OPS];
    for s in streams {
        let verdict = engine.match_clause_quiet(s);
        clauses += 1;
        for (i, n) in verdict.op_histogram.iter().enumerate() {
            ops[i] += *n as u64;
        }
        if verdict.matched {
            hits += 1;
        }
    }
    let m = clare_trace::metrics();
    m.fs2_tracks.inc();
    m.fs2_clauses.add(clauses);
    m.fs2_satisfiers.add(hits as u64);
    for (i, n) in ops.iter().enumerate() {
        m.fs2_ops[i].add(*n);
    }
    m.fs2_wall_ns.record(start.elapsed().as_nanos() as u64);
    hits
}

fn bench_hot_path(c: &mut Criterion) {
    let (q_stream, streams) = workload();
    let mut group = c.benchmark_group("fs2_trace_overhead");
    group.sample_size(10);
    let mut engine = Fs2Engine::new(&q_stream).unwrap();
    group.bench_function("bare", |b| {
        b.iter(|| black_box(run_bare(&mut engine, black_box(&streams))))
    });
    group.bench_function("instrumented", |b| {
        b.iter(|| black_box(run_instrumented(&mut engine, black_box(&streams))))
    });
    group.finish();
}

criterion_group!(benches, bench_hot_path);

fn overhead_check() {
    let (q_stream, streams) = workload();
    let mut engine = Fs2Engine::new(&q_stream).unwrap();
    // Warm up caches and the registry.
    black_box(run_bare(&mut engine, &streams));
    black_box(run_instrumented(&mut engine, &streams));

    let time = |f: &mut dyn FnMut() -> usize| {
        let t = Instant::now();
        black_box(f());
        t.elapsed().as_secs_f64()
    };
    // Alternate rounds and keep each variant's best time: the minimum is
    // the least-noise estimate of intrinsic cost.
    let (mut best_bare, mut best_instr) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..7 {
        best_bare = best_bare.min(time(&mut || run_bare(&mut engine, &streams)));
        best_instr = best_instr.min(time(&mut || run_instrumented(&mut engine, &streams)));
    }
    let overhead = best_instr / best_bare - 1.0;
    println!(
        "fs2 hot-path no-op-sink overhead: {:+.3}% (bare {:.3} ms, instrumented {:.3} ms)",
        overhead * 100.0,
        best_bare * 1e3,
        best_instr * 1e3,
    );
    assert!(
        overhead < 0.02,
        "observability overhead {:.3}% blows the 2% budget",
        overhead * 100.0
    );
}

fn main() {
    benches();
    overhead_check();
}
