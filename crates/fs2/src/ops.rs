//! The seven FS2 hardware operations, defined by their datapath routes.
//!
//! Each operation is a sequence of microprogram cycles; in every cycle the
//! database argument and the query argument travel *in parallel* along two
//! selector routes. The paper's rule: "although information travels on both
//! routes in parallel, the longest routing time of the two should be taken"
//! — so an operation's execution time is
//!
//! ```text
//!   Σ over cycles max(db route, query route)  +  terminal delay
//! ```
//!
//! where the terminal is the comparator (30 ns) or a memory write. Table 1
//! of the paper (105/95/115/105/170/170/235 ns) is *derived* from these
//! route definitions — see [`HwOp::execution_time`] — and the route lists
//! below transcribe Figures 6–12 exactly.

use crate::components::{Component, Terminal};
use clare_disk::SimNanos;
use std::fmt;

use Component::*;

/// One microprogram cycle: the two parallel routes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cycle {
    /// Components traversed by the database argument this cycle
    /// (empty when the value is held from a previous cycle).
    pub db_route: &'static [Component],
    /// Components traversed by the query argument this cycle.
    pub query_route: &'static [Component],
}

impl Cycle {
    /// Sum of delays along the database route.
    pub fn db_time(&self) -> SimNanos {
        self.db_route.iter().map(|c| c.delay()).sum()
    }

    /// Sum of delays along the query route.
    pub fn query_time(&self) -> SimNanos {
        self.query_route.iter().map(|c| c.delay()).sum()
    }

    /// The cycle's contribution: the longer of the two parallel routes.
    pub fn time(&self) -> SimNanos {
        self.db_time().max(self.query_time())
    }
}

/// The seven hardware operations of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HwOp {
    /// Figure 6 — simple comparison of two words.
    Match,
    /// Figure 7 — store the query argument at the DB Memory location
    /// addressed by a first-occurrence database variable.
    DbStore,
    /// Figure 8 — store the database argument at the Query Memory location
    /// addressed by a first-occurrence query variable.
    QueryStore,
    /// Figure 9 — fetch a subsequent database variable's binding and
    /// compare.
    DbFetch,
    /// Figure 10 — fetch a subsequent query variable's binding (two
    /// cycles) and compare.
    QueryFetch,
    /// Figure 11 — chase a database variable cross-bound to a query
    /// variable (two cycles) and compare.
    DbCrossBoundFetch,
    /// Figure 12 — chase a query variable cross-bound to a database
    /// variable (three cycles) and compare.
    QueryCrossBoundFetch,
}

impl HwOp {
    /// All seven operations, in Table 1 order.
    pub const ALL: [HwOp; 7] = [
        HwOp::Match,
        HwOp::DbStore,
        HwOp::QueryStore,
        HwOp::DbFetch,
        HwOp::QueryFetch,
        HwOp::DbCrossBoundFetch,
        HwOp::QueryCrossBoundFetch,
    ];

    /// This operation's position in [`Self::ALL`] (Table 1 order) — the
    /// slot it occupies in op histograms.
    pub fn index(self) -> usize {
        match self {
            HwOp::Match => 0,
            HwOp::DbStore => 1,
            HwOp::QueryStore => 2,
            HwOp::DbFetch => 3,
            HwOp::QueryFetch => 4,
            HwOp::DbCrossBoundFetch => 5,
            HwOp::QueryCrossBoundFetch => 6,
        }
    }

    /// The operation's name as printed in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            HwOp::Match => "MATCH",
            HwOp::DbStore => "DB_STORE",
            HwOp::QueryStore => "QUERY_STORE",
            HwOp::DbFetch => "DB_FETCH",
            HwOp::QueryFetch => "QUERY_FETCH",
            HwOp::DbCrossBoundFetch => "DB_CROSS_BOUND_FETCH",
            HwOp::QueryCrossBoundFetch => "QUERY_CROSS_BOUND_FETCH",
        }
    }

    /// The figure in the paper that defines the operation's routes.
    pub fn figure(self) -> u8 {
        match self {
            HwOp::Match => 6,
            HwOp::DbStore => 7,
            HwOp::QueryStore => 8,
            HwOp::DbFetch => 9,
            HwOp::QueryFetch => 10,
            HwOp::DbCrossBoundFetch => 11,
            HwOp::QueryCrossBoundFetch => 12,
        }
    }

    /// The per-cycle routes, transcribed from the figures.
    pub fn cycles(self) -> Vec<Cycle> {
        match self {
            // Fig. 6: db = Double Buffer → Sel1 (40); query = Sel6 → Query
            // Memory → Sel3 (75).
            HwOp::Match => vec![Cycle {
                db_route: &[DoubleBuffer, Sel1],
                query_route: &[Sel6, QueryMemory, Sel3],
            }],
            // Fig. 7: db = Double Buffer → Sel1 → Sel2 (60) addresses the
            // DB Memory; query = Sel6 → Query Memory → Reg3 (75) supplies
            // the data to write.
            HwOp::DbStore => vec![Cycle {
                db_route: &[DoubleBuffer, Sel1, Sel2],
                query_route: &[Sel6, QueryMemory, Reg3],
            }],
            // Fig. 8: db = Double Buffer → Sel1 → Sel5 → Sel4 (80) supplies
            // the data; query = Sel6 (20) supplies the address.
            HwOp::QueryStore => vec![Cycle {
                db_route: &[DoubleBuffer, Sel1, Sel5, Sel4],
                query_route: &[Sel6],
            }],
            // Fig. 9: db = Double Buffer → DB Memory → Sel1 (65); query as
            // in MATCH (75).
            HwOp::DbFetch => vec![Cycle {
                db_route: &[DoubleBuffer, DbMemory, Sel1],
                query_route: &[Sel6, QueryMemory, Sel3],
            }],
            // Fig. 10: cycle 1 query = Sel6 → Query Memory → Sel3 → Sel2 →
            // DB Memory (120), db = Double Buffer → Sel1 (40); cycle 2
            // query = Sel3 (20), db held.
            HwOp::QueryFetch => vec![
                Cycle {
                    db_route: &[DoubleBuffer, Sel1],
                    query_route: &[Sel6, QueryMemory, Sel3, Sel2, DbMemory],
                },
                Cycle {
                    db_route: &[],
                    query_route: &[Sel3],
                },
            ],
            // Fig. 11: cycle 1 db = Double Buffer → DB Memory → Reg1 (65),
            // query = Sel6 → Query Memory → Sel3 (75); cycle 2 db = Reg1 →
            // DB Memory → Sel1 (65), query held.
            HwOp::DbCrossBoundFetch => vec![
                Cycle {
                    db_route: &[DoubleBuffer, DbMemory, Reg1],
                    query_route: &[Sel6, QueryMemory, Sel3],
                },
                Cycle {
                    db_route: &[Reg1, DbMemory, Sel1],
                    query_route: &[],
                },
            ],
            // Fig. 12: cycle 1 query = Sel6 → Query Memory → Sel3 → Sel2
            // (95), db = Double Buffer → Sel1 (40); cycle 2 query =
            // DB Memory → Sel3 → Sel2 (65); cycle 3 query = DB Memory →
            // Sel3 (45); db held from cycle 1.
            HwOp::QueryCrossBoundFetch => vec![
                Cycle {
                    db_route: &[DoubleBuffer, Sel1],
                    query_route: &[Sel6, QueryMemory, Sel3, Sel2],
                },
                Cycle {
                    db_route: &[],
                    query_route: &[DbMemory, Sel3, Sel2],
                },
                Cycle {
                    db_route: &[],
                    query_route: &[DbMemory, Sel3],
                },
            ],
        }
    }

    /// The terminal action closing the operation.
    pub fn terminal(self) -> Terminal {
        match self {
            HwOp::DbStore => Terminal::WriteDbMemory,
            HwOp::QueryStore => Terminal::WriteQueryMemory,
            _ => Terminal::Compare,
        }
    }

    /// Execution time, derived from the routes: Σ per-cycle max(parallel
    /// routes) + terminal delay. Reproduces Table 1 exactly.
    ///
    /// # Examples
    ///
    /// ```
    /// use clare_fs2::HwOp;
    ///
    /// assert_eq!(HwOp::Match.execution_time().as_ns(), 105);
    /// assert_eq!(HwOp::QueryCrossBoundFetch.execution_time().as_ns(), 235);
    /// ```
    pub fn execution_time(self) -> SimNanos {
        let routes: SimNanos = self.cycles().iter().map(Cycle::time).sum();
        routes + self.terminal().delay()
    }

    /// Number of microprogram cycles the operation occupies.
    pub fn cycle_count(self) -> usize {
        self.cycles().len()
    }

    /// The full route trace, for regenerating the figures' timing tables.
    pub fn route_trace(self) -> RouteTrace {
        RouteTrace {
            op: self,
            cycles: self.cycles(),
        }
    }

    /// The slowest of the seven operations — drives the worst-case
    /// filtering rate claim of §4.
    pub fn slowest() -> HwOp {
        Self::ALL
            .into_iter()
            .max_by_key(|op| op.execution_time())
            .expect("ALL is non-empty")
    }
}

impl fmt::Display for HwOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A printable breakdown of an operation's routes — the content of the
/// timing boxes under Figures 6–12.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteTrace {
    /// The operation.
    pub op: HwOp,
    /// Its cycles.
    pub cycles: Vec<Cycle>,
}

impl fmt::Display for RouteTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Timing Calculation for the {} Operation (Figure {})",
            self.op,
            self.op.figure()
        )?;
        let multi = self.cycles.len() > 1;
        for (i, cycle) in self.cycles.iter().enumerate() {
            if multi {
                writeln!(f, "  cycle {}:", i + 1)?;
            }
            for (label, route, time) in [
                ("database route", cycle.db_route, cycle.db_time()),
                ("query route", cycle.query_route, cycle.query_time()),
            ] {
                if route.is_empty() {
                    writeln!(f, "    {label:<15}: (held from previous cycle)")?;
                } else {
                    let path: Vec<String> = route
                        .iter()
                        .map(|c| format!("{} {}", c, c.delay().as_ns()))
                        .collect();
                    writeln!(
                        f,
                        "    {label:<15}: {} (={})",
                        path.join(" -> "),
                        time.as_ns()
                    )?;
                }
            }
        }
        writeln!(
            f,
            "  {} (={})",
            self.op.terminal(),
            self.op.terminal().delay().as_ns()
        )?;
        write!(
            f,
            "  execution time = {} ns",
            self.op.execution_time().as_ns()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 of the paper, derived from the component-level routes.
    #[test]
    fn table_1_execution_times() {
        let expected = [
            (HwOp::Match, 105),
            (HwOp::DbStore, 95),
            (HwOp::QueryStore, 115),
            (HwOp::DbFetch, 105),
            (HwOp::QueryFetch, 170),
            (HwOp::DbCrossBoundFetch, 170),
            (HwOp::QueryCrossBoundFetch, 235),
        ];
        for (op, ns) in expected {
            assert_eq!(
                op.execution_time().as_ns(),
                ns,
                "{op} must take {ns} ns (Table 1)"
            );
        }
    }

    /// The per-route subtotals printed under each figure.
    #[test]
    fn figure_route_subtotals() {
        // Figure 6 (MATCH): db 40, query 75.
        let c = &HwOp::Match.cycles()[0];
        assert_eq!(c.db_time().as_ns(), 40);
        assert_eq!(c.query_time().as_ns(), 75);
        // Figure 7 (DB_STORE): db 60, query 75.
        let c = &HwOp::DbStore.cycles()[0];
        assert_eq!(c.db_time().as_ns(), 60);
        assert_eq!(c.query_time().as_ns(), 75);
        // Figure 8 (QUERY_STORE): db 80, query 20.
        let c = &HwOp::QueryStore.cycles()[0];
        assert_eq!(c.db_time().as_ns(), 80);
        assert_eq!(c.query_time().as_ns(), 20);
        // Figure 9 (DB_FETCH): db 65, query 75.
        let c = &HwOp::DbFetch.cycles()[0];
        assert_eq!(c.db_time().as_ns(), 65);
        assert_eq!(c.query_time().as_ns(), 75);
        // Figure 10 (QUERY_FETCH): cycle1 query 120, cycle2 query 20.
        let cs = HwOp::QueryFetch.cycles();
        assert_eq!(cs[0].query_time().as_ns(), 120);
        assert_eq!(cs[0].db_time().as_ns(), 40);
        assert_eq!(cs[1].query_time().as_ns(), 20);
        // Figure 11 (DB_CROSS_BOUND_FETCH): c1 db 65/query 75, c2 db 65.
        let cs = HwOp::DbCrossBoundFetch.cycles();
        assert_eq!(cs[0].db_time().as_ns(), 65);
        assert_eq!(cs[0].query_time().as_ns(), 75);
        assert_eq!(cs[1].db_time().as_ns(), 65);
        // Figure 12 (QUERY_CROSS_BOUND_FETCH): query 95, 65, 45.
        let cs = HwOp::QueryCrossBoundFetch.cycles();
        assert_eq!(cs[0].query_time().as_ns(), 95);
        assert_eq!(cs[1].query_time().as_ns(), 65);
        assert_eq!(cs[2].query_time().as_ns(), 45);
    }

    #[test]
    fn cycle_counts_match_figures() {
        assert_eq!(HwOp::Match.cycle_count(), 1);
        assert_eq!(HwOp::DbStore.cycle_count(), 1);
        assert_eq!(HwOp::QueryStore.cycle_count(), 1);
        assert_eq!(HwOp::DbFetch.cycle_count(), 1);
        assert_eq!(HwOp::QueryFetch.cycle_count(), 2);
        assert_eq!(HwOp::DbCrossBoundFetch.cycle_count(), 2);
        assert_eq!(HwOp::QueryCrossBoundFetch.cycle_count(), 3);
    }

    #[test]
    fn slowest_is_query_cross_bound_fetch() {
        assert_eq!(HwOp::slowest(), HwOp::QueryCrossBoundFetch);
        assert_eq!(HwOp::slowest().execution_time().as_ns(), 235);
    }

    #[test]
    fn store_ops_terminate_with_writes() {
        assert_eq!(HwOp::DbStore.terminal(), Terminal::WriteDbMemory);
        assert_eq!(HwOp::QueryStore.terminal(), Terminal::WriteQueryMemory);
        assert_eq!(HwOp::Match.terminal(), Terminal::Compare);
        assert_eq!(HwOp::QueryCrossBoundFetch.terminal(), Terminal::Compare);
    }

    #[test]
    fn index_agrees_with_all_order() {
        for (i, op) in HwOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i, "{}", op.name());
        }
    }

    #[test]
    fn route_trace_prints_figure_content() {
        let t = HwOp::Match.route_trace().to_string();
        assert!(t.contains("MATCH"));
        assert!(t.contains("Double Buffer 20 -> Sel1 20 (=40)"));
        assert!(t.contains("Sel6 20 -> Query Memory 35 -> Sel3 20 (=75)"));
        assert!(t.contains("execution time = 105 ns"));
        let t = HwOp::QueryCrossBoundFetch.route_trace().to_string();
        assert!(t.contains("cycle 3"));
        assert!(t.contains("execution time = 235 ns"));
    }
}
