//! Wire encodings for every `clare-net` operation.
//!
//! Query terms travel as PIF term bytes (via [`clare_pif::encode_term`] /
//! [`clare_pif::decode_term`]), so the network protocol speaks the same
//! type-driven format the simulated hardware consumes — the wire *is* the
//! Pseudo In-line Format, framed. Everything around the terms (counts,
//! stats, strings) is plain big-endian integers with length prefixes.
//!
//! All decoders here take untrusted bytes: they must return
//! [`WireError`] on any malformed input and never panic, a property the
//! crate's fuzz tests pin. Decoding is bounds-checked through [`Cur`] and
//! term payloads inherit the hardened limits of
//! [`clare_pif::TermLimits`].

use clare_core::{
    CommitReceipt, ModeChoice, Retrieval, RetrievalStats, SearchMode, ServerStats, Solution,
    SolveOutcome, SolveStats,
};
use clare_disk::SimNanos;
use clare_pif::{decode_term, encode_term, TermLimits};
use clare_term::{ClauseId, FloatId, Symbol, SymbolTable, Term};
use clare_trace::{HistogramSnapshot, MetricsSnapshot};

/// Protocol version spoken by this build. Bumped on any incompatible frame
/// or payload change; the handshake rejects mismatched peers outright
/// (status [`HelloStatus::VersionMismatch`]) rather than guessing.
///
/// Version 2 added the degradation fields to the retrieval / solve / stats
/// payloads and the capability byte to both hellos.
///
/// Version 3 added the replication stream opcodes (`SUBSCRIBE_LOG` /
/// `LOG_FRAME` / `REPL_ACK`), the KB build fingerprint to the server
/// hello (widening it from 12 to 20 bytes), and the `ReplGap` error
/// code.
///
/// Version 4 added the query-budget extension ([`BudgetExt`], gated by
/// [`CAP_QUERY_BUDGET`]) to the retrieve / batch / solve requests and the
/// `BudgetExceeded` error code. The extension is an optional trailing
/// block: a v4 peer that sets no limits emits byte-identical payloads to
/// v3, and servers still admit v3 clients ([`MIN_PROTOCOL_VERSION`]).
pub const PROTOCOL_VERSION: u16 = 4;

/// Oldest protocol version this build still serves. The hello handshake
/// admits any version in `MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION` and
/// echoes the client's version back, so old clients keep their exact wire
/// dialect (budget-capable replies are never sent to a v3 peer).
pub const MIN_PROTOCOL_VERSION: u16 = 3;

/// Hello capability bit: the peer wants CRC32C trailers on every frame
/// ([`super::frame::FRAME_CRC_TRAILER`]). Effective only when requested by
/// the client *and* accepted by the server; both hellos carry a capability
/// byte (client byte 6 = requested, server byte 7 = accepted).
pub const CAP_FRAME_CRC: u8 = 1;

/// Hello capability bit: the peer understands the query-budget request
/// extension ([`BudgetExt`]) and the `BudgetExceeded` error code. Offered
/// by v4+ clients; the server accepts it only on a v4+ connection, and a
/// client must not append the extension unless the server accepted the
/// bit.
pub const CAP_QUERY_BUDGET: u8 = 2;

/// Client hello magic: `"CLRE"`.
pub const CLIENT_MAGIC: [u8; 4] = *b"CLRE";
/// Server hello magic: `"CLRS"`.
pub const SERVER_MAGIC: [u8; 4] = *b"CLRS";
/// Byte length of the client hello (magic + version + reserved).
pub const CLIENT_HELLO_LEN: usize = 8;
/// Byte length of the server hello (magic + version + status + caps +
/// retry-after + KB build fingerprint).
pub const SERVER_HELLO_LEN: usize = 20;

/// Frame opcodes. Requests are `0x01..=0x0C`; the matching reply is the
/// request opcode with the high bit set; `0xFF` is an error reply.
/// `LOG_FRAME` doubles as a server push (request id 0) on a replication
/// subscription.
pub mod opcode {
    /// Liveness probe; empty payload both ways.
    pub const PING: u8 = 0x01;
    /// Single retrieval ([`super::RetrieveReq`] → [`super::Retrieval`]).
    pub const RETRIEVE: u8 = 0x02;
    /// Batched retrieval ([`super::RetrieveBatchReq`] → retrieval list).
    pub const RETRIEVE_BATCH: u8 = 0x03;
    /// Resolution ([`super::SolveReq`] → [`super::SolveOutcome`]).
    pub const SOLVE: u8 = 0x04;
    /// Consult-update ([`super::ConsultReq`] → empty reply).
    pub const CONSULT: u8 = 0x05;
    /// Server statistics (empty → [`super::ServerStats`]).
    pub const STATS: u8 = 0x06;
    /// Symbol-table download (empty → [`super::SymbolTable`]).
    pub const SYMBOLS: u8 = 0x07;
    /// Durable assert ([`super::ConsultReq`] → [`super::CommitReceipt`]):
    /// adds every clause in the source through the WAL-serialized commit
    /// path instead of a wholesale rebuild.
    pub const ASSERT: u8 = 0x08;
    /// Durable retract ([`super::ConsultReq`] → [`super::CommitReceipt`]):
    /// removes the first live clause structurally equal to the source's
    /// single clause.
    pub const RETRACT: u8 = 0x09;
    /// Replication subscription ([`super::SubscribeLogReq`] → current
    /// sequence number): the server first pushes catch-up `LOG_FRAME`s
    /// for every overlay op past `from_seq`, then streams each commit as
    /// it lands. Pushed frames carry request id 0.
    pub const SUBSCRIBE_LOG: u8 = 0x0A;
    /// A shipped WAL record (`clare_wal::encode_ship_record` bytes). As a
    /// server push (request id 0) it carries a freshly committed record
    /// to a subscriber; as a request it asks a backup to apply the record
    /// and reply with its applied-through sequence.
    pub const LOG_FRAME: u8 = 0x0B;
    /// Replication acknowledgement ([`super::ReplAck`] → empty reply):
    /// tells a primary its backup has applied through a sequence number
    /// (feeds the `cluster.repl_lag_frames` gauge).
    pub const REPL_ACK: u8 = 0x0C;
    /// Reply bit: `reply opcode = request opcode | REPLY`.
    pub const REPLY: u8 = 0x80;
    /// Error reply ([`super::ErrorReply`]), sent in place of any reply.
    pub const ERROR: u8 = 0xFF;
}

/// Error codes carried by [`ErrorReply`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request payload failed to decode. The offending frame is
    /// answered with this error and the connection stays up.
    Malformed,
    /// The opcode is not one the server implements.
    Unsupported,
    /// The server's request queue is full; retry after the hinted delay.
    Busy,
    /// The request's deadline had already expired when a worker picked it
    /// up, so the work was not performed.
    DeadlineExpired,
    /// A consult-update failed to parse or compile; the message carries
    /// the reason. The knowledge base is unchanged.
    ConsultRejected,
    /// The server failed internally (e.g. a worker panicked).
    Internal,
    /// A shipped `LOG_FRAME` arrived out of order: its sequence number
    /// skips past what the backup has applied. The message carries the
    /// expected sequence; the router resends from there.
    ReplGap,
    /// A query budget other than the wall-clock deadline tripped
    /// mid-execution (solve-step or candidate ceiling): the work was
    /// abandoned at a cancellation checkpoint and **no partial answer was
    /// produced or cached**. Deadline trips keep reporting
    /// [`ErrorCode::DeadlineExpired`], so v3 peers — which predate this
    /// code — see the dialect they know. (v4+.)
    BudgetExceeded,
}

impl ErrorCode {
    /// Wire value.
    pub fn to_wire(self) -> u16 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::Unsupported => 2,
            ErrorCode::Busy => 3,
            ErrorCode::DeadlineExpired => 4,
            ErrorCode::ConsultRejected => 5,
            ErrorCode::Internal => 6,
            ErrorCode::ReplGap => 7,
            ErrorCode::BudgetExceeded => 8,
        }
    }

    /// Decodes a wire value.
    pub fn from_wire(raw: u16) -> Option<Self> {
        Some(match raw {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::Unsupported,
            3 => ErrorCode::Busy,
            4 => ErrorCode::DeadlineExpired,
            5 => ErrorCode::ConsultRejected,
            6 => ErrorCode::Internal,
            7 => ErrorCode::ReplGap,
            8 => ErrorCode::BudgetExceeded,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ErrorCode::Malformed => "malformed request",
            ErrorCode::Unsupported => "unsupported operation",
            ErrorCode::Busy => "server busy",
            ErrorCode::DeadlineExpired => "deadline expired",
            ErrorCode::ConsultRejected => "consult rejected",
            ErrorCode::Internal => "internal server error",
            ErrorCode::ReplGap => "replication sequence gap",
            ErrorCode::BudgetExceeded => "query budget exceeded",
        })
    }
}

/// A malformed payload: the reason a decoder gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed payload: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err(reason: impl Into<String>) -> WireError {
    WireError(reason.into())
}

/// A bounds-checked cursor over an untrusted payload. Every read is
/// checked; running past the end is a [`WireError`], never a panic.
struct Cur<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cur { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(err(format!("need {n} bytes, {} remain", self.remaining())));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_be_bytes(raw))
    }

    /// A `u32`-prefixed UTF-8 string.
    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| err("string is not UTF-8"))
    }

    /// A PIF-encoded term, advancing past it.
    fn term(&mut self) -> Result<Term, WireError> {
        let limits = TermLimits::default();
        let (term, used) = decode_term(&self.data[self.pos..], &limits)
            .map_err(|e| err(format!("bad term: {e}")))?;
        self.pos += used;
        Ok(term)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(err(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encodes a [`SearchMode`].
pub fn mode_to_wire(mode: SearchMode) -> u8 {
    match mode {
        SearchMode::SoftwareOnly => 0,
        SearchMode::Fs1Only => 1,
        SearchMode::Fs2Only => 2,
        SearchMode::TwoStage => 3,
    }
}

/// Decodes a [`SearchMode`].
pub fn mode_from_wire(raw: u8) -> Result<SearchMode, WireError> {
    Ok(match raw {
        0 => SearchMode::SoftwareOnly,
        1 => SearchMode::Fs1Only,
        2 => SearchMode::Fs2Only,
        3 => SearchMode::TwoStage,
        other => return Err(err(format!("unknown search mode {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// Server admission decision delivered in the server hello.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelloStatus {
    /// The connection is accepted; frames may follow.
    Ok,
    /// The server is at its connection limit; the hello carries a
    /// retry-after hint and the server closes the socket.
    Busy,
    /// The client's protocol version is not spoken by this server.
    VersionMismatch,
}

impl HelloStatus {
    fn to_wire(self) -> u8 {
        match self {
            HelloStatus::Ok => 0,
            HelloStatus::Busy => 1,
            HelloStatus::VersionMismatch => 2,
        }
    }

    fn from_wire(raw: u8) -> Result<Self, WireError> {
        Ok(match raw {
            0 => HelloStatus::Ok,
            1 => HelloStatus::Busy,
            2 => HelloStatus::VersionMismatch,
            other => return Err(err(format!("unknown hello status {other}"))),
        })
    }
}

/// Encodes the fixed-size client hello with no capabilities requested.
pub fn encode_client_hello(version: u16) -> [u8; CLIENT_HELLO_LEN] {
    encode_client_hello_caps(version, 0)
}

/// Encodes the fixed-size client hello: magic, version, and the requested
/// capability bits (byte 6; [`CAP_FRAME_CRC`]). Byte 7 stays reserved.
pub fn encode_client_hello_caps(version: u16, caps: u8) -> [u8; CLIENT_HELLO_LEN] {
    let mut out = [0u8; CLIENT_HELLO_LEN];
    out[..4].copy_from_slice(&CLIENT_MAGIC);
    out[4..6].copy_from_slice(&version.to_be_bytes());
    out[6] = caps;
    out
}

/// Decodes a client hello, returning the client's protocol version.
pub fn decode_client_hello(raw: &[u8; CLIENT_HELLO_LEN]) -> Result<u16, WireError> {
    Ok(decode_client_hello_caps(raw)?.0)
}

/// Decodes a client hello, returning `(version, requested capabilities)`.
/// Version-1 clients always sent zero in the capability byte, so this
/// reads their hellos correctly too.
pub fn decode_client_hello_caps(raw: &[u8; CLIENT_HELLO_LEN]) -> Result<(u16, u8), WireError> {
    if raw[..4] != CLIENT_MAGIC {
        return Err(err("bad client magic"));
    }
    Ok((u16::from_be_bytes([raw[4], raw[5]]), raw[6]))
}

/// The server's reply to a client hello.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerHello {
    /// Version the server speaks.
    pub version: u16,
    /// Admission decision.
    pub status: HelloStatus,
    /// For [`HelloStatus::Busy`]: suggested reconnect delay in
    /// milliseconds. Zero otherwise.
    pub retry_after_ms: u32,
    /// Capability bits the server *accepted* (byte 7; a subset of what
    /// the client requested). Version-1 servers left this byte zero, so
    /// their hellos decode as "no capabilities".
    pub caps: u8,
    /// The serving knowledge base's build fingerprint
    /// (`KnowledgeBase::content_fingerprint`, bytes 12..20). A cluster
    /// router refuses a backend whose fingerprint disagrees with its
    /// shard map — a wrong-KB backend would silently serve wrong-shard
    /// answers. Zero on refusal paths where no KB is consulted.
    pub fingerprint: u64,
}

/// Encodes the fixed-size server hello.
pub fn encode_server_hello(hello: &ServerHello) -> [u8; SERVER_HELLO_LEN] {
    let mut out = [0u8; SERVER_HELLO_LEN];
    out[..4].copy_from_slice(&SERVER_MAGIC);
    out[4..6].copy_from_slice(&hello.version.to_be_bytes());
    out[6] = hello.status.to_wire();
    out[7] = hello.caps;
    out[8..12].copy_from_slice(&hello.retry_after_ms.to_be_bytes());
    out[12..20].copy_from_slice(&hello.fingerprint.to_be_bytes());
    out
}

/// Decodes a server hello.
pub fn decode_server_hello(raw: &[u8; SERVER_HELLO_LEN]) -> Result<ServerHello, WireError> {
    if raw[..4] != SERVER_MAGIC {
        return Err(err("bad server magic"));
    }
    let mut fp = [0u8; 8];
    fp.copy_from_slice(&raw[12..20]);
    Ok(ServerHello {
        version: u16::from_be_bytes([raw[4], raw[5]]),
        status: HelloStatus::from_wire(raw[6])?,
        retry_after_ms: u32::from_be_bytes([raw[8], raw[9], raw[10], raw[11]]),
        caps: raw[7],
        fingerprint: u64::from_be_bytes(fp),
    })
}

// ---------------------------------------------------------------------------
// Replication stream
// ---------------------------------------------------------------------------

/// A replication subscription request: stream every committed op with a
/// sequence number greater than `from_seq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscribeLogReq {
    /// The subscriber has (or pretends to have) everything through this
    /// sequence. `0` asks for the full overlay.
    pub from_seq: u64,
}

/// Encodes a [`SubscribeLogReq`].
pub fn encode_subscribe_log(req: &SubscribeLogReq) -> Vec<u8> {
    req.from_seq.to_be_bytes().to_vec()
}

/// Decodes a [`SubscribeLogReq`].
pub fn decode_subscribe_log(payload: &[u8]) -> Result<SubscribeLogReq, WireError> {
    let mut c = Cur::new(payload);
    let from_seq = c.u64()?;
    c.finish()?;
    Ok(SubscribeLogReq { from_seq })
}

/// Encodes the `SUBSCRIBE_LOG` reply and the `LOG_FRAME` request reply:
/// one big-endian sequence number (the server's current / applied-through
/// sequence).
pub fn encode_seq_reply(seq: u64) -> Vec<u8> {
    seq.to_be_bytes().to_vec()
}

/// Decodes a bare sequence-number reply.
pub fn decode_seq_reply(payload: &[u8]) -> Result<u64, WireError> {
    let mut c = Cur::new(payload);
    let seq = c.u64()?;
    c.finish()?;
    Ok(seq)
}

/// A replication acknowledgement: the backup has applied through `seq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplAck {
    /// Highest sequence number applied by the backup.
    pub seq: u64,
}

/// Encodes a [`ReplAck`].
pub fn encode_repl_ack(ack: &ReplAck) -> Vec<u8> {
    ack.seq.to_be_bytes().to_vec()
}

/// Decodes a [`ReplAck`].
pub fn decode_repl_ack(payload: &[u8]) -> Result<ReplAck, WireError> {
    let mut c = Cur::new(payload);
    let seq = c.u64()?;
    c.finish()?;
    Ok(ReplAck { seq })
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// The protocol-v4 query-budget request extension: work ceilings beyond
/// the wall-clock deadline (which travels in the request's existing
/// `deadline_micros` field). Encoded as an **optional 16-byte trailing
/// block** on retrieve / batch / solve requests — appended only when at
/// least one limit is set and only after the server accepted
/// [`CAP_QUERY_BUDGET`] — so a v4 client with no limits emits payloads
/// byte-identical to v3, and v3 decoders (which reject trailing bytes)
/// are never shown the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BudgetExt {
    /// Abandon a solve after this many resolution steps; `0` = unlimited.
    pub solve_step_limit: u64,
    /// Abandon a retrieval once this many candidates have survived the
    /// filters; `0` = unlimited.
    pub candidate_limit: u64,
}

impl BudgetExt {
    /// No limits: encodes to zero bytes on the wire.
    pub const NONE: BudgetExt = BudgetExt {
        solve_step_limit: 0,
        candidate_limit: 0,
    };

    /// True when no limit is set (the extension is omitted on the wire).
    pub fn is_none(&self) -> bool {
        *self == BudgetExt::NONE
    }
}

/// Byte length of an encoded [`BudgetExt`] block.
const BUDGET_EXT_LEN: usize = 16;

fn put_budget_ext(out: &mut Vec<u8>, budget: &BudgetExt) {
    if budget.is_none() {
        return;
    }
    out.extend_from_slice(&budget.solve_step_limit.to_be_bytes());
    out.extend_from_slice(&budget.candidate_limit.to_be_bytes());
}

/// The optional trailing budget block: present iff exactly
/// [`BUDGET_EXT_LEN`] bytes remain (a v3 payload leaves zero). Any other
/// remainder is malformed and rejected by the caller's `finish()`.
fn get_budget_ext(c: &mut Cur<'_>) -> Result<BudgetExt, WireError> {
    if c.remaining() != BUDGET_EXT_LEN {
        return Ok(BudgetExt::NONE);
    }
    Ok(BudgetExt {
        solve_step_limit: c.u64()?,
        candidate_limit: c.u64()?,
    })
}

/// A single-retrieval request.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrieveReq {
    /// Search mode to run.
    pub mode: SearchMode,
    /// Client deadline in microseconds of wall-clock budget; `0` = none.
    /// Expired requests are answered with [`ErrorCode::DeadlineExpired`]
    /// instead of being served.
    pub deadline_micros: u64,
    /// Work ceilings beyond the deadline (v4; [`BudgetExt::NONE`] encodes
    /// to nothing, keeping the payload v3-identical).
    pub budget: BudgetExt,
    /// The query term, PIF-encoded on the wire.
    pub query: Term,
}

/// Encodes a [`RetrieveReq`].
pub fn encode_retrieve(req: &RetrieveReq) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.push(mode_to_wire(req.mode));
    out.extend_from_slice(&req.deadline_micros.to_be_bytes());
    out.extend_from_slice(&encode_term(&req.query));
    put_budget_ext(&mut out, &req.budget);
    out
}

/// Decodes a [`RetrieveReq`].
pub fn decode_retrieve(payload: &[u8]) -> Result<RetrieveReq, WireError> {
    let mut c = Cur::new(payload);
    let mode = mode_from_wire(c.u8()?)?;
    let deadline_micros = c.u64()?;
    let query = c.term()?;
    let budget = get_budget_ext(&mut c)?;
    c.finish()?;
    Ok(RetrieveReq {
        mode,
        deadline_micros,
        budget,
        query,
    })
}

/// A batched-retrieval request: the whole batch runs against one
/// knowledge-base snapshot, exactly like
/// [`ClauseRetrievalServer::retrieve_batch`](clare_core::ClauseRetrievalServer::retrieve_batch).
#[derive(Debug, Clone, PartialEq)]
pub struct RetrieveBatchReq {
    /// Search mode for every member.
    pub mode: SearchMode,
    /// Deadline as in [`RetrieveReq::deadline_micros`].
    pub deadline_micros: u64,
    /// Work ceilings covering the batch as a whole (v4).
    pub budget: BudgetExt,
    /// Member queries, answered positionally.
    pub queries: Vec<Term>,
}

/// Encodes a [`RetrieveBatchReq`].
pub fn encode_retrieve_batch(req: &RetrieveBatchReq) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.push(mode_to_wire(req.mode));
    out.extend_from_slice(&req.deadline_micros.to_be_bytes());
    out.extend_from_slice(&(req.queries.len() as u32).to_be_bytes());
    for q in &req.queries {
        out.extend_from_slice(&encode_term(q));
    }
    put_budget_ext(&mut out, &req.budget);
    out
}

/// Decodes a [`RetrieveBatchReq`].
pub fn decode_retrieve_batch(payload: &[u8]) -> Result<RetrieveBatchReq, WireError> {
    let mut c = Cur::new(payload);
    let mode = mode_from_wire(c.u8()?)?;
    let deadline_micros = c.u64()?;
    let count = c.u32()? as usize;
    let mut queries = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        queries.push(c.term()?);
    }
    let budget = get_budget_ext(&mut c)?;
    c.finish()?;
    Ok(RetrieveBatchReq {
        mode,
        deadline_micros,
        budget,
        queries,
    })
}

/// A solve request. The server applies its own `CrsOptions`; the wire
/// carries only the solver policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReq {
    /// Conjunction of goals sharing one variable scope.
    pub goals: Vec<Term>,
    /// Variable names for the bindings report, in first-occurrence order.
    pub var_names: Vec<String>,
    /// Search-mode policy.
    pub mode: ModeChoice,
    /// Stop after this many solutions.
    pub max_solutions: u64,
    /// Maximum resolution depth.
    pub max_depth: u64,
    /// Deadline as in [`RetrieveReq::deadline_micros`].
    pub deadline_micros: u64,
    /// Work ceilings beyond the deadline (v4).
    pub budget: BudgetExt,
}

/// Encodes a [`SolveReq`].
pub fn encode_solve(req: &SolveReq) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.push(match req.mode {
        ModeChoice::Auto => 0xFF,
        ModeChoice::Fixed(m) => mode_to_wire(m),
    });
    out.extend_from_slice(&req.max_solutions.to_be_bytes());
    out.extend_from_slice(&req.max_depth.to_be_bytes());
    out.extend_from_slice(&req.deadline_micros.to_be_bytes());
    out.extend_from_slice(&(req.var_names.len() as u16).to_be_bytes());
    for name in &req.var_names {
        put_string(&mut out, name);
    }
    out.extend_from_slice(&(req.goals.len() as u16).to_be_bytes());
    for goal in &req.goals {
        out.extend_from_slice(&encode_term(goal));
    }
    put_budget_ext(&mut out, &req.budget);
    out
}

/// Decodes a [`SolveReq`].
pub fn decode_solve(payload: &[u8]) -> Result<SolveReq, WireError> {
    let mut c = Cur::new(payload);
    let mode = match c.u8()? {
        0xFF => ModeChoice::Auto,
        raw => ModeChoice::Fixed(mode_from_wire(raw)?),
    };
    let max_solutions = c.u64()?;
    let max_depth = c.u64()?;
    let deadline_micros = c.u64()?;
    let n_names = c.u16()? as usize;
    let mut var_names = Vec::with_capacity(n_names.min(1024));
    for _ in 0..n_names {
        var_names.push(c.string()?);
    }
    let n_goals = c.u16()? as usize;
    let mut goals = Vec::with_capacity(n_goals.min(1024));
    for _ in 0..n_goals {
        goals.push(c.term()?);
    }
    let budget = get_budget_ext(&mut c)?;
    c.finish()?;
    Ok(SolveReq {
        goals,
        var_names,
        mode,
        max_solutions,
        max_depth,
        deadline_micros,
        budget,
    })
}

/// A consult-update request: parse `source` into `module` on top of the
/// current knowledge base and publish the result atomically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsultReq {
    /// Target module name.
    pub module: String,
    /// Prolog source text.
    pub source: String,
}

/// Encodes a [`ConsultReq`].
pub fn encode_consult(req: &ConsultReq) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + req.source.len());
    put_string(&mut out, &req.module);
    put_string(&mut out, &req.source);
    out
}

/// Decodes a [`ConsultReq`].
pub fn decode_consult(payload: &[u8]) -> Result<ConsultReq, WireError> {
    let mut c = Cur::new(payload);
    let module = c.string()?;
    let source = c.string()?;
    c.finish()?;
    Ok(ConsultReq { module, source })
}

// ---------------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------------

fn put_opt_usize(out: &mut Vec<u8>, v: Option<usize>) {
    match v {
        None => out.push(0),
        Some(n) => {
            out.push(1);
            out.extend_from_slice(&(n as u64).to_be_bytes());
        }
    }
}

fn get_opt_usize(c: &mut Cur<'_>) -> Result<Option<usize>, WireError> {
    match c.u8()? {
        0 => Ok(None),
        1 => Ok(Some(c.u64()? as usize)),
        other => Err(err(format!("bad option flag {other}"))),
    }
}

fn put_retrieval(out: &mut Vec<u8>, r: &Retrieval) {
    out.extend_from_slice(&(r.candidates.len() as u32).to_be_bytes());
    for id in &r.candidates {
        out.extend_from_slice(&id.index().to_be_bytes());
    }
    let s = &r.stats;
    out.push(mode_to_wire(s.mode));
    out.extend_from_slice(&(s.clauses_total as u64).to_be_bytes());
    put_opt_usize(out, s.after_fs1);
    put_opt_usize(out, s.after_fs2);
    out.extend_from_slice(&(s.candidates as u64).to_be_bytes());
    out.extend_from_slice(&(s.unified as u64).to_be_bytes());
    out.extend_from_slice(&(s.false_drops as u64).to_be_bytes());
    for t in [
        s.disk_time,
        s.fs1_time,
        s.fs2_time,
        s.software_filter_time,
        s.full_unify_time,
        s.elapsed,
    ] {
        out.extend_from_slice(&t.as_ns().to_be_bytes());
    }
    out.extend_from_slice(&s.bytes_from_disk.to_be_bytes());
    out.extend_from_slice(&(s.result_memory_overflows as u64).to_be_bytes());
    out.extend_from_slice(&(s.quarantined_tracks as u64).to_be_bytes());
    out.push(u8::from(s.degraded));
}

fn get_retrieval(c: &mut Cur<'_>) -> Result<Retrieval, WireError> {
    let n = c.u32()? as usize;
    let mut candidates = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        candidates.push(ClauseId::new(c.u32()?));
    }
    let mode = mode_from_wire(c.u8()?)?;
    let clauses_total = c.u64()? as usize;
    let after_fs1 = get_opt_usize(c)?;
    let after_fs2 = get_opt_usize(c)?;
    let cand_count = c.u64()? as usize;
    let unified = c.u64()? as usize;
    let false_drops = c.u64()? as usize;
    let mut times = [SimNanos::ZERO; 6];
    for t in &mut times {
        *t = SimNanos::from_ns(c.u64()?);
    }
    let bytes_from_disk = c.u64()?;
    let result_memory_overflows = c.u64()? as usize;
    let quarantined_tracks = c.u64()? as usize;
    let degraded = match c.u8()? {
        0 => false,
        1 => true,
        other => return Err(err(format!("bad degraded flag {other}"))),
    };
    Ok(Retrieval {
        candidates,
        stats: RetrievalStats {
            mode,
            clauses_total,
            after_fs1,
            after_fs2,
            candidates: cand_count,
            unified,
            false_drops,
            disk_time: times[0],
            fs1_time: times[1],
            fs2_time: times[2],
            software_filter_time: times[3],
            full_unify_time: times[4],
            elapsed: times[5],
            bytes_from_disk,
            result_memory_overflows,
            quarantined_tracks,
            degraded,
        },
    })
}

/// Encodes a [`Retrieval`] reply (candidate satisfier ids + full stats,
/// with modelled [`SimNanos`] times as raw nanosecond counts).
pub fn encode_retrieval(r: &Retrieval) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + 4 * r.candidates.len());
    put_retrieval(&mut out, r);
    out
}

/// Decodes a [`Retrieval`] reply.
pub fn decode_retrieval(payload: &[u8]) -> Result<Retrieval, WireError> {
    let mut c = Cur::new(payload);
    let r = get_retrieval(&mut c)?;
    c.finish()?;
    Ok(r)
}

/// Encodes a batched-retrieval reply (positional [`Retrieval`] list).
pub fn encode_retrievals(rs: &[Retrieval]) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 * rs.len().max(1));
    out.extend_from_slice(&(rs.len() as u32).to_be_bytes());
    for r in rs {
        put_retrieval(&mut out, r);
    }
    out
}

/// Decodes a batched-retrieval reply.
pub fn decode_retrievals(payload: &[u8]) -> Result<Vec<Retrieval>, WireError> {
    let mut c = Cur::new(payload);
    let n = c.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(get_retrieval(&mut c)?);
    }
    c.finish()?;
    Ok(out)
}

/// Encodes a [`SolveOutcome`] reply.
pub fn encode_solve_outcome(o: &SolveOutcome) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&(o.solutions.len() as u32).to_be_bytes());
    for sol in &o.solutions {
        out.extend_from_slice(&encode_term(&sol.term));
        out.extend_from_slice(&(sol.bindings.len() as u16).to_be_bytes());
        for (name, term) in &sol.bindings {
            put_string(&mut out, name);
            out.extend_from_slice(&encode_term(term));
        }
    }
    out.extend_from_slice(&(o.stats.retrievals as u64).to_be_bytes());
    out.extend_from_slice(&(o.stats.clauses_unified as u64).to_be_bytes());
    out.extend_from_slice(&(o.stats.candidates as u64).to_be_bytes());
    out.extend_from_slice(&o.stats.retrieval_elapsed.as_ns().to_be_bytes());
    out.extend_from_slice(&(o.stats.depth_cuts as u64).to_be_bytes());
    out.push(u8::from(o.stats.degraded));
    out
}

/// Decodes a [`SolveOutcome`] reply.
pub fn decode_solve_outcome(payload: &[u8]) -> Result<SolveOutcome, WireError> {
    let mut c = Cur::new(payload);
    let n = c.u32()? as usize;
    let mut solutions = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let term = c.term()?;
        let n_bindings = c.u16()? as usize;
        let mut bindings = Vec::with_capacity(n_bindings.min(1024));
        for _ in 0..n_bindings {
            let name = c.string()?;
            let bound = c.term()?;
            bindings.push((name, bound));
        }
        solutions.push(Solution { term, bindings });
    }
    let stats = SolveStats {
        retrievals: c.u64()? as usize,
        clauses_unified: c.u64()? as usize,
        candidates: c.u64()? as usize,
        retrieval_elapsed: SimNanos::from_ns(c.u64()?),
        depth_cuts: c.u64()? as usize,
        degraded: match c.u8()? {
            0 => false,
            1 => true,
            other => return Err(err(format!("bad degraded flag {other}"))),
        },
    };
    c.finish()?;
    Ok(SolveOutcome { solutions, stats })
}

/// Encodes a [`ServerStats`] reply.
pub fn encode_server_stats(s: &ServerStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(56);
    for v in [
        s.retrievals,
        s.batches,
        s.solves,
        s.updates,
        s.rejected,
        s.degraded,
    ] {
        out.extend_from_slice(&v.to_be_bytes());
    }
    out.extend_from_slice(&s.total_elapsed.as_ns().to_be_bytes());
    out
}

/// Decodes a [`ServerStats`] reply.
pub fn decode_server_stats(payload: &[u8]) -> Result<ServerStats, WireError> {
    let mut c = Cur::new(payload);
    let stats = get_server_stats(&mut c)?;
    c.finish()?;
    Ok(stats)
}

/// The fixed leading [`ServerStats`] struct off the cursor (56 bytes).
fn get_server_stats(c: &mut Cur) -> Result<ServerStats, WireError> {
    Ok(ServerStats {
        retrievals: c.u64()?,
        batches: c.u64()?,
        solves: c.u64()?,
        updates: c.u64()?,
        rejected: c.u64()?,
        degraded: c.u64()?,
        total_elapsed: SimNanos::from_ns(c.u64()?),
    })
}

/// Version of the metrics payload appended to an *extended* stats reply.
/// Bumped only on layout changes; new metric *names* are not a version
/// bump, because the payload is self-describing and decoders must
/// tolerate names they do not know.
pub const METRICS_VERSION: u16 = 1;

/// Request-payload marker a client puts in a `STATS` frame to ask for the
/// extended reply (legacy struct followed by a [`MetricsSnapshot`]). An
/// empty request payload selects the plain 56-byte reply, so clients
/// that predate metrics — whose strict decoder rejects trailing bytes —
/// keep working unchanged.
pub const STATS_REQ_EXTENDED: u8 = 2;

/// Encodes a [`MetricsSnapshot`]: version, then length-prefixed lists of
/// named counters, gauges, and histograms.
pub fn encode_metrics_snapshot(m: &MetricsSnapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + 24 * (m.counters.len() + m.histograms.len()));
    out.extend_from_slice(&METRICS_VERSION.to_be_bytes());
    out.extend_from_slice(&(m.counters.len() as u32).to_be_bytes());
    for (name, v) in &m.counters {
        put_string(&mut out, name);
        out.extend_from_slice(&v.to_be_bytes());
    }
    out.extend_from_slice(&(m.gauges.len() as u32).to_be_bytes());
    for (name, v) in &m.gauges {
        put_string(&mut out, name);
        out.extend_from_slice(&(*v as u64).to_be_bytes());
    }
    out.extend_from_slice(&(m.histograms.len() as u32).to_be_bytes());
    for (name, h) in &m.histograms {
        put_string(&mut out, name);
        out.extend_from_slice(&h.count.to_be_bytes());
        out.extend_from_slice(&h.sum.to_be_bytes());
        out.extend_from_slice(&(h.buckets.len() as u32).to_be_bytes());
        for b in &h.buckets {
            out.extend_from_slice(&b.to_be_bytes());
        }
    }
    out
}

fn get_metrics_snapshot(c: &mut Cur) -> Result<MetricsSnapshot, WireError> {
    let version = c.u16()?;
    if version != METRICS_VERSION {
        return Err(err(format!("unknown metrics payload version {version}")));
    }
    let n = c.u32()? as usize;
    let mut counters = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = c.string()?;
        counters.push((name, c.u64()?));
    }
    let n = c.u32()? as usize;
    let mut gauges = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = c.string()?;
        gauges.push((name, c.u64()? as i64));
    }
    let n = c.u32()? as usize;
    let mut histograms = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = c.string()?;
        let count = c.u64()?;
        let sum = c.u64()?;
        let n_buckets = c.u32()? as usize;
        let mut buckets = Vec::with_capacity(n_buckets.min(1024));
        for _ in 0..n_buckets {
            buckets.push(c.u64()?);
        }
        histograms.push((
            name,
            HistogramSnapshot {
                count,
                sum,
                buckets,
            },
        ));
    }
    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
    })
}

/// Decodes a standalone [`MetricsSnapshot`] payload.
pub fn decode_metrics_snapshot(payload: &[u8]) -> Result<MetricsSnapshot, WireError> {
    let mut c = Cur::new(payload);
    let m = get_metrics_snapshot(&mut c)?;
    c.finish()?;
    Ok(m)
}

/// Encodes the *extended* stats reply: the legacy [`ServerStats`] bytes
/// followed by a versioned [`MetricsSnapshot`]. Sent only when the
/// request carried [`STATS_REQ_EXTENDED`].
pub fn encode_server_stats_extended(s: &ServerStats, m: &MetricsSnapshot) -> Vec<u8> {
    let mut out = encode_server_stats(s);
    out.extend_from_slice(&encode_metrics_snapshot(m));
    out
}

/// Decodes the extended stats reply into the legacy struct plus the
/// metrics snapshot.
pub fn decode_server_stats_extended(
    payload: &[u8],
) -> Result<(ServerStats, MetricsSnapshot), WireError> {
    let mut c = Cur::new(payload);
    let stats = get_server_stats(&mut c)?;
    let metrics = get_metrics_snapshot(&mut c)?;
    c.finish()?;
    Ok((stats, metrics))
}

/// Encodes a [`SymbolTable`] reply: atom texts in offset order plus float
/// bit patterns in offset order. Re-interning them in order on the client
/// reconstructs a table with identical offsets, which is what makes
/// client-side query parsing produce server-compatible PIF bytes.
pub fn encode_symbols(table: &SymbolTable) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + 16 * table.atom_count());
    out.extend_from_slice(&(table.atom_count() as u32).to_be_bytes());
    for (_, text) in table.atoms() {
        put_string(&mut out, text);
    }
    out.extend_from_slice(&(table.float_count() as u32).to_be_bytes());
    for i in 0..table.float_count() {
        let value = table.float_value(FloatId::from_offset(i as u32));
        out.extend_from_slice(&value.to_bits().to_be_bytes());
    }
    out
}

/// Decodes a [`SymbolTable`] reply.
pub fn decode_symbols(payload: &[u8]) -> Result<SymbolTable, WireError> {
    let mut c = Cur::new(payload);
    let mut table = SymbolTable::new();
    let n_atoms = c.u32()? as usize;
    for i in 0..n_atoms {
        let text = c.string()?;
        let sym = table.intern_atom(&text);
        if sym != Symbol::from_offset(i as u32) {
            return Err(err(format!("duplicate atom {text:?} at offset {i}")));
        }
    }
    let n_floats = c.u32()? as usize;
    for i in 0..n_floats {
        let value = f64::from_bits(c.u64()?);
        let id = table.intern_float(value);
        if id != FloatId::from_offset(i as u32) {
            return Err(err(format!("duplicate float at offset {i}")));
        }
    }
    c.finish()?;
    Ok(table)
}

/// Encodes a [`CommitReceipt`] reply (for [`opcode::ASSERT`] /
/// [`opcode::RETRACT`]): the WAL sequence range the commit occupies, the
/// clause counts, and whether the commit was fsynced into a write-ahead
/// log before being acknowledged.
pub fn encode_commit_receipt(r: &CommitReceipt) -> Vec<u8> {
    let mut out = Vec::with_capacity(33);
    out.extend_from_slice(&r.seqs.start.to_be_bytes());
    out.extend_from_slice(&r.seqs.end.to_be_bytes());
    out.extend_from_slice(&(r.asserted as u64).to_be_bytes());
    out.extend_from_slice(&(r.retracted as u64).to_be_bytes());
    out.push(u8::from(r.durable));
    out
}

/// Decodes a [`CommitReceipt`] reply.
pub fn decode_commit_receipt(payload: &[u8]) -> Result<CommitReceipt, WireError> {
    let mut c = Cur::new(payload);
    let start = c.u64()?;
    let end = c.u64()?;
    if end < start {
        return Err(err(format!("inverted seq range {start}..{end}")));
    }
    let asserted = c.u64()? as usize;
    let retracted = c.u64()? as usize;
    let durable = match c.u8()? {
        0 => false,
        1 => true,
        other => return Err(err(format!("bad durable flag {other}"))),
    };
    c.finish()?;
    Ok(CommitReceipt {
        seqs: start..end,
        asserted,
        retracted,
        durable,
    })
}

/// An error reply, sent with opcode [`opcode::ERROR`] in place of the
/// normal reply for the echoed request id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// What went wrong.
    pub code: ErrorCode,
    /// For [`ErrorCode::Busy`]: suggested retry delay in milliseconds.
    pub retry_after_ms: u32,
    /// Human-readable detail.
    pub message: String,
}

/// Encodes an [`ErrorReply`].
pub fn encode_error(e: &ErrorReply) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + e.message.len());
    out.extend_from_slice(&e.code.to_wire().to_be_bytes());
    out.extend_from_slice(&e.retry_after_ms.to_be_bytes());
    put_string(&mut out, &e.message);
    out
}

/// Decodes an [`ErrorReply`].
pub fn decode_error(payload: &[u8]) -> Result<ErrorReply, WireError> {
    let mut c = Cur::new(payload);
    let code = ErrorCode::from_wire(c.u16()?).ok_or_else(|| err("unknown error code"))?;
    let retry_after_ms = c.u32()?;
    let message = c.string()?;
    c.finish()?;
    Ok(ErrorReply {
        code,
        retry_after_ms,
        message,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_term::Term;

    fn sample_terms(symbols: &mut SymbolTable) -> Vec<Term> {
        let likes = symbols.intern_atom("likes");
        let mary = symbols.intern_atom("mary");
        let pi = symbols.intern_float(3.25);
        vec![
            Term::Atom(mary),
            Term::Struct {
                functor: likes,
                args: vec![
                    Term::Atom(mary),
                    Term::Var(clare_term::VarId::new(0)),
                    Term::Int(-42),
                    Term::Float(pi),
                ],
            },
            Term::List {
                items: vec![Term::Anon, Term::Int(7)],
                tail: None,
            },
        ]
    }

    #[test]
    fn hello_roundtrip() {
        let raw = encode_client_hello(PROTOCOL_VERSION);
        assert_eq!(decode_client_hello(&raw).unwrap(), PROTOCOL_VERSION);
        assert_eq!(
            decode_client_hello_caps(&raw).unwrap(),
            (PROTOCOL_VERSION, 0)
        );

        let raw = encode_client_hello_caps(PROTOCOL_VERSION, CAP_FRAME_CRC);
        assert_eq!(
            decode_client_hello_caps(&raw).unwrap(),
            (PROTOCOL_VERSION, CAP_FRAME_CRC)
        );

        for status in [
            HelloStatus::Ok,
            HelloStatus::Busy,
            HelloStatus::VersionMismatch,
        ] {
            for caps in [0, CAP_FRAME_CRC] {
                let hello = ServerHello {
                    version: PROTOCOL_VERSION,
                    status,
                    retry_after_ms: 250,
                    caps,
                    fingerprint: 0x1234_5678_9ABC_DEF0,
                };
                assert_eq!(
                    decode_server_hello(&encode_server_hello(&hello)).unwrap(),
                    hello
                );
            }
        }

        let mut bad = encode_client_hello(1);
        bad[0] = b'X';
        assert!(decode_client_hello(&bad).is_err());
    }

    #[test]
    fn retrieve_roundtrip() {
        let mut symbols = SymbolTable::new();
        for query in sample_terms(&mut symbols) {
            for mode in SearchMode::ALL {
                for budget in [
                    BudgetExt::NONE,
                    BudgetExt {
                        solve_step_limit: 0,
                        candidate_limit: 4096,
                    },
                ] {
                    let req = RetrieveReq {
                        mode,
                        deadline_micros: 1_000_000,
                        budget,
                        query: query.clone(),
                    };
                    assert_eq!(decode_retrieve(&encode_retrieve(&req)).unwrap(), req);
                }
            }
        }
    }

    #[test]
    fn retrieve_batch_roundtrip() {
        let mut symbols = SymbolTable::new();
        let req = RetrieveBatchReq {
            mode: SearchMode::TwoStage,
            deadline_micros: 0,
            budget: BudgetExt {
                solve_step_limit: 9,
                candidate_limit: 10_000,
            },
            queries: sample_terms(&mut symbols),
        };
        assert_eq!(
            decode_retrieve_batch(&encode_retrieve_batch(&req)).unwrap(),
            req
        );
    }

    #[test]
    fn zero_budget_encodes_byte_identical_to_v3() {
        // The whole compatibility story: a v4 peer with no limits emits
        // exactly the bytes a v3 peer would, so servers cannot tell them
        // apart and v3 decoders never see trailing bytes.
        let mut symbols = SymbolTable::new();
        let query = sample_terms(&mut symbols).remove(1);
        let req = RetrieveReq {
            mode: SearchMode::TwoStage,
            deadline_micros: 123,
            budget: BudgetExt::NONE,
            query: query.clone(),
        };
        let mut v3 = Vec::new();
        v3.push(mode_to_wire(req.mode));
        v3.extend_from_slice(&req.deadline_micros.to_be_bytes());
        v3.extend_from_slice(&encode_term(&req.query));
        assert_eq!(encode_retrieve(&req), v3);

        let limited = RetrieveReq {
            budget: BudgetExt {
                solve_step_limit: 1,
                candidate_limit: 0,
            },
            ..req
        };
        assert_eq!(
            encode_retrieve(&limited).len(),
            v3.len() + 16,
            "a set limit appends exactly the 16-byte block"
        );
    }

    #[test]
    fn solve_roundtrip() {
        let mut symbols = SymbolTable::new();
        for mode in [
            ModeChoice::Auto,
            ModeChoice::Fixed(SearchMode::SoftwareOnly),
            ModeChoice::Fixed(SearchMode::TwoStage),
        ] {
            let req = SolveReq {
                goals: sample_terms(&mut symbols),
                var_names: vec!["X".to_owned(), "Who".to_owned()],
                mode,
                max_solutions: u64::MAX,
                max_depth: 256,
                deadline_micros: 5,
                budget: BudgetExt {
                    solve_step_limit: 1_000,
                    candidate_limit: 0,
                },
            };
            assert_eq!(decode_solve(&encode_solve(&req)).unwrap(), req);
        }
    }

    #[test]
    fn consult_roundtrip() {
        let req = ConsultReq {
            module: "family".to_owned(),
            source: "parent(tom, bob).\n% with ünicode\n".to_owned(),
        };
        assert_eq!(decode_consult(&encode_consult(&req)).unwrap(), req);
    }

    #[test]
    fn retrieval_roundtrip() {
        let r = Retrieval {
            candidates: vec![ClauseId::new(3), ClauseId::new(17), ClauseId::new(0)],
            stats: RetrievalStats {
                mode: SearchMode::TwoStage,
                clauses_total: 100,
                after_fs1: Some(12),
                after_fs2: None,
                candidates: 3,
                unified: 2,
                false_drops: 1,
                disk_time: SimNanos::from_ns(123),
                fs1_time: SimNanos::from_ns(456),
                fs2_time: SimNanos::ZERO,
                software_filter_time: SimNanos::from_ns(789),
                full_unify_time: SimNanos::from_ns(1),
                elapsed: SimNanos::from_ns(1369),
                bytes_from_disk: 4096,
                result_memory_overflows: 1,
                quarantined_tracks: 2,
                degraded: true,
            },
        };
        assert_eq!(decode_retrieval(&encode_retrieval(&r)).unwrap(), r);
        let list = vec![r.clone(), r];
        assert_eq!(decode_retrievals(&encode_retrievals(&list)).unwrap(), list);
    }

    #[test]
    fn solve_outcome_roundtrip() {
        let mut symbols = SymbolTable::new();
        let terms = sample_terms(&mut symbols);
        let outcome = SolveOutcome {
            solutions: vec![Solution {
                term: terms[1].clone(),
                bindings: vec![("X".to_owned(), terms[0].clone())],
            }],
            stats: SolveStats {
                retrievals: 4,
                clauses_unified: 7,
                candidates: 11,
                retrieval_elapsed: SimNanos::from_micros(9),
                depth_cuts: 1,
                degraded: true,
            },
        };
        assert_eq!(
            decode_solve_outcome(&encode_solve_outcome(&outcome)).unwrap(),
            outcome
        );
    }

    #[test]
    fn server_stats_roundtrip() {
        let stats = ServerStats {
            retrievals: 10,
            batches: 2,
            solves: 3,
            updates: 1,
            rejected: 4,
            degraded: 2,
            total_elapsed: SimNanos::from_millis(6),
        };
        assert_eq!(
            decode_server_stats(&encode_server_stats(&stats)).unwrap(),
            stats
        );
    }

    #[test]
    fn extended_stats_roundtrip_and_version_gate() {
        let stats = ServerStats {
            retrievals: 7,
            batches: 1,
            solves: 0,
            updates: 2,
            rejected: 0,
            degraded: 1,
            total_elapsed: SimNanos::from_millis(3),
        };
        // A live-shaped snapshot: record through the registry so names
        // and histogram buckets come from the real catalogue.
        let m = clare_trace::metrics();
        m.fs1_scans.inc();
        m.crs_retrieve_wall_ns.record(1234);
        m.crs_predicates.record("item/2", 9999);
        let snapshot = m.snapshot();

        let bytes = encode_server_stats_extended(&stats, &snapshot);
        // The legacy struct occupies the same leading bytes, so a legacy
        // decoder given only that prefix still works.
        let legacy = encode_server_stats(&stats);
        assert_eq!(&bytes[..legacy.len()], &legacy[..]);
        assert_eq!(decode_server_stats(&legacy).unwrap(), stats);

        let (got_stats, got_snapshot) = decode_server_stats_extended(&bytes).unwrap();
        assert_eq!(got_stats, stats);
        assert_eq!(got_snapshot.counters, snapshot.counters);
        assert_eq!(got_snapshot.gauges, snapshot.gauges);
        assert_eq!(got_snapshot.histograms.len(), snapshot.histograms.len());
        let (name, wall) = got_snapshot
            .histograms
            .iter()
            .find(|(name, _)| name == "crs.retrieve_wall_ns")
            .expect("histogram survived the roundtrip");
        assert_eq!(name, "crs.retrieve_wall_ns");
        assert!(wall.count >= 1);

        // An unknown snapshot version is refused, not misread.
        let mut future = legacy.clone();
        future.extend_from_slice(&(METRICS_VERSION + 1).to_be_bytes());
        assert!(decode_server_stats_extended(&future).is_err());
    }

    #[test]
    fn symbols_roundtrip_preserves_offsets() {
        let mut table = SymbolTable::new();
        let likes = table.intern_atom("likes");
        let mary = table.intern_atom("mary");
        let pi = table.intern_float(3.25);
        let nan = table.intern_float(f64::NAN);

        let decoded = decode_symbols(&encode_symbols(&table)).unwrap();
        assert_eq!(decoded.atom_count(), 2);
        assert_eq!(decoded.lookup_atom("likes"), Some(likes));
        assert_eq!(decoded.lookup_atom("mary"), Some(mary));
        assert_eq!(decoded.lookup_float(3.25), Some(pi));
        assert_eq!(decoded.float_count(), 2);
        assert_eq!(decoded.float_value(nan).to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn commit_receipt_roundtrip() {
        for receipt in [
            CommitReceipt {
                seqs: 7..10,
                asserted: 2,
                retracted: 1,
                durable: true,
            },
            CommitReceipt {
                seqs: 0..0,
                asserted: 0,
                retracted: 0,
                durable: false,
            },
        ] {
            assert_eq!(
                decode_commit_receipt(&encode_commit_receipt(&receipt)).unwrap(),
                receipt
            );
        }
        // Inverted ranges and bad flags are refused.
        let mut bad = encode_commit_receipt(&CommitReceipt {
            seqs: 3..5,
            asserted: 1,
            retracted: 0,
            durable: true,
        });
        bad[7] = 9; // start becomes 9, past end = 5
        assert!(decode_commit_receipt(&bad).is_err());
        let mut flag = encode_commit_receipt(&CommitReceipt {
            seqs: 1..2,
            asserted: 1,
            retracted: 0,
            durable: false,
        });
        *flag.last_mut().unwrap() = 7;
        assert!(decode_commit_receipt(&flag).is_err());
    }

    #[test]
    fn error_roundtrip() {
        let e = ErrorReply {
            code: ErrorCode::Busy,
            retry_after_ms: 150,
            message: "queue full".to_owned(),
        };
        assert_eq!(decode_error(&encode_error(&e)).unwrap(), e);
        assert!(decode_error(&[0, 99, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn truncated_payloads_error_cleanly() {
        let mut symbols = SymbolTable::new();
        let req = RetrieveReq {
            mode: SearchMode::TwoStage,
            deadline_micros: 7,
            budget: BudgetExt::NONE,
            query: sample_terms(&mut symbols).remove(1),
        };
        let full = encode_retrieve(&req);
        for cut in 0..full.len() {
            assert!(
                decode_retrieve(&full[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        // Trailing garbage is rejected too — anything other than a
        // complete 16-byte budget block after the term is malformed.
        let mut padded = full.clone();
        padded.push(0);
        assert!(decode_retrieve(&padded).is_err());

        // With the budget block present, every cut inside the block is
        // rejected except the block boundary itself — which decodes as
        // the (different) limitless request, never as a wrong budget.
        let limited = RetrieveReq {
            budget: BudgetExt {
                solve_step_limit: 5,
                candidate_limit: 6,
            },
            ..req.clone()
        };
        let ext = encode_retrieve(&limited);
        assert_eq!(ext.len(), full.len() + 16);
        for cut in full.len() + 1..ext.len() {
            assert!(
                decode_retrieve(&ext[..cut]).is_err(),
                "partial budget block at {cut} must not decode"
            );
        }
        assert_eq!(decode_retrieve(&ext[..full.len()]).unwrap(), req);
    }
}
