//! The Writable Control Store: microinstructions, the standard
//! microprogram, and the Micro Program Controller (§3.1).
//!
//! "The WCS consists of a bank of fast bipolar RAM which holds the
//! microprogram instruction for coordinating the overall FS2 hardware
//! during a query. … The RAM can hold a maximum of 2048 microprogram
//! instructions, each 64 bits wide. … The output of the MPC … can derive
//! either from the MPC's internal counter or externally from the branch
//! address field … Another external source comes from the output of the
//! Map ROM."
//!
//! This module gives the simulator a real microprogram artifact:
//!
//! * [`MicroInstruction`] — a sequencer field (AMD 2910A-style next-address
//!   control) plus the datapath control fields (selector branches,
//!   register latches, memory write enables), packed to and from the
//!   64-bit WCS word format.
//! * [`Microprogram::standard`] — the hand-written microprogram for the
//!   adopted Level-3 algorithm: the polling loop, the Map ROM dispatch
//!   point, one routine per Table 1 operation (whose per-cycle selector
//!   settings are cross-validated against the Figure 6–12 routes in
//!   [`ops`](crate::ops)), and the complex-term counter loop.
//! * [`Wcs`] — the 2048×64-bit RAM with Microprogramming-mode loading.
//! * [`Mpc`] — the sequencer: steps `Continue`/`Jump`/`JumpMap`/`Poll`
//!   transitions and traces which instructions a routine executes.

use crate::components::{Component, WCS_INSTRUCTIONS};
use crate::ops::HwOp;
use std::fmt;

/// A selector's configured branch for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SelBranch {
    /// The selector's left input.
    Left,
    /// The selector's right input.
    Right,
    /// Not driven this cycle.
    #[default]
    Hold,
}

impl SelBranch {
    fn to_bits(self) -> u64 {
        match self {
            SelBranch::Hold => 0,
            SelBranch::Left => 1,
            SelBranch::Right => 2,
        }
    }

    fn from_bits(bits: u64) -> Self {
        match bits & 0b11 {
            1 => SelBranch::Left,
            2 => SelBranch::Right,
            _ => SelBranch::Hold,
        }
    }
}

/// Condition codes the sequencer can branch on — the CC register inputs
/// of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CondCode {
    /// CC bit 0: a new clause is ready in the Double Buffer.
    ClauseReady,
    /// The comparator's HIT output.
    Hit,
    /// The database element counter reached zero.
    DbCounterZero,
    /// The query element counter reached zero.
    QueryCounterZero,
}

impl CondCode {
    fn to_bits(self) -> u64 {
        match self {
            CondCode::ClauseReady => 0,
            CondCode::Hit => 1,
            CondCode::DbCounterZero => 2,
            CondCode::QueryCounterZero => 3,
        }
    }

    fn from_bits(bits: u64) -> Self {
        match bits & 0b11 {
            0 => CondCode::ClauseReady,
            1 => CondCode::Hit,
            2 => CondCode::DbCounterZero,
            _ => CondCode::QueryCounterZero,
        }
    }
}

/// Next-address control (a subset of the AMD 2910A instruction set the
/// paper's WCS is built around).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sequencer {
    /// Advance to the next instruction (internal counter).
    Continue,
    /// Unconditional jump to the branch address field.
    Jump(u16),
    /// Jump if the condition holds, else continue.
    CondJump(CondCode, u16),
    /// Take the next address from the Map ROM (type-pair dispatch).
    JumpMap,
    /// Busy-wait on a condition: loop at this address until it holds —
    /// the MPC's "polling routine".
    Poll(CondCode),
}

/// Datapath control fields: what the TUE does during this microcycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DatapathControl {
    /// Selector 1 branch (In-bus vs DB Memory data, to comparator A).
    pub sel1: SelBranch,
    /// Selector 2 branch (DB Memory A-address source).
    pub sel2: SelBranch,
    /// Selector 3 branch (Query Memory vs DB Memory data, to B).
    pub sel3: SelBranch,
    /// Selector 4 branch (Query Memory data-in source).
    pub sel4: SelBranch,
    /// Selector 5 branch (database data toward Query Memory).
    pub sel5: SelBranch,
    /// Selector 6 branch (Query Memory address source; left = microcode
    /// bits 13–20 during a search).
    pub sel6: SelBranch,
    /// Latch Reg1 (cross-binding reference holding register).
    pub latch_reg1: bool,
    /// Latch Reg3 (DB Memory data-in register).
    pub latch_reg3: bool,
    /// Write the DB Memory this cycle.
    pub write_db_memory: bool,
    /// Write the Query Memory this cycle.
    pub write_query_memory: bool,
    /// Strobe the comparator and latch HIT into CC.
    pub compare: bool,
    /// Decrement the database element counter.
    pub dec_db_counter: bool,
    /// Decrement the query element counter.
    pub dec_query_counter: bool,
    /// Query Memory address driven on microcode bits 13–20 ("ub13-20" in
    /// the figures): which query word the left branch of Sel6 presents.
    pub q_address: u8,
    /// Drive the DB Memory B address port from Reg1 instead of the In-bus
    /// (the second cycle of DB_CROSS_BOUND_FETCH).
    pub b_addr_from_reg1: bool,
}

impl DatapathControl {
    /// True if this cycle drives any part of the datapath (as opposed to
    /// a pure sequencer step).
    pub fn is_active(&self) -> bool {
        *self != DatapathControl::default()
    }

    /// True if the control fields are consistent with the given datapath
    /// routes: every selector a route passes through must be driven, and
    /// a selector no route touches must hold.
    pub fn consistent_with_routes(
        &self,
        db_route: &[Component],
        query_route: &[Component],
    ) -> bool {
        let uses = |c: Component| db_route.contains(&c) || query_route.contains(&c);
        let sel_ok = |branch: SelBranch, c: Component| (branch != SelBranch::Hold) == uses(c);
        sel_ok(self.sel1, Component::Sel1)
            && sel_ok(self.sel2, Component::Sel2)
            && sel_ok(self.sel3, Component::Sel3)
            && sel_ok(self.sel4, Component::Sel4)
            && sel_ok(self.sel5, Component::Sel5)
            && sel_ok(self.sel6, Component::Sel6)
            && self.latch_reg3 == uses(Component::Reg3)
            // Reg1 is latched when it terminates the db route (the write
            // into the register); reading it at a route's head needs no
            // enable.
            && (db_route.last() != Some(&Component::Reg1) || self.latch_reg1)
    }
}

/// One 64-bit WCS word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MicroInstruction {
    /// Next-address control.
    pub sequencer: Sequencer,
    /// Datapath control fields.
    pub control: DatapathControl,
    /// Listing label (diagnostic; not part of the 64-bit word).
    pub label: &'static str,
}

// 64-bit layout (bits, LSB first):
//   0..4    sequencer opcode
//   4..6    condition code
//   6..17   branch address (11 bits: 2048 words)
//   17..29  sel1..sel6, 2 bits each
//   29..36  latch/write/compare/counter enables
//   36..44  query-word address (ub13-20)
//   44      DB Memory B-address source (0 = In-bus, 1 = Reg1)
//   45..64  reserved (zero)
const SEQ_CONTINUE: u64 = 0;
const SEQ_JUMP: u64 = 1;
const SEQ_COND_JUMP: u64 = 2;
const SEQ_JUMP_MAP: u64 = 3;
const SEQ_POLL: u64 = 4;

impl MicroInstruction {
    /// A pure sequencer step with an idle datapath.
    pub fn sequencer_only(sequencer: Sequencer, label: &'static str) -> Self {
        MicroInstruction {
            sequencer,
            control: DatapathControl::default(),
            label,
        }
    }

    /// Packs the instruction into its 64-bit WCS word.
    pub fn to_word(&self) -> u64 {
        let (op, cc, addr) = match self.sequencer {
            Sequencer::Continue => (SEQ_CONTINUE, 0, 0u16),
            Sequencer::Jump(a) => (SEQ_JUMP, 0, a),
            Sequencer::CondJump(cc, a) => (SEQ_COND_JUMP, cc.to_bits(), a),
            Sequencer::JumpMap => (SEQ_JUMP_MAP, 0, 0),
            Sequencer::Poll(cc) => (SEQ_POLL, cc.to_bits(), 0),
        };
        let c = &self.control;
        let mut word = op | (cc << 4) | ((addr as u64 & 0x7FF) << 6);
        word |= c.sel1.to_bits() << 17;
        word |= c.sel2.to_bits() << 19;
        word |= c.sel3.to_bits() << 21;
        word |= c.sel4.to_bits() << 23;
        word |= c.sel5.to_bits() << 25;
        word |= c.sel6.to_bits() << 27;
        word |= (c.latch_reg1 as u64) << 29;
        word |= (c.latch_reg3 as u64) << 30;
        word |= (c.write_db_memory as u64) << 31;
        word |= (c.write_query_memory as u64) << 32;
        word |= (c.compare as u64) << 33;
        word |= (c.dec_db_counter as u64) << 34;
        word |= (c.dec_query_counter as u64) << 35;
        word |= (c.q_address as u64) << 36;
        word |= (c.b_addr_from_reg1 as u64) << 44;
        word
    }

    /// Unpacks a 64-bit WCS word (labels are lost).
    pub fn from_word(word: u64) -> Self {
        let cc = CondCode::from_bits(word >> 4);
        let addr = ((word >> 6) & 0x7FF) as u16;
        let sequencer = match word & 0xF {
            SEQ_JUMP => Sequencer::Jump(addr),
            SEQ_COND_JUMP => Sequencer::CondJump(cc, addr),
            SEQ_JUMP_MAP => Sequencer::JumpMap,
            SEQ_POLL => Sequencer::Poll(cc),
            _ => Sequencer::Continue,
        };
        let control = DatapathControl {
            sel1: SelBranch::from_bits(word >> 17),
            sel2: SelBranch::from_bits(word >> 19),
            sel3: SelBranch::from_bits(word >> 21),
            sel4: SelBranch::from_bits(word >> 23),
            sel5: SelBranch::from_bits(word >> 25),
            sel6: SelBranch::from_bits(word >> 27),
            latch_reg1: word & (1 << 29) != 0,
            latch_reg3: word & (1 << 30) != 0,
            write_db_memory: word & (1 << 31) != 0,
            write_query_memory: word & (1 << 32) != 0,
            compare: word & (1 << 33) != 0,
            dec_db_counter: word & (1 << 34) != 0,
            dec_query_counter: word & (1 << 35) != 0,
            q_address: ((word >> 36) & 0xFF) as u8,
            b_addr_from_reg1: word & (1 << 44) != 0,
        };
        MicroInstruction {
            sequencer,
            control,
            label: "",
        }
    }
}

impl fmt::Display for MicroInstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<24} {:?}", self.label, self.sequencer)?;
        if self.control.is_active() {
            write!(f, "  [datapath active]")?;
        }
        Ok(())
    }
}

/// The assembled microprogram: instructions plus routine entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Microprogram {
    instructions: Vec<MicroInstruction>,
    poll_entry: u16,
    dispatch_entry: u16,
    op_entries: [(HwOp, u16); 7],
    accept_entry: u16,
    reject_entry: u16,
    query_driver_entry: Option<u16>,
}

impl Microprogram {
    /// The standard Level-3 microprogram.
    pub fn standard() -> Self {
        fn push(instructions: &mut Vec<MicroInstruction>, i: MicroInstruction) -> u16 {
            let at = instructions.len() as u16;
            instructions.push(i);
            at
        }
        let mut instructions = Vec::new();

        // 0: the polling routine — "the MPC is engaged in a polling
        // routine [that] repeatedly monitors the zeroth bit of the
        // conditional code".
        let poll_entry = push(
            &mut instructions,
            MicroInstruction::sequencer_only(Sequencer::Poll(CondCode::ClauseReady), "POLL_CLAUSE"),
        );
        // 1: dispatch on the (db, query) type-tag pair via the Map ROM.
        let dispatch_entry = push(
            &mut instructions,
            MicroInstruction::sequencer_only(Sequencer::JumpMap, "DISPATCH"),
        );

        // Forward declarations: accept/reject live at known offsets after
        // the routines. We assemble routines first and patch jumps via
        // closures over computed addresses, so instead assemble with
        // placeholder targets and fix them after layout. To keep this
        // readable we lay out accept/reject immediately and jump backward
        // from routines.
        let accept_entry = push(
            &mut instructions,
            MicroInstruction::sequencer_only(Sequencer::Jump(poll_entry), "ACCEPT_NEXT_ARG"),
        );
        let reject_entry = push(
            &mut instructions,
            MicroInstruction::sequencer_only(Sequencer::Jump(poll_entry), "REJECT_CLAUSE"),
        );

        // One routine per hardware operation. Cycle k of HwOp::cycles()
        // maps to one instruction whose selector settings realise that
        // cycle's routes (Figures 6–12); the final instruction carries the
        // terminal action and branches on HIT.
        let mut op_entries = Vec::new();
        for op in HwOp::ALL {
            let entry = instructions.len() as u16;
            let cycles = op.cycles();
            for (k, _cycle) in cycles.iter().enumerate() {
                let last = k + 1 == cycles.len();
                let mut control = op_cycle_control(op, k);
                if last {
                    match op {
                        HwOp::DbStore => control.write_db_memory = true,
                        HwOp::QueryStore => control.write_query_memory = true,
                        _ => control.compare = true,
                    }
                }
                let sequencer = if last {
                    match op {
                        // Stores always succeed: back to the next pair.
                        HwOp::DbStore | HwOp::QueryStore => Sequencer::Jump(accept_entry),
                        // Compares branch on HIT.
                        _ => Sequencer::CondJump(CondCode::Hit, accept_entry),
                    }
                } else {
                    Sequencer::Continue
                };
                push(
                    &mut instructions,
                    MicroInstruction {
                        sequencer,
                        control,
                        label: op.name(),
                    },
                );
            }
            // Fall-through of a failed compare: reject the clause.
            if !matches!(op, HwOp::DbStore | HwOp::QueryStore) {
                push(
                    &mut instructions,
                    MicroInstruction::sequencer_only(Sequencer::Jump(reject_entry), "FAIL"),
                );
            }
            op_entries.push((op, entry));
        }

        // The complex-term element loop: decrement both counters and exit
        // when either reaches zero (the two-counter rule of §3.1).
        push(
            &mut instructions,
            MicroInstruction {
                sequencer: Sequencer::CondJump(CondCode::DbCounterZero, accept_entry),
                control: DatapathControl {
                    dec_db_counter: true,
                    dec_query_counter: true,
                    ..DatapathControl::default()
                },
                label: "ELEMENT_LOOP",
            },
        );
        push(
            &mut instructions,
            MicroInstruction::sequencer_only(
                Sequencer::CondJump(CondCode::QueryCounterZero, accept_entry),
                "ELEMENT_LOOP_Q",
            ),
        );
        push(
            &mut instructions,
            MicroInstruction::sequencer_only(Sequencer::Jump(dispatch_entry), "ELEMENT_NEXT"),
        );

        Microprogram {
            instructions,
            poll_entry,
            dispatch_entry,
            op_entries: op_entries.try_into().expect("seven ops"),
            accept_entry,
            reject_entry,
            query_driver_entry: None,
        }
    }

    /// Translates a query into microprogram instructions, as the paper's
    /// flow requires ("when a query is posed, it is translated into
    /// microprogram instructions"): the standard routine library plus a
    /// per-word driver that puts each query word's Query Memory address
    /// on microcode bits 13–20 and dispatches through the Map ROM.
    pub fn for_query(query_stream: &clare_pif::PifStream) -> Self {
        let mut program = Self::standard();
        let entry = program.instructions.len() as u16;
        for (i, _word) in query_stream.words().iter().enumerate() {
            program.instructions.push(MicroInstruction {
                sequencer: Sequencer::JumpMap,
                control: DatapathControl {
                    q_address: i as u8,
                    ..DatapathControl::default()
                },
                label: "QUERY_WORD",
            });
        }
        // All argument words matched: the clause is a satisfier.
        program.instructions.push(MicroInstruction::sequencer_only(
            Sequencer::Jump(program.accept_entry),
            "QUERY_DONE",
        ));
        program.query_driver_entry = Some(entry);
        program
    }

    /// Entry address of the query-word driver sequence, when this program
    /// was built with [`Self::for_query`].
    pub fn query_driver_entry(&self) -> Option<u16> {
        self.query_driver_entry
    }

    /// The instructions in WCS order.
    pub fn instructions(&self) -> &[MicroInstruction] {
        &self.instructions
    }

    /// Number of WCS words used.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True if the program is empty (never for [`standard`](Self::standard)).
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Entry address of the polling routine.
    pub fn poll_entry(&self) -> u16 {
        self.poll_entry
    }

    /// Entry address of the Map ROM dispatch instruction.
    pub fn dispatch_entry(&self) -> u16 {
        self.dispatch_entry
    }

    /// Entry address of the routine for `op`.
    pub fn op_entry(&self, op: HwOp) -> u16 {
        self.op_entries
            .iter()
            .find(|(o, _)| *o == op)
            .expect("every op has a routine")
            .1
    }

    /// The body of `op`'s routine (its datapath cycles, excluding the
    /// FAIL trampoline).
    pub fn op_routine(&self, op: HwOp) -> &[MicroInstruction] {
        let start = self.op_entry(op) as usize;
        &self.instructions[start..start + op.cycle_count()]
    }

    /// The assembled 64-bit words, ready for Microprogramming-mode
    /// loading.
    pub fn words(&self) -> Vec<u64> {
        self.instructions
            .iter()
            .map(MicroInstruction::to_word)
            .collect()
    }
}

impl fmt::Display for Microprogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "WCS listing — {} of {} instructions used",
            self.len(),
            WCS_INSTRUCTIONS
        )?;
        for (addr, instruction) in self.instructions.iter().enumerate() {
            let c = &instruction.control;
            let mut fields = Vec::new();
            for (name, branch) in [
                ("sel1", c.sel1),
                ("sel2", c.sel2),
                ("sel3", c.sel3),
                ("sel4", c.sel4),
                ("sel5", c.sel5),
                ("sel6", c.sel6),
            ] {
                match branch {
                    SelBranch::Left => fields.push(format!("{name}=L")),
                    SelBranch::Right => fields.push(format!("{name}=R")),
                    SelBranch::Hold => {}
                }
            }
            if c.latch_reg1 {
                fields.push("reg1".into());
            }
            if c.latch_reg3 {
                fields.push("reg3".into());
            }
            if c.write_db_memory {
                fields.push("wr-db".into());
            }
            if c.write_query_memory {
                fields.push("wr-q".into());
            }
            if c.compare {
                fields.push("cmp".into());
            }
            if c.dec_db_counter {
                fields.push("dec-dbc".into());
            }
            if c.dec_query_counter {
                fields.push("dec-qc".into());
            }
            if c.b_addr_from_reg1 {
                fields.push("baddr=reg1".into());
            }
            if c.q_address != 0 {
                fields.push(format!("ub13-20={}", c.q_address));
            }
            writeln!(
                f,
                "{addr:>4}  {:<22} {:<34} {}",
                instruction.label,
                format!("{:?}", instruction.sequencer),
                fields.join(" ")
            )?;
        }
        Ok(())
    }
}

/// The selector/latch settings realising cycle `k` of `op` — transcribed
/// from the figures' route descriptions ("left branch of Sel1", "right
/// branch of Sel3", …).
fn op_cycle_control(op: HwOp, k: usize) -> DatapathControl {
    use SelBranch::{Left, Right};
    let mut c = DatapathControl::default();
    match (op, k) {
        // Fig. 6: db = In-bus -> left Sel1; query = left Sel6 -> QMem ->
        // right Sel3.
        (HwOp::Match, 0) => {
            c.sel1 = Left;
            c.sel6 = Left;
            c.sel3 = Right;
        }
        // Fig. 7: db = left Sel1 -> left Sel2 (DB Memory A address);
        // query = left Sel6 -> QMem -> Reg3.
        (HwOp::DbStore, 0) => {
            c.sel1 = Left;
            c.sel2 = Left;
            c.sel6 = Left;
            c.latch_reg3 = true;
        }
        // Fig. 8: db = left Sel1 -> right Sel5 -> left Sel4; query = left
        // Sel6 addresses the Query Memory.
        (HwOp::QueryStore, 0) => {
            c.sel1 = Left;
            c.sel5 = Right;
            c.sel4 = Left;
            c.sel6 = Left;
        }
        // Fig. 9: db = DB Memory B data -> right Sel1; query as MATCH.
        (HwOp::DbFetch, 0) => {
            c.sel1 = Right;
            c.sel6 = Left;
            c.sel3 = Right;
        }
        // Fig. 10 cycle 1: query = left Sel6 -> QMem -> right Sel3 ->
        // right Sel2 -> DB Memory A address; db = left Sel1 (held after).
        (HwOp::QueryFetch, 0) => {
            c.sel1 = Left;
            c.sel6 = Left;
            c.sel3 = Right;
            c.sel2 = Right;
        }
        // Fig. 10 cycle 2: binding out of DB Memory via left Sel3.
        (HwOp::QueryFetch, 1) => {
            c.sel3 = Left;
        }
        // Fig. 11 cycle 1: db = DB Memory B data -> Reg1; query route as
        // MATCH (set up early).
        (HwOp::DbCrossBoundFetch, 0) => {
            c.latch_reg1 = true;
            c.sel6 = Left;
            c.sel3 = Right;
        }
        // Fig. 11 cycle 2: Reg1 -> DB Memory B address -> right Sel1.
        (HwOp::DbCrossBoundFetch, 1) => {
            c.sel1 = Right;
            c.b_addr_from_reg1 = true;
        }
        // Fig. 12 cycle 1: query = left Sel6 -> QMem -> right Sel3 ->
        // right Sel2; db = left Sel1 (held).
        (HwOp::QueryCrossBoundFetch, 0) => {
            c.sel1 = Left;
            c.sel6 = Left;
            c.sel3 = Right;
            c.sel2 = Right;
        }
        // Fig. 12 cycle 2: DB Memory A-data recycles through the left
        // branch of Sel3 back onto the A address port via Sel2's
        // Sel3-side input.
        (HwOp::QueryCrossBoundFetch, 1) => {
            c.sel3 = Left;
            c.sel2 = Right;
        }
        // Fig. 12 cycle 3: DB Memory -> left Sel3 to the B port.
        (HwOp::QueryCrossBoundFetch, 2) => {
            c.sel3 = Left;
        }
        _ => unreachable!("no cycle {k} in {op}"),
    }
    c
}

/// The WCS RAM: 2048 words of 64 bits, loadable in Microprogramming mode.
#[derive(Debug, Clone)]
pub struct Wcs {
    ram: Vec<u64>,
}

/// Error loading a microprogram that exceeds the WCS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WcsOverflowError {
    /// Instructions in the offending program.
    pub instructions: usize,
}

impl fmt::Display for WcsOverflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "microprogram of {} instructions exceeds the {WCS_INSTRUCTIONS}-word WCS",
            self.instructions
        )
    }
}

impl std::error::Error for WcsOverflowError {}

impl Wcs {
    /// An empty (all-zero) control store.
    pub fn new() -> Self {
        Wcs {
            ram: vec![0; WCS_INSTRUCTIONS],
        }
    }

    /// Loads a program at address zero.
    ///
    /// # Errors
    ///
    /// Returns [`WcsOverflowError`] if the program exceeds 2048 words.
    pub fn load(&mut self, program: &Microprogram) -> Result<(), WcsOverflowError> {
        let words = program.words();
        if words.len() > WCS_INSTRUCTIONS {
            return Err(WcsOverflowError {
                instructions: words.len(),
            });
        }
        self.ram[..words.len()].copy_from_slice(&words);
        for slot in &mut self.ram[words.len()..] {
            *slot = 0;
        }
        Ok(())
    }

    /// Reads one word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the 2048-word store.
    pub fn read(&self, addr: u16) -> u64 {
        self.ram[addr as usize]
    }

    /// Decodes the instruction at `addr`.
    pub fn fetch(&self, addr: u16) -> MicroInstruction {
        MicroInstruction::from_word(self.read(addr))
    }
}

impl Default for Wcs {
    fn default() -> Self {
        Self::new()
    }
}

/// The Micro Program Controller: a program counter stepping WCS words
/// under the condition codes.
#[derive(Debug, Clone)]
pub struct Mpc {
    pc: u16,
}

/// Condition-code inputs for one step.
#[derive(Debug, Clone, Copy, Default)]
pub struct CcInputs {
    /// A clause is ready in the Double Buffer.
    pub clause_ready: bool,
    /// The comparator raised HIT.
    pub hit: bool,
    /// The database element counter is zero.
    pub db_counter_zero: bool,
    /// The query element counter is zero.
    pub query_counter_zero: bool,
}

impl CcInputs {
    fn test(&self, cc: CondCode) -> bool {
        match cc {
            CondCode::ClauseReady => self.clause_ready,
            CondCode::Hit => self.hit,
            CondCode::DbCounterZero => self.db_counter_zero,
            CondCode::QueryCounterZero => self.query_counter_zero,
        }
    }
}

impl Mpc {
    /// A controller starting at address 0 (the polling routine).
    pub fn new() -> Self {
        Mpc { pc: 0 }
    }

    /// The current program counter.
    pub fn pc(&self) -> u16 {
        self.pc
    }

    /// Executes one microcycle: fetches the instruction at `pc`, applies
    /// the sequencer under the condition codes (Map ROM jumps resolve to
    /// `map_target`), and returns the executed instruction.
    pub fn step(&mut self, wcs: &Wcs, cc: CcInputs, map_target: u16) -> MicroInstruction {
        let instruction = wcs.fetch(self.pc);
        self.pc = match instruction.sequencer {
            Sequencer::Continue => self.pc.wrapping_add(1),
            Sequencer::Jump(a) => a,
            Sequencer::CondJump(code, a) => {
                if cc.test(code) {
                    a
                } else {
                    self.pc.wrapping_add(1)
                }
            }
            Sequencer::JumpMap => map_target,
            Sequencer::Poll(code) => {
                if cc.test(code) {
                    self.pc.wrapping_add(1)
                } else {
                    self.pc
                }
            }
        };
        instruction
    }
}

impl Default for Mpc {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_program_fits_the_wcs() {
        let p = Microprogram::standard();
        assert!(p.len() <= WCS_INSTRUCTIONS);
        assert!(p.len() >= 20, "a real program, not a stub: {}", p.len());
        let mut wcs = Wcs::new();
        wcs.load(&p).unwrap();
    }

    #[test]
    fn word_encoding_roundtrips() {
        for instruction in Microprogram::standard().instructions() {
            let back = MicroInstruction::from_word(instruction.to_word());
            assert_eq!(
                back.sequencer, instruction.sequencer,
                "{}",
                instruction.label
            );
            assert_eq!(back.control, instruction.control, "{}", instruction.label);
        }
    }

    #[test]
    fn routine_lengths_match_figure_cycle_counts() {
        let p = Microprogram::standard();
        for op in HwOp::ALL {
            assert_eq!(
                p.op_routine(op).len(),
                op.cycle_count(),
                "{op}: one instruction per figure cycle"
            );
        }
    }

    #[test]
    fn selector_settings_consistent_with_figure_routes() {
        // The microprogram's control fields and the ops module's route
        // lists describe the same figures; cross-validate them.
        let p = Microprogram::standard();
        for op in HwOp::ALL {
            for (k, (instruction, cycle)) in p.op_routine(op).iter().zip(op.cycles()).enumerate() {
                assert!(
                    instruction
                        .control
                        .consistent_with_routes(cycle.db_route, cycle.query_route),
                    "{op} cycle {k}: control {:?} vs routes {:?}/{:?}",
                    instruction.control,
                    cycle.db_route,
                    cycle.query_route
                );
            }
        }
    }

    #[test]
    fn terminal_actions_encoded() {
        let p = Microprogram::standard();
        let last = |op: HwOp| p.op_routine(op).last().unwrap().control;
        assert!(last(HwOp::DbStore).write_db_memory);
        assert!(last(HwOp::QueryStore).write_query_memory);
        assert!(last(HwOp::Match).compare);
        assert!(last(HwOp::QueryCrossBoundFetch).compare);
        assert!(!last(HwOp::DbStore).compare);
    }

    #[test]
    fn mpc_polls_until_clause_ready() {
        let p = Microprogram::standard();
        let mut wcs = Wcs::new();
        wcs.load(&p).unwrap();
        let mut mpc = Mpc::new();
        // Nothing ready: the MPC spins at the poll address.
        for _ in 0..5 {
            mpc.step(&wcs, CcInputs::default(), 0);
            assert_eq!(mpc.pc(), p.poll_entry());
        }
        // A clause arrives: fall through to the dispatch instruction.
        mpc.step(
            &wcs,
            CcInputs {
                clause_ready: true,
                ..CcInputs::default()
            },
            0,
        );
        assert_eq!(mpc.pc(), p.dispatch_entry());
    }

    #[test]
    fn mpc_dispatches_through_map_rom_and_runs_match() {
        let p = Microprogram::standard();
        let mut wcs = Wcs::new();
        wcs.load(&p).unwrap();
        let mut mpc = Mpc::new();
        let ready = CcInputs {
            clause_ready: true,
            hit: true,
            ..CcInputs::default()
        };
        mpc.step(&wcs, ready, 0); // poll -> dispatch
        let match_entry = p.op_entry(HwOp::Match);
        mpc.step(&wcs, ready, match_entry); // dispatch -> MATCH
        assert_eq!(mpc.pc(), match_entry);
        let executed = mpc.step(&wcs, ready, 0); // MATCH body, HIT -> accept
        assert!(executed.control.compare);
        assert_eq!(mpc.pc(), 2, "HIT branches to ACCEPT_NEXT_ARG");
    }

    #[test]
    fn failed_compare_falls_through_to_reject() {
        let p = Microprogram::standard();
        let mut wcs = Wcs::new();
        wcs.load(&p).unwrap();
        let mut mpc = Mpc::new();
        let no_hit = CcInputs {
            clause_ready: true,
            hit: false,
            ..CcInputs::default()
        };
        mpc.step(&wcs, no_hit, 0);
        let entry = p.op_entry(HwOp::Match);
        mpc.step(&wcs, no_hit, entry);
        mpc.step(&wcs, no_hit, 0); // compare misses -> fall through
        let fail = mpc.step(&wcs, no_hit, 0); // FAIL trampoline
        assert_eq!(fail.sequencer, Sequencer::Jump(3));
    }

    #[test]
    fn query_translation_appends_driver() {
        use clare_pif::encode_query;
        use clare_term::parser::parse_term;
        let mut sy = clare_term::SymbolTable::new();
        let q = parse_term("f(a, X, g(b, Y))", &mut sy).unwrap();
        let stream = encode_query(&q).unwrap();
        let program = Microprogram::for_query(&stream);
        let entry = program.query_driver_entry().expect("driver present");
        let base = Microprogram::standard().len();
        assert_eq!(entry as usize, base);
        // One dispatch per stream word, plus the final accept jump.
        assert_eq!(program.len(), base + stream.len() + 1);
        for (i, instruction) in program.instructions()[base..base + stream.len()]
            .iter()
            .enumerate()
        {
            assert_eq!(instruction.sequencer, Sequencer::JumpMap);
            assert_eq!(instruction.control.q_address as usize, i);
        }
        // The translated program round-trips through the WCS word format.
        let mut wcs = Wcs::new();
        wcs.load(&program).unwrap();
        let back = wcs.fetch(entry + 1);
        assert_eq!(back.control.q_address, 1);
    }

    #[test]
    fn overflow_rejected() {
        let mut wcs = Wcs::new();
        let mut big = Microprogram::standard();
        while big.instructions.len() <= WCS_INSTRUCTIONS {
            big.instructions
                .push(MicroInstruction::sequencer_only(Sequencer::Continue, "PAD"));
        }
        assert!(wcs.load(&big).is_err());
    }
}
