//! The 8-bit control register and operational modes (§2.2/§3).
//!
//! CLARE is memory-mapped into the SUN host's VME space at
//! `ffff7e00`–`ffff7fff`. Bit 2 of the control register selects FS1 or
//! FS2; bits 0–1 select the operational mode; bit 7 reports that a match
//! was found during a search.

use std::fmt;

/// First byte of the shared CLARE address window in the host's VME space.
pub const VME_WINDOW_START: u32 = 0xffff_7e00;
/// Last byte of the shared CLARE address window.
pub const VME_WINDOW_END: u32 = 0xffff_7fff;

/// The four FS2 operational modes, selected by control-register bits
/// b0/b1 exactly as the paper's mode table gives them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperationalMode {
    /// b0=0, b1=0 — read captured satisfiers out of the Result Memory.
    ReadResult,
    /// b0=0, b1=1 — stream disk data through the filter.
    Search,
    /// b0=1, b1=0 — load microprogram instructions into the WCS.
    Microprogramming,
    /// b0=1, b1=1 — write query argument words into the Query Memory.
    SetQuery,
}

impl OperationalMode {
    /// Encodes to `(b0, b1)`.
    pub fn to_bits(self) -> (bool, bool) {
        match self {
            OperationalMode::ReadResult => (false, false),
            OperationalMode::Search => (false, true),
            OperationalMode::Microprogramming => (true, false),
            OperationalMode::SetQuery => (true, true),
        }
    }

    /// Decodes from `(b0, b1)`.
    pub fn from_bits(b0: bool, b1: bool) -> Self {
        match (b0, b1) {
            (false, false) => OperationalMode::ReadResult,
            (false, true) => OperationalMode::Search,
            (true, false) => OperationalMode::Microprogramming,
            (true, true) => OperationalMode::SetQuery,
        }
    }
}

impl fmt::Display for OperationalMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OperationalMode::ReadResult => "Read Result",
            OperationalMode::Search => "Search",
            OperationalMode::Microprogramming => "Microprogramming",
            OperationalMode::SetQuery => "Set Query",
        })
    }
}

/// Which filter board the shared address window talks to (control bit b2:
/// 0 selects FS1, 1 selects FS2 — "the two filters are mutually
/// exclusive").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterSelect {
    /// The superimposed-codeword index scanner.
    Fs1,
    /// The partial-test-unification engine.
    Fs2,
}

/// The 8-bit CLARE control register.
///
/// # Examples
///
/// ```
/// use clare_fs2::{ControlRegister, FilterSelect, OperationalMode};
///
/// let mut reg = ControlRegister::new();
/// reg.select_filter(FilterSelect::Fs2);
/// reg.set_mode(OperationalMode::Search);
/// assert_eq!(reg.mode(), OperationalMode::Search);
/// assert_eq!(reg.raw() & 0b100, 0b100);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlRegister(u8);

impl ControlRegister {
    /// A cleared register: Read Result mode, FS1 selected, no match flag.
    pub fn new() -> Self {
        ControlRegister(0)
    }

    /// The raw byte as the host would read it over the VMEbus.
    pub fn raw(self) -> u8 {
        self.0
    }

    /// Reconstructs from a raw byte.
    pub fn from_raw(byte: u8) -> Self {
        ControlRegister(byte)
    }

    /// Sets the operational mode bits (b0/b1).
    pub fn set_mode(&mut self, mode: OperationalMode) {
        let (b0, b1) = mode.to_bits();
        self.0 = (self.0 & !0b11) | (b0 as u8) | ((b1 as u8) << 1);
    }

    /// The current operational mode.
    pub fn mode(self) -> OperationalMode {
        OperationalMode::from_bits(self.0 & 1 != 0, self.0 & 2 != 0)
    }

    /// Sets the filter-select bit (b2).
    pub fn select_filter(&mut self, filter: FilterSelect) {
        match filter {
            FilterSelect::Fs1 => self.0 &= !0b100,
            FilterSelect::Fs2 => self.0 |= 0b100,
        }
    }

    /// Which filter the window currently addresses.
    pub fn filter(self) -> FilterSelect {
        if self.0 & 0b100 != 0 {
            FilterSelect::Fs2
        } else {
            FilterSelect::Fs1
        }
    }

    /// Sets or clears the match-found flag (b7), as the search hardware
    /// does at the end of a search.
    pub fn set_match_found(&mut self, found: bool) {
        if found {
            self.0 |= 0b1000_0000;
        } else {
            self.0 &= !0b1000_0000;
        }
    }

    /// True if the last search captured at least one satisfier.
    pub fn match_found(self) -> bool {
        self.0 & 0b1000_0000 != 0
    }
}

impl fmt::Display for ControlRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#010b} ({}, {:?}, match={})",
            self.0,
            self.mode(),
            self.filter(),
            self.match_found()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_bit_encoding_matches_paper_table() {
        assert_eq!(OperationalMode::ReadResult.to_bits(), (false, false));
        assert_eq!(OperationalMode::Search.to_bits(), (false, true));
        assert_eq!(OperationalMode::Microprogramming.to_bits(), (true, false));
        assert_eq!(OperationalMode::SetQuery.to_bits(), (true, true));
        for m in [
            OperationalMode::ReadResult,
            OperationalMode::Search,
            OperationalMode::Microprogramming,
            OperationalMode::SetQuery,
        ] {
            let (b0, b1) = m.to_bits();
            assert_eq!(OperationalMode::from_bits(b0, b1), m);
        }
    }

    #[test]
    fn register_fields_are_independent() {
        let mut r = ControlRegister::new();
        r.select_filter(FilterSelect::Fs2);
        r.set_mode(OperationalMode::SetQuery);
        r.set_match_found(true);
        assert_eq!(r.mode(), OperationalMode::SetQuery);
        assert_eq!(r.filter(), FilterSelect::Fs2);
        assert!(r.match_found());
        r.set_mode(OperationalMode::Search);
        assert_eq!(r.filter(), FilterSelect::Fs2, "mode change keeps b2");
        assert!(r.match_found(), "mode change keeps b7");
        r.select_filter(FilterSelect::Fs1);
        assert_eq!(r.mode(), OperationalMode::Search, "b2 change keeps mode");
    }

    #[test]
    fn raw_roundtrip() {
        let mut r = ControlRegister::new();
        r.set_mode(OperationalMode::Microprogramming);
        r.select_filter(FilterSelect::Fs2);
        let byte = r.raw();
        assert_eq!(ControlRegister::from_raw(byte), r);
        // b0=1, b1=0, b2=1 -> 0b101.
        assert_eq!(byte, 0b101);
    }

    #[test]
    fn vme_window_is_128k_shared() {
        // The paper describes a 128 KB shared window; the printed hex
        // bounds span 512 bytes — we reproduce the printed bounds and note
        // the discrepancy here.
        assert_eq!(VME_WINDOW_START, 0xffff_7e00);
        assert_eq!(VME_WINDOW_END, 0xffff_7fff);
        assert_eq!(VME_WINDOW_END - VME_WINDOW_START + 1, 512);
    }
}
