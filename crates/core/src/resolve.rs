//! SLD resolution on top of the CRS.
//!
//! The PDBM system is "a single Prolog system" managing the whole
//! knowledge base; this module supplies the resolution loop so queries run
//! end-to-end: every goal's clause lookup goes through
//! [`retrieve`](crate::crs::retrieve()) (in a chosen or automatically
//! selected search mode), candidates are fully unified, and matching
//! clause bodies are expanded depth-first in program order — standard
//! Prolog semantics, including the user-significant clause ordering the
//! paper insists a general-purpose knowledge base must preserve.

use crate::budget::{BudgetExceeded, BudgetReason, CancelToken};
use crate::crs::{
    choose_mode, retrieve_budgeted, retrieve_merged_budgeted, CrsOptions, RetrievalStats,
    SearchMode,
};
use clare_disk::SimNanos;
use clare_kb::KnowledgeBase;
use clare_term::{Term, VarId};
use clare_unify::full::{unify, UnifyOptions};
use clare_unify::store::{shift_vars, var_span, BindingStore};
use clare_wal::Overlay;
use std::collections::HashMap;

/// How the solver picks a search mode per goal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeChoice {
    /// Always use this mode.
    Fixed(SearchMode),
    /// Use [`choose_mode`] per (instantiated) goal.
    Auto,
}

/// Solver limits and configuration.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Search-mode policy.
    pub mode: ModeChoice,
    /// Stop after this many solutions (`usize::MAX` for all).
    pub max_solutions: usize,
    /// Maximum resolution depth (guards runaway recursion).
    pub max_depth: usize,
    /// CRS configuration.
    pub crs: CrsOptions,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            mode: ModeChoice::Auto,
            max_solutions: usize::MAX,
            max_depth: 256,
            crs: CrsOptions::default(),
        }
    }
}

/// One solution: the query with its variables instantiated.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The fully resolved query term.
    pub term: Term,
    /// Bindings of the query's named variables, in first-occurrence
    /// order: `(name, resolved term)`.
    pub bindings: Vec<(String, Term)>,
}

/// Aggregate statistics for one solve call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Goals expanded (retrievals performed).
    pub retrievals: usize,
    /// Clauses fully unified across all retrievals.
    pub clauses_unified: usize,
    /// Candidates examined across all retrievals.
    pub candidates: usize,
    /// Total modelled retrieval time.
    pub retrieval_elapsed: SimNanos,
    /// Depth limit hits (search was cut).
    pub depth_cuts: usize,
    /// Whether any retrieval along the way ran degraded (quarantined
    /// tracks served by software unification instead of the hardware
    /// filter). The solutions are still exactly the fault-free ones.
    pub degraded: bool,
}

impl SolveStats {
    fn absorb(&mut self, stats: &RetrievalStats) {
        self.retrievals += 1;
        self.clauses_unified += stats.unified;
        self.candidates += stats.candidates;
        self.retrieval_elapsed += stats.elapsed;
        self.degraded |= stats.degraded;
    }
}

/// The result of a solve call.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOutcome {
    /// Solutions in Prolog order.
    pub solutions: Vec<Solution>,
    /// Aggregate statistics.
    pub stats: SolveStats,
}

impl SolveOutcome {
    /// True when the search hit [`SolveOptions::max_depth`] somewhere:
    /// the solution list is complete only up to the depth cap (deeper
    /// derivations were cut, not proven absent). Each capped solve also
    /// bumps the `solve.depth_cap_hits` trace counter once.
    pub fn depth_capped(&self) -> bool {
        self.stats.depth_cuts > 0
    }
}

/// Solves `query` (a single goal) against the knowledge base.
///
/// `var_names` supplies the query's variable names for the bindings
/// report (pass the names from
/// [`parse_term_with_vars`](clare_term::parser::parse_term_with_vars), or
/// an empty slice to skip named bindings).
///
/// # Examples
///
/// ```
/// use clare_core::{solve, SolveOptions};
/// use clare_kb::{KbBuilder, KbConfig};
/// use clare_term::parser::parse_term_with_vars;
///
/// let mut b = KbBuilder::new();
/// b.consult("m", "
///     parent(tom, bob). parent(bob, ann).
///     grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
/// ")?;
/// let (query, names) = parse_term_with_vars("grandparent(tom, Who)", b.symbols_mut())?;
/// let kb = b.finish(KbConfig::default());
///
/// let outcome = solve(&kb, &query, &names, &SolveOptions::default());
/// assert_eq!(outcome.solutions.len(), 1);
/// assert_eq!(outcome.solutions[0].bindings[0].0, "Who");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve(
    kb: &KnowledgeBase,
    query: &Term,
    var_names: &[String],
    options: &SolveOptions,
) -> SolveOutcome {
    solve_goals(kb, std::slice::from_ref(query), var_names, options)
}

/// [`solve`] over the base snapshot merged with a memtable overlay: every
/// goal's clause lookup goes through
/// [`retrieve_merged`](crate::crs::retrieve_merged()), so asserted
/// clauses resolve and retracted ones don't — with answers identical to
/// solving over a knowledge base rebuilt from scratch.
pub fn solve_merged(
    kb: &KnowledgeBase,
    overlay: &Overlay,
    query: &Term,
    var_names: &[String],
    options: &SolveOptions,
) -> SolveOutcome {
    solve_goals_merged(kb, overlay, std::slice::from_ref(query), var_names, options)
}

/// Solves a conjunction of goals sharing one variable scope (the shape
/// [`parse_goals`](clare_term::parser::parse_goals) produces).
///
/// For a single goal, [`Solution::term`] is that goal resolved; for a
/// conjunction it is a list of the resolved goals.
///
/// # Examples
///
/// ```
/// use clare_core::{solve_goals, SolveOptions};
/// use clare_kb::{KbBuilder, KbConfig};
/// use clare_term::parser::parse_goals;
///
/// let mut b = KbBuilder::new();
/// b.consult("m", "parent(tom, bob). parent(tom, liz). male(bob).")?;
/// let (goals, names) = parse_goals("parent(tom, X), male(X)", b.symbols_mut())?;
/// let kb = b.finish(KbConfig::default());
///
/// let outcome = solve_goals(&kb, &goals, &names, &SolveOptions::default());
/// assert_eq!(outcome.solutions.len(), 1); // only bob is male
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve_goals(
    kb: &KnowledgeBase,
    goals: &[Term],
    var_names: &[String],
    options: &SolveOptions,
) -> SolveOutcome {
    match solve_goals_inner(
        kb,
        None,
        goals,
        var_names,
        options,
        &CancelToken::unlimited(),
    ) {
        Ok(outcome) => outcome,
        Err(_) => unreachable!("the unlimited budget cannot trip"),
    }
}

/// [`solve_goals`] merged with a memtable overlay (see [`solve_merged`]).
pub fn solve_goals_merged(
    kb: &KnowledgeBase,
    overlay: &Overlay,
    goals: &[Term],
    var_names: &[String],
    options: &SolveOptions,
) -> SolveOutcome {
    match solve_goals_inner(
        kb,
        Some(overlay),
        goals,
        var_names,
        options,
        &CancelToken::unlimited(),
    ) {
        Ok(outcome) => outcome,
        Err(_) => unreachable!("the unlimited budget cannot trip"),
    }
}

/// [`solve_goals`] under a request budget: the token is polled at every
/// resolution step (each goal expansion charges [`CancelToken::note_step`])
/// and inside every retrieval's own checkpoints, so a runaway recursive
/// query dies within one checkpoint interval of its deadline. A tripped
/// budget returns a typed [`BudgetExceeded`] carrying the partial
/// [`SolveStats`] — never a truncated solution list.
pub fn solve_goals_budgeted(
    kb: &KnowledgeBase,
    goals: &[Term],
    var_names: &[String],
    options: &SolveOptions,
    cancel: &CancelToken,
) -> Result<SolveOutcome, BudgetExceeded> {
    solve_goals_inner(kb, None, goals, var_names, options, cancel)
}

/// [`solve_goals_budgeted`] merged with a memtable overlay.
pub fn solve_goals_merged_budgeted(
    kb: &KnowledgeBase,
    overlay: &Overlay,
    goals: &[Term],
    var_names: &[String],
    options: &SolveOptions,
    cancel: &CancelToken,
) -> Result<SolveOutcome, BudgetExceeded> {
    solve_goals_inner(kb, Some(overlay), goals, var_names, options, cancel)
}

fn solve_goals_inner(
    kb: &KnowledgeBase,
    overlay: Option<&Overlay>,
    goals: &[Term],
    var_names: &[String],
    options: &SolveOptions,
    cancel: &CancelToken,
) -> Result<SolveOutcome, BudgetExceeded> {
    let span = goals.iter().map(var_span).max().unwrap_or(0) as usize;
    let query = if goals.len() == 1 {
        goals[0].clone()
    } else {
        Term::List {
            items: goals.to_vec(),
            tail: None,
        }
    };
    let mut store = BindingStore::with_capacity(span);
    let mut ctx = Solver {
        kb,
        overlay,
        options,
        store: &mut store,
        solutions: Vec::new(),
        stats: SolveStats::default(),
        query,
        var_names,
        cancel,
    };
    let result = ctx.dfs(goals, 0);
    let stats = ctx.stats;
    if stats.depth_cuts > 0 {
        // Once per capped solve, not per cut: the counter tracks how
        // many answers were silently bounded, not how bushy the tree was.
        clare_trace::metrics().solve_depth_cap_hits.inc();
    }
    match result {
        Ok(()) => Ok(SolveOutcome {
            solutions: ctx.solutions,
            stats,
        }),
        Err(reason) => Err(BudgetExceeded {
            reason: Some(reason),
            retrieval_stats: None,
            solve_stats: Some(Box::new(stats)),
        }),
    }
}

struct Solver<'a> {
    kb: &'a KnowledgeBase,
    overlay: Option<&'a Overlay>,
    options: &'a SolveOptions,
    store: &'a mut BindingStore,
    solutions: Vec<Solution>,
    stats: SolveStats,
    query: Term,
    var_names: &'a [String],
    cancel: &'a CancelToken,
}

impl Solver<'_> {
    fn done(&self) -> bool {
        self.solutions.len() >= self.options.max_solutions
    }

    fn dfs(&mut self, goals: &[Term], depth: usize) -> Result<(), BudgetReason> {
        // Every expansion is one resolution step against the budget; the
        // same call doubles as the deadline checkpoint, so a runaway
        // recursion dies within one expansion of its deadline.
        self.cancel.note_step()?;
        if self.done() {
            return Ok(());
        }
        let Some((goal, rest)) = goals.split_first() else {
            self.record_solution();
            return Ok(());
        };
        if depth >= self.options.max_depth {
            self.stats.depth_cuts += 1;
            return Ok(());
        }
        // Instantiate the goal under current bindings, then renumber its
        // variables densely so the hardware query encoding stays compact.
        let resolved = self.store.resolve(goal);
        let (compact, reverse) = compact_vars(&resolved);
        let mode = match self.options.mode {
            ModeChoice::Fixed(m) => m,
            ModeChoice::Auto => choose_mode(self.kb, &compact),
        };
        let retrieval = match self.overlay {
            Some(overlay) => retrieve_merged_budgeted(
                self.kb,
                overlay,
                &compact,
                mode,
                &self.options.crs,
                self.cancel,
            ),
            None => retrieve_budgeted(self.kb, &compact, mode, &self.options.crs, self.cancel),
        };
        let retrieval = match retrieval {
            Ok(retrieval) => retrieval,
            Err(exceeded) => {
                // Fold the cancelled retrieval's partial stats in before
                // propagating, so the reported SolveStats cover the work
                // actually done.
                if let Some(stats) = &exceeded.retrieval_stats {
                    self.stats.absorb(stats);
                }
                return Err(exceeded.reason.unwrap_or(BudgetReason::Deadline));
            }
        };
        self.stats.absorb(&retrieval.stats);
        let Some((functor, arity)) = compact.functor_arity() else {
            return Ok(());
        };
        // Base clauses index the predicate's clause list; synthetic ids
        // beyond it index the overlay delta's added clauses.
        let pred = self.kb.predicate(functor, arity);
        let delta = self.overlay.and_then(|o| o.delta(functor, arity));
        let base_len = pred.map_or(0, |p| p.clauses().len());
        if pred.is_none() && delta.is_none() {
            return Ok(());
        }
        for id in retrieval.candidates {
            if self.done() {
                return Ok(());
            }
            let idx = id.index() as usize;
            let clause = if idx < base_len {
                &pred.expect("base_len > 0 implies a predicate").clauses()[idx]
            } else {
                &delta.expect("synthetic ids come from a delta").added()[idx - base_len].clause
            };
            // Rename the clause apart: its variables move past every slot
            // allocated so far.
            let base = self.store.len() as u32;
            let clause_span = clause.var_names().len() as u32;
            self.store.ensure((base + clause_span) as usize);
            let head = shift_vars(clause.head(), base);
            let mark = self.store.mark();
            // Unify against the *original* goal (under the store), not the
            // compacted copy, so bindings propagate to the caller's terms.
            // Occurs check on: keeps the solver total (see the oracle).
            let descend = if unify(goal, &head, self.store, UnifyOptions { occurs_check: true }) {
                let mut next: Vec<Term> =
                    clause.body().iter().map(|g| shift_vars(g, base)).collect();
                next.extend(rest.iter().cloned());
                self.dfs(&next, depth + 1)
            } else {
                Ok(())
            };
            // Bindings are rolled back even when the budget tripped
            // mid-descent — the store stays consistent for the caller.
            self.store.undo(mark);
            descend?;
            let _ = reverse; // reverse map only needed for diagnostics
        }
        Ok(())
    }

    fn record_solution(&mut self) {
        let term = self.store.resolve(&self.query);
        let bindings = self
            .var_names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                (
                    name.clone(),
                    self.store.resolve(&Term::Var(VarId::new(i as u32))),
                )
            })
            .collect();
        self.solutions.push(Solution { term, bindings });
    }
}

/// Renumbers the named variables of `term` densely from zero, returning
/// the rewritten term and the map from new index to original [`VarId`].
pub fn compact_vars(term: &Term) -> (Term, Vec<VarId>) {
    let mut map: HashMap<VarId, VarId> = HashMap::new();
    let mut reverse = Vec::new();
    let compacted = rewrite(term, &mut map, &mut reverse);
    (compacted, reverse)
}

fn rewrite(term: &Term, map: &mut HashMap<VarId, VarId>, reverse: &mut Vec<VarId>) -> Term {
    match term {
        Term::Var(v) => {
            let next = VarId::new(reverse.len() as u32);
            let id = *map.entry(*v).or_insert_with(|| {
                reverse.push(*v);
                next
            });
            Term::Var(id)
        }
        Term::Struct { functor, args } => Term::Struct {
            functor: *functor,
            args: args.iter().map(|a| rewrite(a, map, reverse)).collect(),
        },
        Term::List { items, tail } => Term::List {
            items: items.iter().map(|i| rewrite(i, map, reverse)).collect(),
            tail: tail.as_deref().map(|t| Box::new(rewrite(t, map, reverse))),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_kb::{KbBuilder, KbConfig};
    use clare_term::parser::{parse_term, parse_term_with_vars};
    use clare_term::{SymbolTable, TermDisplay};

    fn family_kb() -> (KnowledgeBase, SymbolTable) {
        let mut b = KbBuilder::new();
        b.consult(
            "family",
            "parent(tom, bob). parent(tom, liz). parent(bob, ann).
             parent(bob, pat). parent(pat, jim).
             grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
             ancestor(X, Y) :- parent(X, Y).
             ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).",
        )
        .unwrap();
        let kb = b.finish(KbConfig::default());
        let sy = kb.symbols().clone();
        (kb, sy)
    }

    fn answers(kb: &KnowledgeBase, sy: &SymbolTable, query: &str) -> Vec<String> {
        let mut local = sy.clone();
        let (q, names) = parse_term_with_vars(query, &mut local).unwrap();
        // Symbols in the query must pre-exist in the KB for equality of
        // offsets; parsing with a clone is safe when atoms already occur.
        let outcome = solve(kb, &q, &names, &SolveOptions::default());
        outcome
            .solutions
            .iter()
            .map(|s| TermDisplay::new(&s.term, &local).to_string())
            .collect()
    }

    #[test]
    fn facts_in_program_order() {
        let (kb, sy) = family_kb();
        assert_eq!(
            answers(&kb, &sy, "parent(tom, X)"),
            vec!["parent(tom, bob)", "parent(tom, liz)"]
        );
    }

    #[test]
    fn rule_expansion() {
        let (kb, sy) = family_kb();
        assert_eq!(
            answers(&kb, &sy, "grandparent(tom, W)"),
            vec!["grandparent(tom, ann)", "grandparent(tom, pat)"]
        );
    }

    #[test]
    fn recursive_rules() {
        let (kb, sy) = family_kb();
        let anc = answers(&kb, &sy, "ancestor(tom, W)");
        assert_eq!(
            anc,
            vec![
                "ancestor(tom, bob)",
                "ancestor(tom, liz)",
                "ancestor(tom, ann)",
                "ancestor(tom, pat)",
                "ancestor(tom, jim)",
            ]
        );
    }

    #[test]
    fn ground_query_succeeds_or_fails() {
        let (kb, sy) = family_kb();
        assert_eq!(answers(&kb, &sy, "parent(tom, bob)").len(), 1);
        assert!(answers(&kb, &sy, "parent(bob, tom)").is_empty());
    }

    #[test]
    fn bindings_reported_by_name() {
        let (kb, _sy) = family_kb();
        let mut local = kb.symbols().clone();
        let (q, names) = parse_term_with_vars("parent(Child, ann)", &mut local).unwrap();
        let outcome = solve(&kb, &q, &names, &SolveOptions::default());
        assert_eq!(outcome.solutions.len(), 1);
        let (name, term) = &outcome.solutions[0].bindings[0];
        assert_eq!(name, "Child");
        assert_eq!(TermDisplay::new(term, &local).to_string(), "bob");
    }

    #[test]
    fn max_solutions_limits() {
        let (kb, _sy) = family_kb();
        let mut local = kb.symbols().clone();
        let (q, names) = parse_term_with_vars("parent(A, B)", &mut local).unwrap();
        let outcome = solve(
            &kb,
            &q,
            &names,
            &SolveOptions {
                max_solutions: 2,
                ..SolveOptions::default()
            },
        );
        assert_eq!(outcome.solutions.len(), 2);
    }

    #[test]
    fn depth_limit_cuts_infinite_recursion() {
        let mut b = KbBuilder::new();
        b.consult("m", "loop(X) :- loop(X).").unwrap();
        let (q, names) = parse_term_with_vars("loop(a)", b.symbols_mut()).unwrap();
        let kb = b.finish(KbConfig::default());
        let outcome = solve(
            &kb,
            &q,
            &names,
            &SolveOptions {
                max_depth: 20,
                ..SolveOptions::default()
            },
        );
        assert!(outcome.solutions.is_empty());
        assert!(outcome.stats.depth_cuts > 0);
    }

    #[test]
    fn stats_accumulate() {
        let (kb, _sy) = family_kb();
        let mut local = kb.symbols().clone();
        let (q, names) = parse_term_with_vars("grandparent(tom, W)", &mut local).unwrap();
        let outcome = solve(&kb, &q, &names, &SolveOptions::default());
        assert!(outcome.stats.retrievals >= 3); // grandparent + parent goals
        assert!(outcome.stats.clauses_unified >= 4);
        assert!(outcome.stats.retrieval_elapsed.as_ns() > 0);
    }

    #[test]
    fn every_fixed_mode_gives_same_answers() {
        let (kb, sy) = family_kb();
        let mut local = sy.clone();
        let (q, names) = parse_term_with_vars("ancestor(tom, W)", &mut local).unwrap();
        let baseline = solve(&kb, &q, &names, &SolveOptions::default());
        for mode in SearchMode::ALL {
            let outcome = solve(
                &kb,
                &q,
                &names,
                &SolveOptions {
                    mode: ModeChoice::Fixed(mode),
                    ..SolveOptions::default()
                },
            );
            assert_eq!(
                outcome.solutions, baseline.solutions,
                "mode {mode} changed the answers"
            );
        }
    }

    #[test]
    fn compact_vars_renumbers_densely() {
        let mut sy = SymbolTable::new();
        let t = parse_term("f(X, Y, X)", &mut sy).unwrap();
        let shifted = shift_vars(&t, 1000);
        let (compact, reverse) = compact_vars(&shifted);
        assert_eq!(var_span(&compact), 2);
        assert_eq!(reverse, vec![VarId::new(1000), VarId::new(1001)]);
        // Sharing preserved.
        let vars = clare_term::collect_vars(&compact);
        assert_eq!(vars[0], vars[2]);
    }

    #[test]
    fn shared_variable_goal_end_to_end() {
        let mut b = KbBuilder::new();
        b.consult("m", "pair(a, b). pair(c, c). pair(d, e). pair(f, f).")
            .unwrap();
        let (q, names) = parse_term_with_vars("pair(S, S)", b.symbols_mut()).unwrap();
        let kb = b.finish(KbConfig::default());
        let outcome = solve(&kb, &q, &names, &SolveOptions::default());
        assert_eq!(outcome.solutions.len(), 2);
    }

    #[test]
    fn depth_cap_marks_outcome_and_bumps_counter() {
        // A deep-recursion KB: descent bottoms out only at the depth cap.
        let mut b = KbBuilder::new();
        b.consult("m", "down(X) :- down(X). down(X) :- up(X).")
            .unwrap();
        let (q, names) = parse_term_with_vars("down(a)", b.symbols_mut()).unwrap();
        let kb = b.finish(KbConfig::default());
        let before = clare_trace::metrics().solve_depth_cap_hits.get();
        let outcome = solve(
            &kb,
            &q,
            &names,
            &SolveOptions {
                max_depth: 16,
                ..SolveOptions::default()
            },
        );
        assert!(
            outcome.depth_capped(),
            "exhausting max_depth marks the outcome"
        );
        assert!(
            clare_trace::metrics().solve_depth_cap_hits.get() > before,
            "depth-cap exhaustion bumps solve.depth_cap_hits"
        );
        // A shallow query on the same KB does not cap and does not mark.
        let mut b = KbBuilder::new();
        b.consult("m", "flat(a).").unwrap();
        let (q2, names2) = parse_term_with_vars("flat(a)", b.symbols_mut()).unwrap();
        let kb2 = b.finish(KbConfig::default());
        let clean = solve(&kb2, &q2, &names2, &SolveOptions::default());
        assert!(!clean.depth_capped());
    }

    #[test]
    fn step_limited_solve_returns_typed_budget_error() {
        let mut b = KbBuilder::new();
        b.consult("m", "loop(X) :- loop(X).").unwrap();
        let (q, names) = parse_term_with_vars("loop(a)", b.symbols_mut()).unwrap();
        let kb = b.finish(KbConfig::default());
        let budget = crate::budget::QueryBudget {
            solve_step_limit: 8,
            ..crate::budget::QueryBudget::UNLIMITED
        };
        let cancel = CancelToken::new(&budget);
        let err = solve_goals_budgeted(&kb, &[q], &names, &SolveOptions::default(), &cancel)
            .expect_err("a runaway recursion must trip the step limit");
        assert_eq!(err.reason, Some(BudgetReason::SolveSteps));
        let stats = err
            .solve_stats
            .expect("partial stats travel with the error");
        assert!(
            stats.retrievals > 0,
            "work done before the trip is reported"
        );
    }

    #[test]
    fn unlimited_budgeted_solve_matches_plain_solve() {
        let (kb, sy) = family_kb();
        let mut local = sy.clone();
        let (q, names) = parse_term_with_vars("ancestor(tom, W)", &mut local).unwrap();
        let plain = solve_goals(
            &kb,
            std::slice::from_ref(&q),
            &names,
            &SolveOptions::default(),
        );
        let budgeted = solve_goals_budgeted(
            &kb,
            &[q],
            &names,
            &SolveOptions::default(),
            &CancelToken::unlimited(),
        )
        .expect("unlimited budget never trips");
        assert_eq!(plain.solutions, budgeted.solutions);
    }
}
