//! One module per reproduced table/figure. See the crate docs for the
//! experiment index.

pub mod bench_suite;
pub mod cache_wallclock;
pub mod cluster_wallclock;
pub mod false_drops;
pub mod fig1;
pub mod figures;
pub mod fs1;
pub mod fs1_wallclock;
pub mod fs2_wallclock;
pub mod levels;
pub mod lists;
pub mod metrics_dump;
pub mod modes;
pub mod net_wallclock;
pub mod result_memory;
pub mod table1;
pub mod table_a1;
pub mod throughput;
pub mod wal_wallclock;
pub mod warren_scale;
