//! The epoll serving core: event-driven connection handling for
//! thousands of concurrent clients on a handful of threads.
//!
//! ```text
//!             ┌────────────── reactor shard (one thread) ──────────────┐
//!   listener ─► nonblocking accept ─► Conn { FrameReader, Outbound }   │
//!             │        epoll_wait ─► readable: read → reassemble →     │
//!             │                       process_burst → bounded queue ───┼─► workers
//!             │                      writable: flush Outbound ◄────────┼── replies
//!             └────────────────────────▲───────────────────────────────┘
//!                                      │ eventfd kick (reply queued)
//! ```
//!
//! The threaded core (`server.rs`) spends one OS thread per connection
//! blocked in `read`; this module replaces those threads with a
//! level-triggered epoll loop over nonblocking sockets. Frames are
//! reassembled incrementally per connection (the [`FrameReader`] carries
//! partial frames across readiness events, under the same 16 MiB bound
//! and CRC trailer capability), decoded bursts flow into the *same*
//! bounded worker pool, and replies come back through per-connection
//! bounded [`Outbound`] queues: workers enqueue encoded frames and kick
//! the owning shard's eventfd; the shard writes as much as the kernel
//! accepts and parks the remainder against `EPOLLOUT`. A worker that
//! finds a queue at capacity blocks — bounded by the write timeout —
//! which is how a slow client exerts backpressure on the service instead
//! of ballooning memory.
//!
//! Invariants shared with the threaded core (property-tested against it):
//! the v2 wire protocol is byte-identical, pipelined requests complete
//! out of order, consecutive same-predicate retrieves coalesce into one
//! hardware batch pass, and shutdown drains queued jobs without dropping
//! queued replies. A half-closed peer (pipeline, then `shutdown(WR)`,
//! then read) is owed a reply for everything it decoded: the connection
//! tracks in-flight jobs via its [`ConnWriter`] and is released only when
//! the count hits zero *and* the outbound queue has flushed.

// Identical contract to server.rs: untrusted input must degrade, never
// abort. CI greps for this gate; do not remove it.
#![deny(clippy::unwrap_used)]

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::{
    decode_client_hello_caps, encode_server_hello, FrameReader, HelloStatus, ServerHello,
    CAP_FRAME_CRC, CLIENT_HELLO_LEN, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crate::server::{process_burst, ConnWriter, Shared};

/// Epoll token of the listening socket (shard 0 only).
const TOKEN_LISTENER: u64 = 0;
/// Epoll token of a shard's eventfd wakeup.
const TOKEN_WAKE: u64 = 1;
/// First token handed to a connection.
pub(crate) const TOKEN_FIRST_CONN: u64 = 2;

/// How many over-limit connections may be held awaiting their hello so
/// they can be told *why* they were refused (busy + retry hint). Accepts
/// beyond this courtesy budget are dropped outright — the fd cost of
/// politeness stays bounded no matter how hard the intake is hammered.
const REFUSED_BUDGET: usize = 32;

/// How long a refused connection may wait for its client hello before
/// the busy reply is abandoned and the socket released.
const REFUSED_DEADLINE: Duration = Duration::from_secs(2);

thread_local! {
    /// True inside a reactor shard thread. [`Outbound::enqueue`] consults
    /// this to skip backpressure parking: the reactor must never block on
    /// a queue only it can drain.
    static IN_REACTOR: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

// --- thin epoll / eventfd wrappers --------------------------------------

/// An owned `epoll` instance.
struct Epoll {
    fd: RawFd,
}

impl Epoll {
    fn new() -> std::io::Result<Epoll> {
        let fd = unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: libc::c_int, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        let mut ev = libc::epoll_event { events, u64: token };
        let rc = unsafe { libc::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        self.ctl(libc::EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        self.ctl(libc::EPOLL_CTL_MOD, fd, events, token)
    }

    fn del(&self, fd: RawFd) {
        let _ = self.ctl(libc::EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Waits up to `timeout` for readiness. `EINTR` surfaces as an empty
    /// event set; any other failure is returned so the shard can quiesce
    /// instead of busy-spinning on a broken epoll fd.
    fn wait(&self, events: &mut [libc::epoll_event], timeout: Duration) -> std::io::Result<usize> {
        let ms = libc::c_int::try_from(timeout.as_millis()).unwrap_or(libc::c_int::MAX);
        let n = unsafe {
            libc::epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as libc::c_int,
                ms,
            )
        };
        if n < 0 {
            let err = std::io::Error::last_os_error();
            return if err.kind() == std::io::ErrorKind::Interrupted {
                Ok(0)
            } else {
                Err(err)
            };
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            libc::close(self.fd);
        }
    }
}

/// An `eventfd`-backed wakeup: any thread bumps the counter to pull a
/// shard out of `epoll_wait`.
struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    fn new() -> std::io::Result<WakeFd> {
        let fd = unsafe { libc::eventfd(0, libc::EFD_CLOEXEC | libc::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(WakeFd { fd })
    }

    fn wake(&self) {
        let one: u64 = 1;
        unsafe {
            libc::write(self.fd, (&one as *const u64).cast(), 8);
        }
    }

    fn drain(&self) {
        let mut buf: u64 = 0;
        unsafe {
            libc::read(self.fd, (&mut buf as *mut u64).cast(), 8);
        }
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe {
            libc::close(self.fd);
        }
    }
}

// --- cross-thread mailboxes ----------------------------------------------

/// One shard's cross-thread mailbox: workers (and the shutdown path) talk
/// to a running shard exclusively through this — token kicks for fresh
/// outbound bytes, and connection handoffs from the accepting shard.
pub(crate) struct ShardQueue {
    wake: WakeFd,
    /// Tokens whose [`Outbound`] gained bytes since the last drain.
    kicked: Mutex<Vec<u64>>,
    /// Connections accepted by shard 0 but owned by this shard.
    handoff: Mutex<Vec<(u64, TcpStream, bool)>>,
}

impl ShardQueue {
    pub(crate) fn new() -> std::io::Result<Arc<ShardQueue>> {
        Ok(Arc::new(ShardQueue {
            wake: WakeFd::new()?,
            kicked: Mutex::new(Vec::new()),
            handoff: Mutex::new(Vec::new()),
        }))
    }

    /// Wakes the shard with no associated token (shutdown, handoff).
    pub(crate) fn kick(&self) {
        self.wake.wake();
    }

    fn kick_token(&self, token: u64) {
        self.kicked
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(token);
        self.wake.wake();
    }

    fn take_kicked(&self) -> Vec<u64> {
        std::mem::take(&mut *self.kicked.lock().unwrap_or_else(|e| e.into_inner()))
    }

    fn take_handoff(&self) -> Vec<(u64, TcpStream, bool)> {
        std::mem::take(&mut *self.handoff.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Outcome of one flush attempt against a connection's socket.
enum FlushOutcome {
    /// Everything queued left; no `EPOLLOUT` interest needed.
    Drained,
    /// The kernel buffer filled (or a torn-write fault cut the round
    /// short); the remainder parks against `EPOLLOUT`.
    Parked,
    /// The socket failed or the queue was condemned; close the
    /// connection.
    Dead,
}

/// A connection's bounded outbound reply queue, shared between the
/// workers that serve its requests and the shard that owns its socket.
///
/// Workers [`enqueue`](Outbound::enqueue) encoded frames; when the queue
/// is at capacity they park on the condvar — bounded by the stall
/// timeout — until the shard's flushing makes room (write-side
/// backpressure). The shard drains the queue from its event loop,
/// resuming partial writes where they stopped.
pub(crate) struct Outbound {
    shard: Arc<ShardQueue>,
    token: u64,
    /// Queue capacity in bytes; enqueues past it park the caller.
    cap: usize,
    /// How long an enqueue may stay parked before the connection is
    /// condemned as a non-consuming peer.
    stall_timeout: Duration,
    inner: Mutex<OutboundInner>,
    room: Condvar,
}

struct OutboundInner {
    /// Encoded frames awaiting the wire, oldest first.
    segments: std::collections::VecDeque<Vec<u8>>,
    /// Bytes of the front segment already written.
    front_written: usize,
    /// Total unwritten bytes across all segments.
    queued: usize,
    /// The stream is condemned: flushes stop and the conn closes.
    dead: bool,
    /// The reactor dropped the connection; enqueues are no-ops.
    closed: bool,
    /// Flush rounds performed (fault-injection context).
    flush_rounds: u64,
}

impl Outbound {
    fn new(shard: Arc<ShardQueue>, token: u64, cap: usize, stall_timeout: Duration) -> Arc<Self> {
        Arc::new(Outbound {
            shard,
            token,
            cap: cap.max(1),
            stall_timeout,
            inner: Mutex::new(OutboundInner {
                segments: std::collections::VecDeque::new(),
                front_written: 0,
                queued: 0,
                dead: false,
                closed: false,
                flush_rounds: 0,
            }),
            room: Condvar::new(),
        })
    }

    /// Queues encoded bytes for the wire and kicks the owning shard.
    /// Blocks (bounded by the stall timeout) while the queue is at
    /// capacity — unless called from the shard thread itself, which must
    /// never park on a queue only it can drain. Returns `false` when the
    /// connection is gone or was condemned while waiting.
    pub(crate) fn enqueue(&self, bytes: Vec<u8>) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.dead || inner.closed {
            return false;
        }
        if !IN_REACTOR.with(|f| f.get()) {
            let deadline = Instant::now() + self.stall_timeout;
            while inner.queued >= self.cap {
                clare_trace::metrics().net_reactor_backpressure_stalls.inc();
                let now = Instant::now();
                if now >= deadline {
                    // A peer that never drains its replies is condemned
                    // rather than allowed to wedge the worker pool.
                    inner.dead = true;
                    drop(inner);
                    self.shard.kick_token(self.token);
                    return false;
                }
                let (guard, _) = self
                    .room
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
                if inner.dead || inner.closed {
                    return false;
                }
            }
        }
        clare_trace::metrics()
            .net_reactor_outbound_bytes
            .add(bytes.len() as i64);
        inner.queued += bytes.len();
        inner.segments.push_back(bytes);
        drop(inner);
        self.shard.kick_token(self.token);
        true
    }

    /// Condemns the stream: pending bytes are flushed best-effort once,
    /// then the connection closes.
    pub(crate) fn mark_dead(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.dead = true;
        drop(inner);
        self.room.notify_all();
        self.shard.kick_token(self.token);
    }

    /// Unwritten bytes currently queued.
    fn pending(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).queued
    }

    /// Wakes the owning shard to re-examine this connection — used by the
    /// last in-flight job's completion so a half-closed connection parked
    /// on outstanding replies proceeds to its flush-and-close.
    pub(crate) fn kick(&self) {
        self.shard.kick_token(self.token);
    }

    /// Reactor-side: the connection is gone. Unparks waiting workers and
    /// returns the bytes discarded (for gauge accounting).
    fn close(&self) -> usize {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        inner.dead = true;
        let dropped = inner.queued;
        inner.segments.clear();
        inner.queued = 0;
        inner.front_written = 0;
        drop(inner);
        self.room.notify_all();
        dropped
    }

    /// Reactor-side: writes queued bytes to `stream` until the queue
    /// drains or the kernel pushes back. This is the
    /// [`clare_fault::FaultSite::NetReactorWrite`] injection point: a
    /// torn write delivers only a prefix this round (possibly splitting a
    /// frame's length prefix across `EPOLLOUT` wakeups) — transparent to
    /// the peer, which sees the same byte stream reassembled.
    fn flush(&self, stream: &mut TcpStream) -> FlushOutcome {
        let m = clare_trace::metrics();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let was_dead = inner.dead;
        loop {
            if inner.segments.is_empty() {
                drop(inner);
                self.room.notify_all();
                return if was_dead {
                    FlushOutcome::Dead
                } else {
                    FlushOutcome::Drained
                };
            }
            let front_len;
            let slice_len;
            let mut cap;
            let write_result = {
                let front = &inner.segments[0];
                front_len = front.len();
                let slice = &front[inner.front_written..];
                slice_len = slice.len();
                cap = slice_len;
                if clare_fault::active() {
                    let ctx = self.token.rotate_left(32) ^ inner.flush_rounds;
                    if let clare_fault::FaultAction::Truncate { keep } =
                        clare_fault::decide(clare_fault::FaultSite::NetReactorWrite, ctx)
                    {
                        cap = ((keep as usize) % cap.max(1)).max(1);
                    }
                }
                stream.write(&slice[..cap])
            };
            inner.flush_rounds += 1;
            match write_result {
                Ok(0) => {
                    inner.dead = true;
                    drop(inner);
                    self.room.notify_all();
                    return FlushOutcome::Dead;
                }
                Ok(n) => {
                    m.net_reactor_outbound_bytes.add(-(n as i64));
                    inner.queued -= n;
                    inner.front_written += n;
                    if inner.front_written == front_len {
                        inner.segments.pop_front();
                        inner.front_written = 0;
                    } else if cap < slice_len {
                        // An injected torn write: yield the round so the
                        // remainder demonstrably crosses a readiness
                        // boundary.
                        m.net_reactor_partial_writes.inc();
                        drop(inner);
                        self.room.notify_all();
                        return FlushOutcome::Parked;
                    }
                    if inner.queued < self.cap / 2 {
                        self.room.notify_all();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    m.net_reactor_partial_writes.inc();
                    drop(inner);
                    self.room.notify_all();
                    return FlushOutcome::Parked;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    inner.dead = true;
                    drop(inner);
                    self.room.notify_all();
                    return FlushOutcome::Dead;
                }
            }
        }
    }
}

// --- per-connection state ------------------------------------------------

enum ConnState {
    /// Awaiting the fixed-size client hello. `refuse` marks a connection
    /// over the admission limit: it still gets the busy hello (so the
    /// client learns *why*) before closing.
    Hello { got: usize, refuse: bool },
    /// Handshake complete; frames flow.
    Active,
    /// Handshake refused (busy or version mismatch): the reply hello is
    /// queued exactly once, all further input is discarded, and the
    /// connection closes when the flush completes. Terminal — without
    /// this state, extra client bytes arriving after the refusal would
    /// re-enter the hello completion branch and duplicate the reply.
    Rejected,
}

struct Conn {
    stream: TcpStream,
    token: u64,
    state: ConnState,
    hello: [u8; CLIENT_HELLO_LEN],
    fr: FrameReader,
    outbound: Arc<Outbound>,
    /// Created at handshake completion and shared with every job decoded
    /// from this connection.
    writer: Option<Arc<ConnWriter>>,
    last_activity: Instant,
    /// Event mask currently registered with epoll for this socket.
    interest: u32,
    /// No further input is processed; close once the in-flight jobs
    /// finish and the outbound drains.
    closing: bool,
    /// Counted against the connection limit (refused conns are not).
    admitted: bool,
    /// Read rounds performed (fault-injection context).
    read_rounds: u64,
}

/// No decoded jobs from this connection are still queued or executing —
/// every reply it is owed has at least been handed to its outbound queue.
fn conn_idle(conn: &Conn) -> bool {
    conn.writer.as_ref().is_none_or(|w| w.idle())
}

/// What a readiness round decided about a connection's fate.
enum ConnVerdict {
    Keep,
    Close,
}

// --- the shard loop ------------------------------------------------------

/// Runs one reactor shard until shutdown completes. Shard 0 owns the
/// listener; connections are distributed across shards by token.
pub(crate) fn run_shard(
    shard_idx: usize,
    listener: Option<TcpListener>,
    shards: Vec<Arc<ShardQueue>>,
    shared: Arc<Shared>,
) {
    IN_REACTOR.with(|f| f.set(true));
    let me = Arc::clone(&shards[shard_idx]);
    let Ok(epoll) = Epoll::new() else {
        // Without an epoll instance this shard cannot serve; quiesce so
        // shutdown never hangs waiting for it.
        shared.quiesced_shards.fetch_add(1, Ordering::SeqCst);
        return;
    };
    if epoll.add(me.wake.fd, libc::EPOLLIN, TOKEN_WAKE).is_err() {
        shared.quiesced_shards.fetch_add(1, Ordering::SeqCst);
        return;
    }
    let mut listener = listener;
    if let Some(l) = &listener {
        if epoll
            .add(l.as_raw_fd(), libc::EPOLLIN, TOKEN_LISTENER)
            .is_err()
        {
            shared.quiesced_shards.fetch_add(1, Ordering::SeqCst);
            return;
        }
    }

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut events = vec![libc::epoll_event { events: 0, u64: 0 }; 256];
    let mut draining = false;
    let mut last_idle_scan = Instant::now();
    let m = clare_trace::metrics();

    loop {
        if shared.shutdown.load(Ordering::SeqCst) && !draining {
            // Stop the intake: close the listener and stop decoding
            // input, but keep the loop alive to flush replies the
            // workers are still producing.
            draining = true;
            if let Some(l) = listener.take() {
                epoll.del(l.as_raw_fd());
            }
            shared.quiesced_shards.fetch_add(1, Ordering::SeqCst);
        }
        if shared.reactor_exit.load(Ordering::SeqCst) {
            break;
        }

        let n = match epoll.wait(&mut events, shared.cfg.poll_interval) {
            Ok(n) => n,
            Err(_) => {
                // A fatal epoll failure (EBADF and friends) cannot be
                // served around: acknowledge quiesce so shutdown never
                // hangs on this shard, then fall through to the final
                // drain (best-effort flush, release every fd) instead of
                // spinning on a broken fd.
                if !draining {
                    shared.quiesced_shards.fetch_add(1, Ordering::SeqCst);
                }
                break;
            }
        };
        if n > 0 {
            m.net_reactor_wakeups.inc();
            m.net_reactor_events.add(n as u64);
        }
        for ev in events.iter().take(n) {
            let token = ev.u64;
            let bits = ev.events;
            match token {
                TOKEN_LISTENER => {
                    if !draining {
                        accept_ready(
                            &epoll,
                            listener.as_ref(),
                            &shards,
                            shard_idx,
                            &shared,
                            &mut conns,
                        );
                    }
                }
                TOKEN_WAKE => {
                    me.wake.drain();
                    for (token, stream, admitted) in me.take_handoff() {
                        register_conn(&epoll, &mut conns, &shared, &me, token, stream, admitted);
                    }
                    for token in me.take_kicked() {
                        if let Some(conn) = conns.get_mut(&token) {
                            if matches!(service_write(&epoll, conn), ConnVerdict::Close) {
                                close_conn(&epoll, &mut conns, &shared, token);
                            }
                        }
                    }
                }
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    let mut verdict = ConnVerdict::Keep;
                    if bits & (libc::EPOLLERR | libc::EPOLLHUP) != 0 {
                        verdict = ConnVerdict::Close;
                    } else {
                        if bits & (libc::EPOLLIN | libc::EPOLLRDHUP) != 0
                            && !draining
                            && !conn.closing
                        {
                            verdict = service_read(&epoll, conn, &shared);
                        }
                        if matches!(verdict, ConnVerdict::Keep) && bits & libc::EPOLLOUT != 0 {
                            verdict = service_write(&epoll, conn);
                        }
                    }
                    if matches!(verdict, ConnVerdict::Close) {
                        close_conn(&epoll, &mut conns, &shared, token);
                    }
                }
            }
        }

        // Deadline scan: reap peers that stopped making progress so they
        // stop pinning connection slots and fds. One pass per poll tick
        // is O(connections) and runs a few dozen times a second — no
        // timer wheel needed at the scale one shard carries.
        // `last_activity` advances on *either* direction of progress
        // (bytes read, or flush draining queued replies), so a healthy
        // slow reader working through a large backlog is never reaped
        // mid-stream.
        if !draining && last_idle_scan.elapsed() >= shared.cfg.poll_interval {
            last_idle_scan = Instant::now();
            let reap: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| {
                    let stalled_for = c.last_activity.elapsed();
                    if !c.admitted {
                        // Refused conns get a short dedicated deadline to
                        // collect their busy hello, not the idle timeout.
                        stalled_for >= REFUSED_DEADLINE
                    } else if c.closing {
                        // Flush-and-close is bounded: once nothing is in
                        // flight and the flush makes no progress for a
                        // write timeout, the peer has stopped consuming.
                        conn_idle(c) && stalled_for >= shared.cfg.write_timeout
                    } else {
                        shared
                            .cfg
                            .idle_timeout
                            .is_some_and(|limit| stalled_for >= limit)
                    }
                })
                .map(|(t, _)| *t)
                .collect();
            for token in reap {
                m.net_idle_reaps.inc();
                close_conn(&epoll, &mut conns, &shared, token);
            }
        }
    }

    // Final drain: the workers have exited (their last replies are in
    // the outbound queues); flush what the peers will accept, bounded by
    // the write timeout, then release everything. Dropping `epoll` (and
    // the per-conn streams) closes every fd this shard owns.
    let deadline = Instant::now() + shared.cfg.write_timeout;
    while conns.values().any(|c| c.outbound.pending() > 0) && Instant::now() < deadline {
        let stalled: Vec<u64> = conns
            .iter()
            .filter(|(_, c)| c.outbound.pending() > 0)
            .map(|(t, _)| *t)
            .collect();
        let mut progressed = false;
        for token in stalled {
            if let Some(conn) = conns.get_mut(&token) {
                let before = conn.outbound.pending();
                if matches!(conn.outbound.flush(&mut conn.stream), FlushOutcome::Dead) {
                    close_conn(&epoll, &mut conns, &shared, token);
                    progressed = true;
                } else if let Some(conn) = conns.get(&token) {
                    progressed |= conn.outbound.pending() < before;
                }
            }
        }
        if !progressed {
            // Nothing moved this round: wait for kernel buffers to open
            // up rather than spinning. A broken epoll fd degrades to a
            // plain sleep so the bounded drain still terminates.
            if epoll.wait(&mut events, Duration::from_millis(20)).is_err() {
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    let tokens: Vec<u64> = conns.keys().copied().collect();
    for token in tokens {
        close_conn(&epoll, &mut conns, &shared, token);
    }
}

/// Accepts every pending connection on the listener, distributing them
/// across shards round-robin by token.
fn accept_ready(
    epoll: &Epoll,
    listener: Option<&TcpListener>,
    shards: &[Arc<ShardQueue>],
    shard_idx: usize,
    shared: &Arc<Shared>,
    conns: &mut HashMap<u64, Conn>,
) {
    let Some(listener) = listener else { return };
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                stream.set_nodelay(true).ok();
                let active = shared.connections.load(Ordering::Relaxed);
                let admitted = active < shared.cfg.max_connections;
                if admitted {
                    shared.connections.fetch_add(1, Ordering::Relaxed);
                    clare_trace::metrics().net_connections.add(1);
                } else {
                    shared.crs.note_rejected();
                    clare_trace::metrics().net_busy_rejections.inc();
                    if shared.refused.load(Ordering::Relaxed) >= REFUSED_BUDGET {
                        // The courtesy budget is spent: drop the accept
                        // without the busy hello rather than let refused
                        // fds grow without bound.
                        continue;
                    }
                    shared.refused.fetch_add(1, Ordering::Relaxed);
                }
                let token = shared.next_token.fetch_add(1, Ordering::Relaxed);
                let target = (token % shards.len() as u64) as usize;
                if target == shard_idx {
                    register_conn(
                        epoll,
                        conns,
                        shared,
                        &shards[shard_idx],
                        token,
                        stream,
                        admitted,
                    );
                } else {
                    shards[target]
                        .handoff
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((token, stream, admitted));
                    shards[target].kick();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn register_conn(
    epoll: &Epoll,
    conns: &mut HashMap<u64, Conn>,
    shared: &Arc<Shared>,
    shard: &Arc<ShardQueue>,
    token: u64,
    stream: TcpStream,
    admitted: bool,
) {
    let outbound = Outbound::new(
        Arc::clone(shard),
        token,
        shared.cfg.outbound_queue_bytes,
        shared.cfg.write_timeout,
    );
    let mut fr = FrameReader::new(shared.cfg.max_frame_len);
    fr.set_checksums(false);
    let conn = Conn {
        stream,
        token,
        state: ConnState::Hello {
            got: 0,
            refuse: !admitted,
        },
        hello: [0u8; CLIENT_HELLO_LEN],
        fr,
        outbound,
        writer: None,
        last_activity: Instant::now(),
        interest: libc::EPOLLIN | libc::EPOLLRDHUP,
        closing: false,
        admitted,
        read_rounds: 0,
    };
    if epoll
        .add(
            conn.stream.as_raw_fd(),
            libc::EPOLLIN | libc::EPOLLRDHUP,
            token,
        )
        .is_err()
    {
        release_accounting(shared, &conn);
        return;
    }
    clare_trace::metrics().net_reactor_connections.add(1);
    conns.insert(token, conn);
}

fn release_accounting(shared: &Arc<Shared>, conn: &Conn) {
    if conn.admitted {
        shared.connections.fetch_sub(1, Ordering::Relaxed);
        clare_trace::metrics().net_connections.add(-1);
    } else {
        shared.refused.fetch_sub(1, Ordering::Relaxed);
    }
}

fn close_conn(epoll: &Epoll, conns: &mut HashMap<u64, Conn>, shared: &Arc<Shared>, token: u64) {
    let Some(conn) = conns.remove(&token) else {
        return;
    };
    epoll.del(conn.stream.as_raw_fd());
    let dropped = conn.outbound.close();
    let m = clare_trace::metrics();
    if dropped > 0 {
        m.net_reactor_outbound_bytes.add(-(dropped as i64));
    }
    m.net_reactor_connections.add(-1);
    if let Some(writer) = &conn.writer {
        writer.dead.store(true, Ordering::Relaxed);
    }
    release_accounting(shared, &conn);
    drop(conn); // closes the socket
}

/// Pulls every byte the kernel has for `conn`, advancing the handshake
/// and reassembling frames. This is the
/// [`clare_fault::FaultSite::NetReactorRead`] injection point: a short
/// read caps how much leaves the kernel this round (the frame must be
/// reassembled across rounds), a spurious wakeup delivers nothing (the
/// level-triggered loop simply re-reports readiness).
fn service_read(epoll: &Epoll, conn: &mut Conn, shared: &Arc<Shared>) -> ConnVerdict {
    let mut tmp = [0u8; 16 * 1024];
    let mut saw_eof = false;
    loop {
        let mut cap = tmp.len();
        if clare_fault::active() {
            let ctx = conn.token.rotate_left(32) ^ conn.read_rounds;
            match clare_fault::decide(clare_fault::FaultSite::NetReactorRead, ctx) {
                clare_fault::FaultAction::Truncate { keep } => {
                    cap = ((keep as usize) % tmp.len()).max(1);
                }
                clare_fault::FaultAction::Drop => {
                    // EAGAIN storm: pretend the readiness was spurious.
                    conn.read_rounds += 1;
                    break;
                }
                _ => {}
            }
        }
        conn.read_rounds += 1;
        match conn.stream.read(&mut tmp[..cap]) {
            Ok(0) => {
                saw_eof = true;
                break;
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                if let ConnVerdict::Close = ingest(conn, &tmp[..n], shared) {
                    return ConnVerdict::Close;
                }
                if conn.closing {
                    // The handshake was refused mid-round: stop pulling
                    // input; what remains buffered is discarded.
                    break;
                }
                if n < cap {
                    // The kernel gave less than asked: nothing more is
                    // buffered, and level-triggered epoll re-reports if
                    // more arrives before the next wait.
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ConnVerdict::Close,
        }
    }

    // Decode whatever completed this round in one burst — everything
    // already buffered coalesces, exactly like the threaded reader.
    if let ConnVerdict::Close = drain_frames(conn, shared) {
        return ConnVerdict::Close;
    }

    if saw_eof {
        // Half-close: the peer is done sending but may still be reading.
        // Serve what was decoded — including the burst just handed to the
        // workers, whose replies do not exist yet — then flush-and-close.
        conn.closing = true;
    }
    if conn.closing {
        if conn_idle(conn) && conn.outbound.pending() == 0 {
            return ConnVerdict::Close;
        }
        // Drop read interest (a half-closed peer would otherwise report
        // EPOLLRDHUP on every wait, spinning the shard until the last
        // reply lands) and wait on worker completions + flushes.
        sync_interest(epoll, conn, conn.outbound.pending() > 0);
    }
    ConnVerdict::Keep
}

/// Feeds raw bytes through the handshake state machine into the frame
/// reassembler.
fn ingest(conn: &mut Conn, mut bytes: &[u8], shared: &Arc<Shared>) -> ConnVerdict {
    if matches!(conn.state, ConnState::Rejected) {
        // Terminal: the refusal hello is already queued; anything else
        // the peer sends is discarded.
        return ConnVerdict::Keep;
    }
    if let ConnState::Hello { got, refuse } = &mut conn.state {
        let need = CLIENT_HELLO_LEN - *got;
        let take = need.min(bytes.len());
        conn.hello[*got..*got + take].copy_from_slice(&bytes[..take]);
        *got += take;
        bytes = &bytes[take..];
        if *got < CLIENT_HELLO_LEN {
            return ConnVerdict::Keep;
        }
        let refuse = *refuse;
        if refuse {
            let hello = ServerHello {
                version: PROTOCOL_VERSION,
                status: HelloStatus::Busy,
                retry_after_ms: shared.cfg.retry_after_ms,
                caps: 0,
                fingerprint: shared.crs.snapshot().content_fingerprint(),
            };
            conn.outbound.enqueue(encode_server_hello(&hello).to_vec());
            conn.state = ConnState::Rejected;
            conn.closing = true;
            return ConnVerdict::Keep;
        }
        // Same version-range admission as the threaded listener: any
        // client in [MIN_PROTOCOL_VERSION, PROTOCOL_VERSION] is accepted
        // and the hello echoes *its* version; capabilities that did not
        // exist at that version are masked off.
        let (status, requested_caps, version) = match decode_client_hello_caps(&conn.hello) {
            Ok((v @ MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION, caps)) => (HelloStatus::Ok, caps, v),
            Ok(_) | Err(_) => (HelloStatus::VersionMismatch, 0, PROTOCOL_VERSION),
        };
        let caps = requested_caps & crate::server::allowed_caps(&shared.cfg, version);
        let hello = ServerHello {
            version,
            status,
            retry_after_ms: 0,
            caps,
            fingerprint: shared.crs.snapshot().content_fingerprint(),
        };
        conn.outbound.enqueue(encode_server_hello(&hello).to_vec());
        if status != HelloStatus::Ok {
            conn.state = ConnState::Rejected;
            conn.closing = true;
            return ConnVerdict::Keep;
        }
        let checksums = caps & CAP_FRAME_CRC != 0;
        conn.fr.set_checksums(checksums);
        conn.writer = Some(Arc::new(ConnWriter::queued(
            Arc::clone(&conn.outbound),
            checksums,
        )));
        conn.state = ConnState::Active;
    }
    if !bytes.is_empty() {
        conn.fr.feed(bytes);
    }
    ConnVerdict::Keep
}

/// Pops every complete frame and hands the burst to the shared
/// decode/coalesce/enqueue path.
fn drain_frames(conn: &mut Conn, shared: &Arc<Shared>) -> ConnVerdict {
    if !matches!(conn.state, ConnState::Active) {
        return ConnVerdict::Keep;
    }
    let Some(writer) = conn.writer.as_ref().map(Arc::clone) else {
        return ConnVerdict::Keep;
    };
    let mut burst = Vec::new();
    let mut fatal = false;
    loop {
        match conn.fr.try_frame() {
            Ok(Some(frame)) => burst.push(frame),
            Ok(None) => break,
            Err(e) => {
                // The stream cannot be resynchronised after a length or
                // checksum violation: report once, serve what decoded,
                // then flush-and-close.
                writer.send_error(0, crate::protocol::ErrorCode::Malformed, 0, e.to_string());
                fatal = true;
                break;
            }
        }
    }
    if !burst.is_empty() {
        process_burst(shared, &writer, burst);
    }
    if fatal {
        conn.closing = true;
    }
    ConnVerdict::Keep
}

/// Flushes a connection's outbound queue, parking against `EPOLLOUT`
/// when the kernel pushes back. Flush progress counts as activity, so a
/// healthy slow reader draining a large reply backlog is never mistaken
/// for an idle peer by the deadline scan.
fn service_write(epoll: &Epoll, conn: &mut Conn) -> ConnVerdict {
    let before = conn.outbound.pending();
    let outcome = conn.outbound.flush(&mut conn.stream);
    if conn.outbound.pending() < before {
        conn.last_activity = Instant::now();
    }
    match outcome {
        FlushOutcome::Drained => {
            if conn.closing && conn_idle(conn) {
                return ConnVerdict::Close;
            }
            sync_interest(epoll, conn, false);
            ConnVerdict::Keep
        }
        FlushOutcome::Parked => {
            sync_interest(epoll, conn, true);
            ConnVerdict::Keep
        }
        FlushOutcome::Dead => ConnVerdict::Close,
    }
}

/// Re-registers the socket's epoll interest to match what the connection
/// can still make progress on: read bits while input is processed (never
/// once closing), `EPOLLOUT` while a flush is parked.
fn sync_interest(epoll: &Epoll, conn: &mut Conn, want_write: bool) {
    let mut mask = 0;
    if !conn.closing {
        mask |= libc::EPOLLIN | libc::EPOLLRDHUP;
    }
    if want_write {
        mask |= libc::EPOLLOUT;
    }
    if mask != conn.interest {
        conn.interest = mask;
        let _ = epoll.modify(conn.stream.as_raw_fd(), mask, conn.token);
    }
}
