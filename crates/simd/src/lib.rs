//! Runtime-dispatched SIMD kernels for the two retrieval hot loops.
//!
//! The FS1 filter tests `required & !entry == 0` against every index entry
//! of a shard; the FS2 fast path compares canonical 32-bit word streams for
//! their first mismatch. Both are pure data-parallel inner loops, so this
//! crate vectorizes them with `std::arch` intrinsics (AVX2 on x86-64, NEON
//! on aarch64) behind a [`SimdLevel`] value chosen once per process by
//! runtime feature detection. The scalar path is always compiled and is the
//! semantic reference: every vector path must produce bit-identical output,
//! including on non-lane-multiple tails, and the property tests at the
//! bottom of this file enforce that on random inputs.
//!
//! Set `CLARE_SIMD=off` (or `scalar`) to force the scalar path; `avx2` /
//! `neon` request a specific level and silently fall back to scalar when
//! the host cannot deliver it.

use std::fmt;
use std::sync::OnceLock;

/// The instruction-set tier the kernels run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// Portable scalar loops — the reference semantics.
    Scalar,
    /// 128-bit NEON (aarch64).
    Neon,
    /// 256-bit AVX2 (x86-64).
    Avx2,
}

impl SimdLevel {
    /// Detects the best level the host supports, ignoring the environment
    /// override.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            // NEON is architecturally mandatory on aarch64.
            return SimdLevel::Neon;
        }
        #[allow(unreachable_code)]
        SimdLevel::Scalar
    }

    /// Numeric encoding for the `simd.level` metrics gauge:
    /// 0 = scalar, 1 = NEON, 2 = AVX2.
    pub fn as_gauge(self) -> u64 {
        match self {
            SimdLevel::Scalar => 0,
            SimdLevel::Neon => 1,
            SimdLevel::Avx2 => 2,
        }
    }

    /// Parses a `CLARE_SIMD` override value. `off`/`scalar` force scalar;
    /// `avx2`/`neon` request that level (granted only if the host has it);
    /// anything else means "auto".
    fn from_env(value: &str, detected: SimdLevel) -> SimdLevel {
        match value.to_ascii_lowercase().as_str() {
            "off" | "scalar" | "0" | "none" => SimdLevel::Scalar,
            "avx2" if detected == SimdLevel::Avx2 => SimdLevel::Avx2,
            "neon" if detected == SimdLevel::Neon => SimdLevel::Neon,
            "avx2" | "neon" => SimdLevel::Scalar,
            _ => detected,
        }
    }
}

impl fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimdLevel::Scalar => f.write_str("scalar"),
            SimdLevel::Neon => f.write_str("neon"),
            SimdLevel::Avx2 => f.write_str("avx2"),
        }
    }
}

/// The level the process runs at: runtime detection combined with the
/// `CLARE_SIMD` environment override, computed once and cached.
pub fn level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let detected = SimdLevel::detect();
        match std::env::var("CLARE_SIMD") {
            Ok(v) => SimdLevel::from_env(&v, detected),
            Err(_) => detected,
        }
    })
}

// ---------------------------------------------------------------------------
// FS1 kernel: subset test over a run of packed index entries
// ---------------------------------------------------------------------------

/// Appends to `out` the index (counting from 0) of every entry in `limbs`
/// whose codeword is a superset of `required`, i.e. where
/// `required[k] & !entry[k] == 0` for every limb `k`.
///
/// `limbs` holds `limbs.len() / required.len()` consecutive entries of
/// `required.len()` limbs each (the packed columnar layout); its length
/// must be a multiple of `required.len()`. The same `required` vector
/// applies to every entry — callers batch entries into runs that share a
/// requirement before invoking the kernel.
///
/// Every level produces identical output; `level` only selects how the
/// loop is executed.
///
/// # Panics
///
/// Panics if `required` is empty or `limbs.len()` is not a multiple of
/// `required.len()`.
pub fn fs1_subset_hits(level: SimdLevel, required: &[u64], limbs: &[u64], out: &mut Vec<u32>) {
    let stride = required.len();
    assert!(stride > 0, "requirement must have at least one limb");
    assert_eq!(limbs.len() % stride, 0, "limbs must be whole entries");
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => match stride {
            // SAFETY: `Avx2` is only produced by `detect()` when the host
            // reports the feature (the env override cannot grant it).
            1 => unsafe { fs1_subset_hits_avx2_s1(required[0], limbs, out) },
            2 => unsafe { fs1_subset_hits_avx2_s2(required, limbs, out) },
            _ => fs1_subset_hits_scalar(required, limbs, out),
        },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => match stride {
            1 => unsafe { fs1_subset_hits_neon_s1(required[0], limbs, out) },
            _ => fs1_subset_hits_scalar(required, limbs, out),
        },
        _ => fs1_subset_hits_scalar(required, limbs, out),
    }
}

/// The scalar reference loop for [`fs1_subset_hits`].
fn fs1_subset_hits_scalar(required: &[u64], limbs: &[u64], out: &mut Vec<u32>) {
    let stride = required.len();
    if stride == 1 {
        let required = required[0];
        for (i, &entry) in limbs.iter().enumerate() {
            if required & !entry == 0 {
                out.push(i as u32);
            }
        }
        return;
    }
    for (i, entry) in limbs.chunks_exact(stride).enumerate() {
        if required.iter().zip(entry).all(|(r, l)| r & !l == 0) {
            out.push(i as u32);
        }
    }
}

/// AVX2, one limb per entry: four entries per 256-bit vector.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fs1_subset_hits_avx2_s1(required: u64, limbs: &[u64], out: &mut Vec<u32>) {
    use std::arch::x86_64::*;
    let req = _mm256_set1_epi64x(required as i64);
    let zero = _mm256_setzero_si256();
    let chunks = limbs.len() / 4;
    for c in 0..chunks {
        // SAFETY: `c * 4 + 3 < limbs.len()`; unaligned load is permitted.
        let entries = _mm256_loadu_si256(limbs.as_ptr().add(c * 4) as *const __m256i);
        // andnot(entries, req) = !entries & req — the leftover required bits.
        let leftover = _mm256_andnot_si256(entries, req);
        let hit = _mm256_cmpeq_epi64(leftover, zero);
        let mut mask = _mm256_movemask_pd(_mm256_castsi256_pd(hit)) as u32;
        while mask != 0 {
            let lane = mask.trailing_zeros();
            out.push((c * 4) as u32 + lane);
            mask &= mask - 1;
        }
    }
    for (i, &limb) in limbs.iter().enumerate().skip(chunks * 4) {
        if required & !limb == 0 {
            out.push(i as u32);
        }
    }
}

/// AVX2, two limbs per entry: two entries per 256-bit vector.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fs1_subset_hits_avx2_s2(required: &[u64], limbs: &[u64], out: &mut Vec<u32>) {
    use std::arch::x86_64::*;
    let req = _mm256_set_epi64x(
        required[1] as i64,
        required[0] as i64,
        required[1] as i64,
        required[0] as i64,
    );
    let zero = _mm256_setzero_si256();
    let entries_total = limbs.len() / 2;
    let pairs = entries_total / 2;
    for p in 0..pairs {
        // SAFETY: `p * 4 + 3 < limbs.len()`.
        let entries = _mm256_loadu_si256(limbs.as_ptr().add(p * 4) as *const __m256i);
        let leftover = _mm256_andnot_si256(entries, req);
        let hit = _mm256_cmpeq_epi64(leftover, zero);
        let mask = _mm256_movemask_pd(_mm256_castsi256_pd(hit)) as u32;
        // Both limb lanes of an entry must be zero-leftover.
        if mask & 0b0011 == 0b0011 {
            out.push((p * 2) as u32);
        }
        if mask & 0b1100 == 0b1100 {
            out.push((p * 2) as u32 + 1);
        }
    }
    for e in pairs * 2..entries_total {
        let base = e * 2;
        if required[0] & !limbs[base] == 0 && required[1] & !limbs[base + 1] == 0 {
            out.push(e as u32);
        }
    }
}

/// NEON, one limb per entry: two entries per 128-bit vector.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn fs1_subset_hits_neon_s1(required: u64, limbs: &[u64], out: &mut Vec<u32>) {
    use std::arch::aarch64::*;
    let req = vdupq_n_u64(required);
    let chunks = limbs.len() / 2;
    for c in 0..chunks {
        // SAFETY: `c * 2 + 1 < limbs.len()`.
        let entries = vld1q_u64(limbs.as_ptr().add(c * 2));
        let leftover = vbicq_u64(req, entries); // req & !entries
        if vgetq_lane_u64(leftover, 0) == 0 {
            out.push((c * 2) as u32);
        }
        if vgetq_lane_u64(leftover, 1) == 0 {
            out.push((c * 2) as u32 + 1);
        }
    }
    for i in chunks * 2..limbs.len() {
        if required & !limbs[i] == 0 {
            out.push(i as u32);
        }
    }
}

// ---------------------------------------------------------------------------
// FS2 kernel: first mismatch between two 32-bit word streams
// ---------------------------------------------------------------------------

/// Returns the index of the first position where `a` and `b` differ,
/// comparing up to the shorter length, or `None` if the shared prefix is
/// identical. Every level produces identical output.
pub fn first_mismatch_u32(level: SimdLevel, a: &[u32], b: &[u32]) -> Option<usize> {
    let n = a.len().min(b.len());
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` is only produced when the host reports the feature.
        SimdLevel::Avx2 => unsafe { first_mismatch_u32_avx2(&a[..n], &b[..n]) },
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => unsafe { first_mismatch_u32_neon(&a[..n], &b[..n]) },
        _ => first_mismatch_u32_scalar(&a[..n], &b[..n]),
    }
}

/// The scalar reference loop for [`first_mismatch_u32`].
fn first_mismatch_u32_scalar(a: &[u32], b: &[u32]) -> Option<usize> {
    a.iter().zip(b).position(|(x, y)| x != y)
}

/// AVX2: eight 32-bit words per vector.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn first_mismatch_u32_avx2(a: &[u32], b: &[u32]) -> Option<usize> {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 8;
    for c in 0..chunks {
        // SAFETY: `c * 8 + 7 < a.len() == b.len()`.
        let va = _mm256_loadu_si256(a.as_ptr().add(c * 8) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(c * 8) as *const __m256i);
        let eq = _mm256_cmpeq_epi32(va, vb);
        let mask = _mm256_movemask_epi8(eq) as u32;
        if mask != u32::MAX {
            // Four mask bits per 32-bit lane; the first zero bit's lane is
            // the first mismatching word.
            return Some(c * 8 + (mask.trailing_ones() / 4) as usize);
        }
    }
    (chunks * 8..a.len()).find(|&i| a[i] != b[i])
}

/// NEON: four 32-bit words per vector.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn first_mismatch_u32_neon(a: &[u32], b: &[u32]) -> Option<usize> {
    use std::arch::aarch64::*;
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    for c in 0..chunks {
        // SAFETY: `c * 4 + 3 < a.len() == b.len()`.
        let va = vld1q_u32(a.as_ptr().add(c * 4));
        let vb = vld1q_u32(b.as_ptr().add(c * 4));
        let eq = vceqq_u32(va, vb);
        // All-equal vectors min-reduce to u32::MAX.
        if vminvq_u32(eq) != u32::MAX {
            for lane in 0..4 {
                if a[c * 4 + lane] != b[c * 4 + lane] {
                    return Some(c * 4 + lane);
                }
            }
        }
    }
    (chunks * 4..a.len()).find(|&i| a[i] != b[i])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn active_vector_level() -> Option<SimdLevel> {
        match SimdLevel::detect() {
            SimdLevel::Scalar => None,
            l => Some(l),
        }
    }

    #[test]
    fn gauge_values_are_stable() {
        assert_eq!(SimdLevel::Scalar.as_gauge(), 0);
        assert_eq!(SimdLevel::Neon.as_gauge(), 1);
        assert_eq!(SimdLevel::Avx2.as_gauge(), 2);
        assert_eq!(SimdLevel::Avx2.to_string(), "avx2");
    }

    #[test]
    fn env_override_parsing() {
        let detected = SimdLevel::detect();
        assert_eq!(SimdLevel::from_env("off", detected), SimdLevel::Scalar);
        assert_eq!(SimdLevel::from_env("scalar", detected), SimdLevel::Scalar);
        assert_eq!(SimdLevel::from_env("SCALAR", detected), SimdLevel::Scalar);
        assert_eq!(SimdLevel::from_env("auto", detected), detected);
        assert_eq!(SimdLevel::from_env("", detected), detected);
        // A requested level is granted only when detected.
        assert_eq!(
            SimdLevel::from_env("avx2", SimdLevel::Avx2),
            SimdLevel::Avx2
        );
        assert_eq!(
            SimdLevel::from_env("avx2", SimdLevel::Scalar),
            SimdLevel::Scalar
        );
        assert_eq!(
            SimdLevel::from_env("neon", SimdLevel::Avx2),
            SimdLevel::Scalar
        );
    }

    #[test]
    fn subset_kernel_matches_scalar_on_random_runs() {
        let Some(level) = active_vector_level() else {
            return;
        };
        let mut rng = StdRng::seed_from_u64(0x51D_0001);
        for stride in [1usize, 2, 3] {
            for _ in 0..200 {
                let entries = rng.gen_range(0..40usize);
                // Sparse requirements and dense entries so both outcomes
                // occur often.
                let required: Vec<u64> = (0..stride)
                    .map(|_| rng.gen::<u64>() & rng.gen::<u64>() & rng.gen::<u64>())
                    .collect();
                let limbs: Vec<u64> = (0..entries * stride)
                    .map(|_| rng.gen::<u64>() | rng.gen::<u64>())
                    .collect();
                let mut scalar = Vec::new();
                let mut vector = Vec::new();
                fs1_subset_hits(SimdLevel::Scalar, &required, &limbs, &mut scalar);
                fs1_subset_hits(level, &required, &limbs, &mut vector);
                assert_eq!(scalar, vector, "stride {stride}, {entries} entries");
            }
        }
    }

    #[test]
    fn subset_kernel_tail_lengths_are_exact() {
        let Some(level) = active_vector_level() else {
            return;
        };
        // Every length around the lane width, with an all-pass requirement
        // and an all-fail requirement.
        for stride in [1usize, 2] {
            for entries in 0..=17usize {
                let limbs = vec![0u64; entries * stride];
                let mut hits = Vec::new();
                fs1_subset_hits(level, &vec![0u64; stride], &limbs, &mut hits);
                assert_eq!(hits.len(), entries, "all-pass, stride {stride}");
                hits.clear();
                fs1_subset_hits(level, &vec![u64::MAX; stride], &limbs, &mut hits);
                assert!(hits.is_empty(), "all-fail, stride {stride}");
            }
        }
    }

    #[test]
    fn subset_kernel_appends_without_clearing() {
        let mut out = vec![7u32];
        fs1_subset_hits(SimdLevel::Scalar, &[0], &[0, u64::MAX], &mut out);
        assert_eq!(out, vec![7, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "whole entries")]
    fn subset_kernel_rejects_ragged_input() {
        let mut out = Vec::new();
        fs1_subset_hits(SimdLevel::Scalar, &[0, 0], &[1, 2, 3], &mut out);
    }

    #[test]
    fn mismatch_kernel_matches_scalar_on_random_streams() {
        let Some(level) = active_vector_level() else {
            return;
        };
        let mut rng = StdRng::seed_from_u64(0x51D_0002);
        for _ in 0..500 {
            let len_a = rng.gen_range(0..40usize);
            let len_b = rng.gen_range(0..40usize);
            // Mostly-equal streams with occasional point differences.
            let a: Vec<u32> = (0..len_a).map(|_| rng.gen_range(0..4u32)).collect();
            let mut b: Vec<u32> = a.iter().take(len_b).copied().collect();
            b.resize_with(len_b, || rng.gen());
            if !b.is_empty() && rng.gen_bool(0.5) {
                let i = rng.gen_range(0..b.len());
                b[i] ^= 1 + rng.gen_range(0..7u32);
            }
            assert_eq!(
                first_mismatch_u32(SimdLevel::Scalar, &a, &b),
                first_mismatch_u32(level, &a, &b),
            );
        }
    }

    #[test]
    fn mismatch_kernel_edge_positions() {
        let Some(level) = active_vector_level() else {
            return;
        };
        for len in 0..=19usize {
            let a: Vec<u32> = (0..len as u32).collect();
            assert_eq!(first_mismatch_u32(level, &a, &a), None, "equal len {len}");
            for diff_at in 0..len {
                let mut b = a.clone();
                b[diff_at] = u32::MAX;
                assert_eq!(
                    first_mismatch_u32(level, &a, &b),
                    Some(diff_at),
                    "len {len} diff {diff_at}"
                );
            }
        }
        // Unequal lengths compare only the shared prefix.
        assert_eq!(first_mismatch_u32(level, &[1, 2, 3], &[1, 2]), None);
        assert_eq!(first_mismatch_u32(level, &[], &[9]), None);
    }
}
