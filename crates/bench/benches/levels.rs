//! Criterion counterpart of E9: software partial matching cost at each of
//! the five levels, over terms of several depths — the cost half of the
//! level-3 trade-off.

use clare_term::parser::parse_term;
use clare_term::SymbolTable;
use clare_unify::partial::{partial_match, MatchLevel, PartialConfig};
use clare_unify::unify_query_clause;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn nested(depth: usize, key: &str) -> String {
    let mut t = key.to_string();
    for _ in 0..depth {
        t = format!("g({t})");
    }
    format!("shape({t}, extra, [a, b, c])")
}

fn bench_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("partial_match_level");
    for depth in [1usize, 3] {
        let mut symbols = SymbolTable::new();
        let query = parse_term(&nested(depth, "k1"), &mut symbols).unwrap();
        let clause = parse_term(&nested(depth, "k2"), &mut symbols).unwrap();
        for level in MatchLevel::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("{level}"), depth),
                &depth,
                |b, _| {
                    b.iter(|| {
                        black_box(
                            partial_match(&query, &clause, PartialConfig::level(level)).matched,
                        )
                    })
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("full unify", depth), &depth, |b, _| {
            b.iter(|| black_box(unify_query_clause(&query, &clause).is_some()))
        });
    }
    group.finish();
}

/// Short measurement windows keep the full suite fast while staying
/// statistically useful.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_levels
}
criterion_main!(benches);
