//! Criterion counterpart of E5/E8/E15: whole-retrieval throughput per
//! search mode, raw FS2 clause-stream filtering speed (simulator clauses
//! per second), and two-stage retrieval scaling across the serial /
//! pre-decoded arena / parallel FS2 sweep configurations.

use clare_core::{retrieve, CrsOptions, SearchMode};
use clare_fs2::Fs2Engine;
use clare_kb::{KbBuilder, KbConfig, KnowledgeBase};
use clare_pif::{encode_clause_head, encode_query, PifStream};
use clare_term::parser::parse_term;
use clare_term::Term;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const FACTS: usize = 8_000;

fn build_kb() -> (KnowledgeBase, Term) {
    let mut builder = KbBuilder::new();
    let mut source = String::with_capacity(FACTS * 24);
    for i in 0..FACTS {
        source.push_str(&format!(
            "stock(part{}, w{}, {}).\n",
            i % 1000,
            i % 23,
            i % 500
        ));
    }
    builder.consult("inv", &source).unwrap();
    let query = parse_term("stock(part123, W, Q)", builder.symbols_mut()).unwrap();
    (builder.finish(KbConfig::default()), query)
}

fn bench_modes(c: &mut Criterion) {
    let (kb, query) = build_kb();
    let opts = CrsOptions::default();
    let mut group = c.benchmark_group("retrieve_mode");
    group.sample_size(20);
    for mode in SearchMode::ALL {
        group.bench_function(format!("{mode}"), |b| {
            b.iter(|| black_box(retrieve(&kb, black_box(&query), mode, &opts).stats.unified))
        });
    }
    group.finish();
}

/// A `fact/3` knowledge base whose FS1 hits for `fact(k17, X, T)` land on
/// every track, so the two-stage retrieval sweeps the whole predicate
/// through FS2 (same shape as experiment E15).
fn build_fact_kb(n: usize) -> (KnowledgeBase, Term) {
    let mut builder = KbBuilder::new();
    let mut source = String::with_capacity(n * 24);
    for i in 0..n {
        source.push_str(&format!("fact(k{}, v{}, t{}).\n", i % 37, i, i % 11));
    }
    builder.consult("m", &source).unwrap();
    let query = parse_term("fact(k17, X, T)", builder.symbols_mut()).unwrap();
    (builder.finish(KbConfig::default()), query)
}

fn fs2_options(workers: usize, predecoded: bool) -> CrsOptions {
    let mut opts = CrsOptions::default();
    opts.fs2 = opts.fs2.with_predecoded(predecoded);
    opts.fs2_parallelism = Some(workers);
    opts
}

fn bench_two_stage_scaling(c: &mut Criterion) {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    let contenders = [
        ("serial", fs2_options(1, false)),
        ("arena", fs2_options(1, true)),
        ("parallel", fs2_options(workers, true)),
    ];
    let mut group = c.benchmark_group("two_stage_retrieval");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 100_000] {
        let (kb, query) = build_fact_kb(n);
        group.throughput(Throughput::Elements(n as u64));
        for (label, opts) in &contenders {
            group.bench_function(format!("{label}/{n}"), |b| {
                b.iter(|| {
                    black_box(
                        retrieve(&kb, black_box(&query), SearchMode::TwoStage, opts)
                            .stats
                            .unified,
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_fs2_stream(c: &mut Criterion) {
    // Raw engine speed: clauses filtered per second by the simulator.
    let mut symbols = clare_term::SymbolTable::new();
    let query = parse_term("stock(part1, W, Q)", &mut symbols).unwrap();
    let streams: Vec<PifStream> = (0..1000)
        .map(|i| {
            let clause = parse_term(
                &format!("stock(part{}, w{}, {})", i, i % 23, i % 500),
                &mut symbols,
            )
            .unwrap();
            encode_clause_head(&clause).unwrap()
        })
        .collect();
    let mut engine = Fs2Engine::new(&encode_query(&query).unwrap()).unwrap();
    let mut group = c.benchmark_group("fs2_stream");
    group.throughput(Throughput::Elements(streams.len() as u64));
    group.bench_function("clauses_per_sec", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for s in &streams {
                if engine.match_clause_stream(s).matched {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

/// Short measurement windows keep the full suite fast while staying
/// statistically useful.
fn fast() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_modes, bench_two_stage_scaling, bench_fs2_stream
}
criterion_main!(benches);
