//! Pins the registry's FS2 op-counter names to the engine's own
//! micro-op names (Table 1 order), so `fs2.op.*` metrics always label
//! the op they count. A dev-dependency cycle (clare-fs2 depends on
//! clare-trace) is fine: Cargo permits cycles through dev-dependencies.

use clare_fs2::HwOp;

#[test]
fn fs2_op_names_match_the_engine() {
    assert_eq!(HwOp::ALL.len(), clare_trace::FS2_OPS);
    for (i, op) in HwOp::ALL.iter().enumerate() {
        assert_eq!(clare_trace::fs2_op_name(i), op.name());
    }
}
