//! Cached-equals-uncached equivalence: a [`ClauseRetrievalServer`] with
//! the cache enabled must return, for every query, the byte-identical
//! [`Retrieval`] a fresh uncached pipeline run produces on the current
//! snapshot — across random interleavings of retrievals, incremental
//! update transactions, full knowledge-base swaps, and mode changes.
//!
//! The reference is `clare_core::retrieve` on `server.snapshot()`, which
//! never consults the server cache. Any unsound cache entry — stale
//! epoch, module-layout shift, mode mix-up, renaming collision — shows
//! up as an equality failure here.

use clare_core::{
    retrieve_merged, solve, BudgetReason, CancelToken, ClauseRetrievalServer, CompactionOutcome,
    CrsOptions, QueryBudget, Retrieval, SearchMode, SolveOptions,
};
use clare_kb::{KbBuilder, KbConfig};
use clare_term::parser::{parse_term, parse_term_with_vars};
use clare_term::Term;
use proptest::prelude::*;

/// Deterministic xorshift64* stream, seeded per test for reproducibility.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Shadow state: the clause text of each module, from which both the
/// server's updates and the from-scratch rebuilds are derived.
struct Shadow {
    modules: Vec<(&'static str, Vec<String>)>,
}

impl Shadow {
    fn rebuild(&self, symbols: &clare_term::SymbolTable) -> clare_kb::KnowledgeBase {
        let mut b = KbBuilder::new();
        *b.symbols_mut() = symbols.clone();
        for (name, facts) in &self.modules {
            b.consult(name, &facts.join("\n")).unwrap();
        }
        b.finish(KbConfig::default())
    }
}

#[test]
fn cached_retrievals_match_uncached_across_interleavings() {
    let mut shadow = Shadow {
        modules: vec![
            // p/2 and r/1 share module "ma": module-granular invalidation
            // must catch cross-predicate effects of consulting either.
            (
                "ma",
                (0..200)
                    .map(|i| format!("p(k{}, v{}).", i % 30, i % 5))
                    .chain((0..60).map(|i| format!("r(k{}).", i % 20)))
                    .collect(),
            ),
            (
                "mb",
                (0..200)
                    .map(|i| format!("q(k{}, v{}).", i % 30, i % 5))
                    .collect(),
            ),
        ],
    };

    let mut b = KbBuilder::new();
    for (name, facts) in &shadow.modules {
        b.consult(name, &facts.join("\n")).unwrap();
    }
    let mut symbols = b.symbols_mut().clone();
    let queries: Vec<Term> = [
        "p(k7, X)",
        "p(k7, v2)",
        "p(K, v3)",
        "q(k7, X)",
        "q(K, v1)",
        "r(k11)",
        "r(X)",
        "p(X, Y)",
    ]
    .iter()
    .map(|q| parse_term(q, &mut symbols).unwrap())
    .collect();

    let server = ClauseRetrievalServer::new(b.finish(KbConfig::default()), CrsOptions::default());
    let mut rng = Rng(0x9E3779B97F4A7C15);
    let mut fresh = 0u32; // uniquifier for consulted facts

    for step in 0..400 {
        match rng.below(10) {
            // Mostly retrievals, repeating from a small query pool so the
            // cache gets real hits to prove equal.
            0..=6 => {
                let query = &queries[rng.below(queries.len() as u64) as usize];
                let mode = SearchMode::ALL[rng.below(4) as usize];
                let got = server.retrieve(query, mode);
                let want = reference(&server, query, mode);
                assert_eq!(got, want, "step {step}: cached != uncached");
            }
            // Batches exercise the coalesced path and its per-member cache.
            7 => {
                let batch: Vec<Term> = (0..3)
                    .map(|_| queries[rng.below(queries.len() as u64) as usize].clone())
                    .collect();
                let mode = SearchMode::ALL[rng.below(4) as usize];
                let got = server.retrieve_batch(&batch, mode);
                for (i, (query, outcome)) in batch.iter().zip(&got).enumerate() {
                    let want = reference(&server, query, mode);
                    assert_eq!(*outcome, want, "step {step} member {i}");
                }
            }
            // Incremental assert: consult one new fact through a
            // transaction (bumps only the touched module's predicates).
            8 => {
                let (module, fact) = if rng.below(2) == 0 {
                    ("ma", format!("p(new{fresh}, v0)."))
                } else {
                    ("mb", format!("q(new{fresh}, v0)."))
                };
                fresh += 1;
                let slot = shadow.modules.iter_mut().find(|(n, _)| *n == module);
                slot.unwrap().1.push(fact.clone());
                let mut tx = server.begin_update();
                tx.consult(module, &fact).unwrap();
                symbols = tx.symbols_mut().clone();
                tx.commit(KbConfig::default()).unwrap();
            }
            // Full swap: rebuild everything from the shadow (a
            // non-incremental update, which must invalidate globally).
            _ => {
                server.update(shadow.rebuild(&symbols));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Budget-cancelled retrievals leave no trace in the cache. Across a
    /// random interleaving of tripped attempts, unlimited retrievals,
    /// and incremental asserts, two things must hold:
    ///
    /// 1. A tripped attempt never *populates* the cache. Cache hits are
    ///    deliberately budget-exempt (a hit costs nothing), so the probe
    ///    is direct: re-running the identical query under the identical
    ///    one-candidate budget must trip again — if the cancelled pass
    ///    had inserted its partial answer, the re-run would come back as
    ///    a budget-exempt hit instead of the typed error.
    /// 2. A tripped attempt never *corrupts* later answers. Every
    ///    unlimited retrieval — cached or not, before or after any
    ///    number of trips on the same key — is byte-identical to a fresh
    ///    uncached pipeline run on the current snapshot.
    #[test]
    fn tripped_budgets_never_populate_nor_corrupt_the_cache(
        ops in prop::collection::vec((0usize..8, 0usize..4, any::<bool>()), 1..40),
    ) {
        let mut b = KbBuilder::new();
        let facts: String = (0..200)
            .map(|i| format!("p(k{}, v{}).\n", i % 30, i % 5))
            .chain((0..60).map(|i| format!("r(k{}).\n", i % 20)))
            .collect();
        b.consult("ma", &facts).unwrap();
        let mut symbols = b.symbols_mut().clone();
        let queries: Vec<Term> = [
            "p(k7, X)",
            "p(k7, v2)",
            "p(K, v3)",
            "r(k11)",
            "r(X)",
            "p(X, Y)",
            "p(k2, X)",
            "r(k3)",
        ]
        .iter()
        .map(|q| parse_term(q, &mut symbols).unwrap())
        .collect();
        let server =
            ClauseRetrievalServer::new(b.finish(KbConfig::default()), CrsOptions::default());
        // One candidate is below every pool query's match count, so an
        // uncached budgeted attempt always trips.
        let tiny = QueryBudget {
            deadline_micros: 0,
            solve_step_limit: 0,
            candidate_limit: 1,
        };
        let mut fresh = 0u32;

        for (step, &(qi, mi, budgeted)) in ops.iter().enumerate() {
            let query = &queries[qi];
            let mode = SearchMode::ALL[mi];
            if budgeted {
                match server.retrieve_budgeted(query, mode, &CancelToken::new(&tiny)) {
                    Err(e) => {
                        prop_assert_eq!(
                            e.reason,
                            Some(BudgetReason::Candidates),
                            "step {}: wrong trip reason",
                            step
                        );
                        // Invariant 1: the trip must not have cached the
                        // abandoned pass — an identical re-run still trips.
                        prop_assert!(
                            server
                                .retrieve_budgeted(query, mode, &CancelToken::new(&tiny))
                                .is_err(),
                            "step {}: a tripped retrieval populated the cache \
                             (identical re-run was served as a budget-exempt hit)",
                            step
                        );
                    }
                    // A budget-exempt hit of a previously *completed*
                    // answer: legal, and it must still be the truth.
                    Ok(got) => prop_assert_eq!(
                        got,
                        reference(&server, query, mode),
                        "step {}: cached hit under budget diverged",
                        step
                    ),
                }
            }
            // Invariant 2: the unlimited path is correct no matter what
            // the cancelled attempts did before it.
            prop_assert_eq!(
                server.retrieve(query, mode),
                reference(&server, query, mode),
                "step {}: answer after budget trips diverged from uncached reference",
                step
            );
            // Occasionally shift the epoch under the cache so trips land
            // on both fresh and invalidated entries.
            if qi == 7 && budgeted {
                let fact = format!("p(new{fresh}, v0).");
                fresh += 1;
                let mut tx = server.begin_update();
                tx.consult("ma", &fact).unwrap();
                tx.commit(KbConfig::default()).unwrap();
            }
        }
    }
}

/// The uncached answer for `query` on the server's current snapshot
/// pair: the same base-plus-overlay merge the serving path performs, but
/// run fresh through the pipeline, never through the server cache.
fn reference(server: &ClauseRetrievalServer, query: &Term, mode: SearchMode) -> Retrieval {
    let (base, overlay) = server.snapshot_merged();
    retrieve_merged(&base, &overlay, query, mode, &CrsOptions::default())
}

/// Overlay soundness, property-tested: across random interleavings of
/// incremental asserts, retracts, compactions, wholesale swaps, and
/// retrievals, the *merged* (base + memtable overlay) answers must be
/// identical to those of a knowledge base rebuilt from scratch out of a
/// shadow text state — same unified counts in every search mode, and
/// byte-identical solve solutions. This is the no-false-negative
/// invariant end to end: overlay clauses have no codewords, so the
/// filters must pass them unconditionally, and retracted base clauses
/// must never resurface (not even right after a compaction folds the
/// overlay down).
#[test]
fn overlay_merged_answers_match_from_scratch_rebuild() {
    let fact_pool: Vec<(&'static str, String)> = (0..24)
        .map(|i| ("ma", format!("p(k{}, v{}).", i % 8, i % 3)))
        .chain((0..16).map(|i| ("mb", format!("q(k{}).", i % 6))))
        .collect();

    let mut shadow = Shadow {
        modules: vec![
            (
                "ma",
                (0..60)
                    .map(|i| format!("p(k{}, v{}).", i % 8, i % 3))
                    .collect(),
            ),
            ("mb", (0..40).map(|i| format!("q(k{}).", i % 6)).collect()),
        ],
    };

    let mut b = KbBuilder::new();
    for (name, facts) in &shadow.modules {
        b.consult(name, &facts.join("\n")).unwrap();
    }
    let mut symbols = b.symbols_mut().clone();
    let queries: Vec<(Term, Vec<String>)> = [
        "p(k3, X)",
        "p(K, v1)",
        "p(X, Y)",
        "p(k5, v2)",
        "q(k2)",
        "q(X)",
    ]
    .iter()
    .map(|q| parse_term_with_vars(q, &mut symbols).unwrap())
    .collect();

    let server = ClauseRetrievalServer::new(b.finish(KbConfig::default()), CrsOptions::default());
    let mut rng = Rng(0xD1B54A32D192ED03);

    for step in 0..250 {
        match rng.below(12) {
            // Retrieval equivalence: every mode's unified count matches a
            // from-scratch rebuild of the shadow state.
            0..=5 => {
                let (query, _) = &queries[rng.below(queries.len() as u64) as usize];
                let mode = SearchMode::ALL[rng.below(4) as usize];
                let rebuilt = shadow.rebuild(&symbols);
                let want = clare_core::retrieve(&rebuilt, query, mode, &CrsOptions::default());
                let got = server.retrieve(query, mode);
                assert_eq!(
                    got.stats.unified, want.stats.unified,
                    "step {step}: merged answer set diverged from rebuild in {mode}"
                );
            }
            // Solve equivalence: the solutions — terms and named bindings
            // — are byte-identical against the rebuild, in order.
            6 => {
                let (query, names) = &queries[rng.below(queries.len() as u64) as usize];
                let rebuilt = shadow.rebuild(&symbols);
                let want = solve(&rebuilt, query, names, &SolveOptions::default());
                let got = server.solve(query, names, &SolveOptions::default());
                assert_eq!(
                    got.solutions, want.solutions,
                    "step {step}: merged solutions diverged from rebuild"
                );
            }
            // Assert one pool fact through a transaction.
            7 | 8 => {
                let (module, fact) = &fact_pool[rng.below(fact_pool.len() as u64) as usize];
                let slot = shadow.modules.iter_mut().find(|(n, _)| n == module);
                slot.unwrap().1.push(fact.clone());
                let mut tx = server.begin_update();
                tx.consult(module, fact).unwrap();
                tx.commit(KbConfig::default()).unwrap();
            }
            // Retract the first structural match of a pool fact (a quiet
            // no-op on both sides when none is live).
            9 | 10 => {
                let (module, fact) = &fact_pool[rng.below(fact_pool.len() as u64) as usize];
                let slot = shadow.modules.iter_mut().find(|(n, _)| n == module);
                let facts = &mut slot.unwrap().1;
                if let Some(pos) = facts.iter().position(|f| f == fact) {
                    facts.remove(pos);
                }
                let mut tx = server.begin_update();
                tx.retract(module, fact).unwrap();
                tx.commit(KbConfig::default()).unwrap();
            }
            // Fold the overlay into a fresh base; the shadow doesn't
            // change, so subsequent comparisons prove the fold lossless.
            _ => {
                let outcome = server.compact_now();
                assert!(
                    !matches!(outcome, CompactionOutcome::Failed),
                    "step {step}: compaction must not fail"
                );
            }
        }
    }
    // Final fold, then one more full sweep: post-compaction state is the
    // shadow state exactly.
    server.compact_now();
    let rebuilt = shadow.rebuild(&symbols);
    for (query, names) in &queries {
        for mode in SearchMode::ALL {
            assert_eq!(
                server.retrieve(query, mode).stats.unified,
                clare_core::retrieve(&rebuilt, query, mode, &CrsOptions::default())
                    .stats
                    .unified,
                "post-compaction divergence in {mode}"
            );
        }
        assert_eq!(
            server
                .solve(query, names, &SolveOptions::default())
                .solutions,
            solve(&rebuilt, query, names, &SolveOptions::default()).solutions,
        );
    }
}
