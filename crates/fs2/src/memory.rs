//! The Test Unification Engine's two memory banks (Figure 5).
//!
//! * **Query Memory** — pre-loaded in Set Query mode with the query's PIF
//!   argument words; also holds one binding cell per query variable
//!   (QUERY_STORE writes the database argument into "the location of the
//!   Query Memory which is addressed by the content field of the query
//!   argument").
//! * **DB Memory** — dual-ported, "used for storing bindings of database
//!   variables at run time. It is reset to pointing to itself at the
//!   beginning of each clause input."
//!
//! Cells hold raw 32-bit PIF words. An *unbound* cell holds a variable
//! word referencing itself — the hardware's self-pointer idiom — so
//! resolution is a chain of word reads that terminates at a self-reference
//! or a non-variable word.

use clare_pif::tags::{TAG_SUB_DV, TAG_SUB_QV};
use clare_pif::PifWord;

/// Query Memory capacity in words: the query address travels on microcode
/// bits 13–20, an 8-bit field.
pub const QUERY_MEMORY_WORDS: usize = 256;

/// Builds the raw self-reference word for a query-variable cell.
pub fn qv_self_word(offset: u32) -> u32 {
    ((TAG_SUB_QV as u32) << 24) | (offset & 0x00FF_FFFF)
}

/// Builds the raw self-reference word for a database-variable cell.
pub fn dv_self_word(offset: u32) -> u32 {
    ((TAG_SUB_DV as u32) << 24) | (offset & 0x00FF_FFFF)
}

/// A bank of variable-binding cells initialised to self-references.
#[derive(Debug, Clone)]
pub struct CellBank {
    cells: Vec<u32>,
    self_word: fn(u32) -> u32,
}

impl CellBank {
    /// A bank for query variables.
    pub fn query_vars(count: usize) -> Self {
        let mut bank = CellBank {
            cells: Vec::new(),
            self_word: qv_self_word,
        };
        bank.reset(count);
        bank
    }

    /// A bank for database variables.
    pub fn db_vars(count: usize) -> Self {
        let mut bank = CellBank {
            cells: Vec::new(),
            self_word: dv_self_word,
        };
        bank.reset(count);
        bank
    }

    /// Resets to `count` unbound (self-referencing) cells — what the
    /// hardware does "at the beginning of each clause input".
    pub fn reset(&mut self, count: usize) {
        self.cells.clear();
        self.cells.extend((0..count as u32).map(self.self_word));
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the bank has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Reads a cell's raw word.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range (a malformed stream; encoders
    /// number variables densely from zero).
    pub fn read(&self, offset: u32) -> u32 {
        self.cells[offset as usize]
    }

    /// Writes a cell.
    pub fn write(&mut self, offset: u32, raw: u32) {
        self.cells[offset as usize] = raw;
    }

    /// True if the cell still holds its self-reference (unbound).
    pub fn is_unbound(&self, offset: u32) -> bool {
        self.cells[offset as usize] == (self.self_word)(offset)
    }
}

/// The pre-loaded query side: the argument word stream plus the
/// query-variable cell region.
#[derive(Debug, Clone)]
pub struct QueryMemory {
    stream: Vec<PifWord>,
    n_vars: usize,
}

/// Error loading a query: the stream (plus variable cells) exceeds the
/// 8-bit addressable Query Memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTooLargeError {
    /// Words required.
    pub required: usize,
}

impl std::fmt::Display for QueryTooLargeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "query needs {} words but the Query Memory holds {}",
            self.required, QUERY_MEMORY_WORDS
        )
    }
}

impl std::error::Error for QueryTooLargeError {}

impl QueryMemory {
    /// Loads a query stream (Set Query mode).
    ///
    /// # Errors
    ///
    /// Returns [`QueryTooLargeError`] if the stream plus one cell per
    /// query variable exceeds [`QUERY_MEMORY_WORDS`].
    pub fn load(stream: &clare_pif::PifStream) -> Result<Self, QueryTooLargeError> {
        let n_vars = stream
            .words()
            .iter()
            .filter_map(|w| match w.type_tag() {
                clare_pif::TypeTag::QueryVar { .. } => Some(w.content() + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0) as usize;
        let required = stream.len() + n_vars;
        if required > QUERY_MEMORY_WORDS {
            return Err(QueryTooLargeError { required });
        }
        Ok(QueryMemory {
            stream: stream.words().to_vec(),
            n_vars,
        })
    }

    /// The query argument words.
    pub fn stream(&self) -> &[PifWord] {
        &self.stream
    }

    /// Number of distinct query variables.
    pub fn var_count(&self) -> usize {
        self.n_vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_pif::encode_query;
    use clare_term::parser::parse_term;
    use clare_term::SymbolTable;

    #[test]
    fn self_words_carry_tag_and_offset() {
        assert_eq!(qv_self_word(5) >> 24, TAG_SUB_QV as u32);
        assert_eq!(qv_self_word(5) & 0xFF_FFFF, 5);
        assert_eq!(dv_self_word(9) >> 24, TAG_SUB_DV as u32);
    }

    #[test]
    fn bank_starts_unbound_and_binds() {
        let mut bank = CellBank::db_vars(3);
        assert!(bank.is_unbound(0));
        assert!(bank.is_unbound(2));
        bank.write(1, 0x0800_0007); // atom word
        assert!(!bank.is_unbound(1));
        assert_eq!(bank.read(1), 0x0800_0007);
        bank.reset(3);
        assert!(bank.is_unbound(1), "reset restores self-references");
    }

    #[test]
    fn query_memory_counts_vars() {
        let mut sy = SymbolTable::new();
        let q = parse_term("f(X, a, Y, X)", &mut sy).unwrap();
        let qm = QueryMemory::load(&encode_query(&q).unwrap()).unwrap();
        assert_eq!(qm.var_count(), 2);
        assert_eq!(qm.stream().len(), 4);
    }

    #[test]
    fn oversized_query_rejected() {
        let mut sy = SymbolTable::new();
        let args: Vec<String> = (0..300).map(|i| format!("a{i}")).collect();
        let q = parse_term(&format!("p({})", args.join(", ")), &mut sy).unwrap();
        let err = QueryMemory::load(&encode_query(&q).unwrap()).unwrap_err();
        assert_eq!(err.required, 300);
    }

    #[test]
    fn ground_query_has_zero_cells() {
        let mut sy = SymbolTable::new();
        let q = parse_term("f(a, b)", &mut sy).unwrap();
        let qm = QueryMemory::load(&encode_query(&q).unwrap()).unwrap();
        assert_eq!(qm.var_count(), 0);
    }
}
