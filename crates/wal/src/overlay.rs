//! The memtable delta overlay.
//!
//! Asserted and retracted clauses land here instead of forcing a
//! wholesale knowledge-base rebuild. An [`Overlay`] is the live delta on
//! top of one immutable base snapshot: per-predicate lists of *added*
//! clauses (in sequence order) and sets of *retracted* base clause
//! indices. Retrievals merge the two views; overlay clauses have no FS1
//! codewords yet, so they pass the superset filter **unconditionally**
//! until a compaction folds them into rebuilt track segments — the
//! paper's no-false-negative invariant is preserved by construction, and
//! the host's full unification weeds the extra candidates exactly as it
//! weeds FS1 false drops.
//!
//! Application is copy-on-write at the commit layer: the server clones
//! the published overlay, applies a batch, and publishes the clone only
//! after the write-ahead log accepts the batch — a failed validation or
//! a failed append publishes nothing.

use std::collections::{BTreeSet, HashMap};

use crate::log::{WalOp, WalRecord};
use clare_kb::{KbBuilder, KbConfig, KbError, KnowledgeBase};
use clare_pif::ClauseRecord;
use clare_term::parser::{parse_program, ParseError};
use clare_term::{Clause, Symbol, SymbolTable};

/// One clause added by the overlay, tagged with the sequence number of
/// the assert that introduced it.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlayClause {
    /// Sequence number of the assert that added this clause.
    pub seq: u64,
    /// The clause itself.
    pub clause: Clause,
}

/// The live delta for one predicate: clauses added on top of the base
/// (in assert order) and base clause indices retracted out of it.
#[derive(Debug, Clone, Default)]
pub struct PredDelta {
    module: String,
    added: Vec<OverlayClause>,
    retracted_base: BTreeSet<usize>,
}

impl PredDelta {
    fn new(module: String) -> Self {
        PredDelta {
            module,
            ..PredDelta::default()
        }
    }

    /// The module this predicate's overlay clauses belong to (used for
    /// predicates the base snapshot does not know).
    pub fn module(&self) -> &str {
        &self.module
    }

    /// Live clauses added on top of the base, in assert order.
    pub fn added(&self) -> &[OverlayClause] {
        &self.added
    }

    /// Indices into the base predicate's clause list that are retracted.
    pub fn retracted_base(&self) -> &BTreeSet<usize> {
        &self.retracted_base
    }

    /// True when base clause `index` has been retracted.
    pub fn is_retracted(&self, index: usize) -> bool {
        self.retracted_base.contains(&index)
    }

    /// True when this delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.retracted_base.is_empty()
    }
}

/// What one [`Overlay::apply`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Clauses added to the overlay.
    pub clauses_added: usize,
    /// Clauses removed (from the base view or from the overlay).
    pub clauses_removed: usize,
    /// Predicates whose merged view changed.
    pub touched: Vec<(Symbol, usize)>,
}

/// Errors from applying an operation to the overlay. Every error leaves
/// the *published* state untouched — the commit layer applies to a clone
/// and discards it on failure.
#[derive(Debug)]
pub enum OverlayError {
    /// The operation's clause source failed to parse.
    Parse(ParseError),
    /// A clause cannot be compiled to PIF (it could never be stored, so
    /// it is rejected at commit rather than at the next compaction).
    Pif(clare_pif::PifError),
    /// A clause's compiled record exceeds one disk track, so no
    /// compaction could ever fold it in.
    RecordTooLarge {
        /// Size of the offending record.
        record_bytes: usize,
        /// The track capacity it must fit.
        track_bytes: usize,
    },
    /// A retract's source held zero or several clauses instead of one.
    RetractNotSingle(usize),
}

impl std::fmt::Display for OverlayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverlayError::Parse(e) => write!(f, "parse error: {e}"),
            OverlayError::Pif(e) => write!(f, "PIF compilation error: {e}"),
            OverlayError::RecordTooLarge {
                record_bytes,
                track_bytes,
            } => write!(
                f,
                "record of {record_bytes} bytes does not fit a {track_bytes}-byte track"
            ),
            OverlayError::RetractNotSingle(n) => {
                write!(f, "retract source must hold exactly one clause, got {n}")
            }
        }
    }
}

impl std::error::Error for OverlayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OverlayError::Parse(e) => Some(e),
            OverlayError::Pif(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for OverlayError {
    fn from(e: ParseError) -> Self {
        OverlayError::Parse(e)
    }
}

/// Structural clause equality: head and body terms, ignoring the
/// cosmetic variable-name table. Clauses parsed from α-equivalent text
/// compare equal (the parser numbers variables per clause from zero in
/// first-occurrence order).
fn same_clause(a: &Clause, b: &Clause) -> bool {
    a.head() == b.head() && a.body() == b.body()
}

/// The in-memory delta between one immutable base snapshot and the
/// current mutable state. Cloning is the commit layer's copy-on-write
/// unit; the full op list is retained so recovery and compaction can
/// replay the tail.
#[derive(Debug, Clone)]
pub struct Overlay {
    symbols: SymbolTable,
    ops: Vec<WalRecord>,
    preds: HashMap<(Symbol, usize), PredDelta>,
    max_seq: u64,
}

impl Overlay {
    /// An empty overlay whose symbol table starts as a snapshot of the
    /// base's (new atoms from asserts append to it, so base symbol ids
    /// never move).
    pub fn new(symbols: SymbolTable) -> Self {
        Overlay {
            symbols,
            ops: Vec::new(),
            preds: HashMap::new(),
            max_seq: 0,
        }
    }

    /// The overlay's symbol table: a superset of the base snapshot's.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Every operation applied since the base was sealed, in order.
    pub fn ops(&self) -> &[WalRecord] {
        &self.ops
    }

    /// Number of operations applied since the base was sealed.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operation has been applied.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Highest sequence number applied (0 when empty).
    pub fn max_seq(&self) -> u64 {
        self.max_seq
    }

    /// The delta for one predicate, if any operation touched it.
    pub fn delta(&self, functor: Symbol, arity: usize) -> Option<&PredDelta> {
        self.preds.get(&(functor, arity))
    }

    /// Every predicate with a delta, in arbitrary order.
    pub fn predicates(&self) -> impl Iterator<Item = (&(Symbol, usize), &PredDelta)> {
        self.preds.iter()
    }

    /// Live clauses currently added across all predicates.
    pub fn added_clauses(&self) -> usize {
        self.preds.values().map(|d| d.added.len()).sum()
    }

    /// Applies one operation at `seq` against `base`, validating every
    /// clause (parse, PIF compile, track fit) before mutating anything:
    /// an `Err` leaves this overlay exactly as it was.
    pub fn apply(
        &mut self,
        seq: u64,
        op: &WalOp,
        base: &KnowledgeBase,
        config: &KbConfig,
    ) -> Result<ApplyOutcome, OverlayError> {
        let outcome = match op {
            WalOp::Assert { module, source } => {
                let clauses = parse_program(source, &mut self.symbols)?;
                let mut staged: Vec<((Symbol, usize), Clause)> = Vec::with_capacity(clauses.len());
                for clause in clauses {
                    let record = ClauseRecord::compile(&clause).map_err(OverlayError::Pif)?;
                    let record_bytes = record.to_bytes().len();
                    let track_bytes = config.disk.track_bytes();
                    if record_bytes > track_bytes {
                        return Err(OverlayError::RecordTooLarge {
                            record_bytes,
                            track_bytes,
                        });
                    }
                    let key = match clause.head().functor_arity() {
                        Some(key) => key,
                        None => continue, // unreachable: Clause heads are callable
                    };
                    staged.push((key, clause));
                }
                let mut touched = Vec::new();
                let added = staged.len();
                for (key, clause) in staged {
                    let delta = self
                        .preds
                        .entry(key)
                        .or_insert_with(|| PredDelta::new(module.clone()));
                    delta.added.push(OverlayClause { seq, clause });
                    if !touched.contains(&key) {
                        touched.push(key);
                    }
                }
                ApplyOutcome {
                    clauses_added: added,
                    clauses_removed: 0,
                    touched,
                }
            }
            WalOp::Retract { module, source } => {
                let mut clauses = parse_program(source, &mut self.symbols)?;
                if clauses.len() != 1 {
                    return Err(OverlayError::RetractNotSingle(clauses.len()));
                }
                let target = clauses.remove(0);
                let key = match target.head().functor_arity() {
                    Some(key) => key,
                    None => return Err(OverlayError::RetractNotSingle(0)),
                };
                // First live structural match wins, in merged program
                // order: surviving base clauses first, then overlay adds.
                enum Hit {
                    Base(usize),
                    Added(usize),
                }
                let existing = self.preds.get(&key);
                let mut hit = None;
                if let Some(pred) = base.predicate(key.0, key.1) {
                    for (i, clause) in pred.clauses().iter().enumerate() {
                        if existing.is_some_and(|d| d.is_retracted(i)) {
                            continue;
                        }
                        if same_clause(clause, &target) {
                            hit = Some(Hit::Base(i));
                            break;
                        }
                    }
                }
                if hit.is_none() {
                    if let Some(delta) = existing {
                        for (j, oc) in delta.added.iter().enumerate() {
                            if same_clause(&oc.clause, &target) {
                                hit = Some(Hit::Added(j));
                                break;
                            }
                        }
                    }
                }
                match hit {
                    Some(Hit::Base(i)) => {
                        self.preds
                            .entry(key)
                            .or_insert_with(|| PredDelta::new(module.clone()))
                            .retracted_base
                            .insert(i);
                        ApplyOutcome {
                            clauses_added: 0,
                            clauses_removed: 1,
                            touched: vec![key],
                        }
                    }
                    Some(Hit::Added(j)) => {
                        if let Some(delta) = self.preds.get_mut(&key) {
                            delta.added.remove(j);
                        }
                        ApplyOutcome {
                            clauses_added: 0,
                            clauses_removed: 1,
                            touched: vec![key],
                        }
                    }
                    // Standard Prolog retract/1 semantics: no match is a
                    // quiet failure, not an error. The op is still logged
                    // so replay stays faithful.
                    None => ApplyOutcome::default(),
                }
            }
        };
        self.ops.push(WalRecord {
            seq,
            op: op.clone(),
        });
        self.max_seq = self.max_seq.max(seq);
        Ok(outcome)
    }

    /// Replays `records` onto a fresh overlay over `base`. Records that
    /// no longer apply (e.g. the base changed under them) are skipped and
    /// counted — on a faithful replay over the original base the skip
    /// count is zero.
    pub fn rebuild(
        base: &KnowledgeBase,
        records: &[WalRecord],
        config: &KbConfig,
    ) -> (Overlay, usize) {
        let mut overlay = Overlay::new(base.symbols().clone());
        let mut skipped = 0usize;
        for record in records {
            if overlay.apply(record.seq, &record.op, base, config).is_err() {
                skipped += 1;
            }
        }
        (overlay, skipped)
    }

    /// Folds this overlay into `base`, producing the compacted snapshot:
    /// retracted base clauses dropped, overlay clauses appended to their
    /// predicates, track segments and FS1 codeword indexes rebuilt for
    /// exactly the affected modules. The rebuilt base keeps the old
    /// base's generation as its parent, so the retrieval cache's
    /// incremental epoch bump invalidates only the touched predicates.
    ///
    /// Everything here reads in-memory clause terms — never the
    /// simulated disk — so degraded (quarantined-track) data can never
    /// be compacted into the new segments.
    pub fn compacted_kb(
        &self,
        base: &KnowledgeBase,
        config: &KbConfig,
    ) -> Result<KnowledgeBase, KbError> {
        let mut builder: KbBuilder = base.to_builder();
        *builder.symbols_mut() = self.symbols.clone();
        // Group deltas by module; base membership wins over the module
        // recorded at assert time (a predicate lives in one module).
        type ModuleDeltas<'a> = Vec<(&'a (Symbol, usize), &'a PredDelta)>;
        let mut by_module: HashMap<String, ModuleDeltas<'_>> = HashMap::new();
        for (key, delta) in &self.preds {
            if delta.is_empty() {
                continue;
            }
            let module = base
                .module_of(key.0, key.1)
                .map(|(m, _)| m.name().to_owned())
                .unwrap_or_else(|| delta.module.clone());
            by_module.entry(module).or_default().push((key, delta));
        }
        for (module, deltas) in by_module {
            let mut clauses: Vec<Clause> = builder
                .module_clauses(&module)
                .map(<[Clause]>::to_vec)
                .unwrap_or_default();
            // Drop retracted base clauses: the n-th clause of predicate P
            // in the module list is base index n of P (the builder stages
            // clauses in predicate-grouped order).
            let retracted: HashMap<(Symbol, usize), &BTreeSet<usize>> = deltas
                .iter()
                .map(|(key, delta)| (**key, &delta.retracted_base))
                .collect();
            let mut ordinal: HashMap<(Symbol, usize), usize> = HashMap::new();
            clauses.retain(|clause| {
                let Some(key) = clause.head().functor_arity() else {
                    return true;
                };
                let n = ordinal.entry(key).or_insert(0);
                let keep = !retracted.get(&key).is_some_and(|set| set.contains(n));
                *n += 1;
                keep
            });
            // Append overlay adds; try_finish regroups per predicate, so
            // each predicate sees its base clauses first, then its adds
            // in assert order — exact assertz semantics.
            for (_, delta) in &deltas {
                clauses.extend(delta.added.iter().map(|oc| oc.clause.clone()));
            }
            builder.set_module_clauses(&module, clauses);
        }
        builder.try_finish(config.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_term::parser::parse_term;

    fn base_kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        b.consult("m", "p(a). p(b). p(c). q(1). bridge(X) :- p(X), q(1).")
            .unwrap();
        b.finish(KbConfig::default())
    }

    fn apply(overlay: &mut Overlay, seq: u64, op: WalOp, base: &KnowledgeBase) -> ApplyOutcome {
        overlay.apply(seq, &op, base, &KbConfig::default()).unwrap()
    }

    fn assert_op(source: &str) -> WalOp {
        WalOp::Assert {
            module: "m".into(),
            source: source.into(),
        }
    }

    fn retract_op(source: &str) -> WalOp {
        WalOp::Retract {
            module: "m".into(),
            source: source.into(),
        }
    }

    #[test]
    fn asserts_accumulate_in_order() {
        let base = base_kb();
        let mut o = Overlay::new(base.symbols().clone());
        let out = apply(&mut o, 1, assert_op("p(d). p(e)."), &base);
        assert_eq!(out.clauses_added, 2);
        assert_eq!(out.touched.len(), 1);
        let p = base.symbols().lookup_atom("p").unwrap();
        let delta = o.delta(p, 1).unwrap();
        assert_eq!(delta.added().len(), 2);
        assert!(delta.added()[0].seq == 1 && delta.added()[1].seq == 1);
        assert_eq!(o.len(), 1);
        assert_eq!(o.max_seq(), 1);
    }

    #[test]
    fn retract_takes_first_live_base_match_then_overlay() {
        let base = base_kb();
        let p = base.symbols().lookup_atom("p").unwrap();
        let mut o = Overlay::new(base.symbols().clone());
        apply(&mut o, 1, assert_op("p(b)."), &base); // duplicate of base p(b)
        let out = apply(&mut o, 2, retract_op("p(b)."), &base);
        assert_eq!(out.clauses_removed, 1);
        // The BASE p(b) (index 1) goes first; the overlay copy stays.
        let delta = o.delta(p, 1).unwrap();
        assert!(delta.is_retracted(1));
        assert_eq!(delta.added().len(), 1);
        let out = apply(&mut o, 3, retract_op("p(b)."), &base);
        assert_eq!(out.clauses_removed, 1);
        assert!(o.delta(p, 1).unwrap().added().is_empty());
        // Third retract finds nothing; quiet no-op, still logged.
        let out = apply(&mut o, 4, retract_op("p(b)."), &base);
        assert_eq!(out.clauses_removed, 0);
        assert_eq!(o.ops().len(), 4);
    }

    #[test]
    fn retract_matches_alpha_equivalent_rules() {
        let base = base_kb();
        let mut o = Overlay::new(base.symbols().clone());
        // Same rule, different variable name: structurally equal.
        let out = apply(&mut o, 1, retract_op("bridge(Y) :- p(Y), q(1)."), &base);
        assert_eq!(out.clauses_removed, 1);
    }

    #[test]
    fn unencodable_clause_is_rejected_and_nothing_sticks() {
        let base = base_kb();
        let mut o = Overlay::new(base.symbols().clone());
        apply(&mut o, 1, assert_op("p(d)."), &base);
        let before_ops = o.len();
        let err = o.apply(
            2,
            &assert_op("p(ok). p(999999999999)."),
            &base,
            &KbConfig::default(),
        );
        assert!(matches!(err, Err(OverlayError::Pif(_))));
        // Validation happens before mutation: p(ok) did not land either.
        let p = base.symbols().lookup_atom("p").unwrap();
        assert_eq!(o.delta(p, 1).unwrap().added().len(), 1);
        assert_eq!(o.len(), before_ops);
    }

    #[test]
    fn retract_requires_exactly_one_clause() {
        let base = base_kb();
        let mut o = Overlay::new(base.symbols().clone());
        assert!(matches!(
            o.apply(1, &retract_op("p(a). p(b)."), &base, &KbConfig::default()),
            Err(OverlayError::RetractNotSingle(2))
        ));
    }

    #[test]
    fn compaction_folds_the_overlay_into_the_base() {
        let base = base_kb();
        let mut o = Overlay::new(base.symbols().clone());
        apply(&mut o, 1, assert_op("p(d). r(new_pred)."), &base);
        apply(&mut o, 2, retract_op("p(a)."), &base);
        let compacted = o.compacted_kb(&base, &KbConfig::default()).unwrap();
        // p: base (b, c) survive, then the added d.
        let p = compacted.lookup("p", 1).unwrap();
        let mut symbols = compacted.symbols().clone();
        let heads: Vec<String> = p
            .clauses()
            .iter()
            .map(|c| format!("{}", clare_term::TermDisplay::new(c.head(), &symbols)))
            .collect();
        assert_eq!(heads, ["p(b)", "p(c)", "p(d)"]);
        // The overlay-new predicate exists in the rebuilt base.
        let r = parse_term("r(X)", &mut symbols).unwrap();
        let (f, a) = r.functor_arity().unwrap();
        assert!(compacted.predicate(f, a).is_some());
        // Untouched predicate q survives verbatim.
        assert_eq!(compacted.lookup("q", 1).unwrap().clauses().len(), 1);
        // Lineage: the rebuilt base descends from the sealed one.
        assert_eq!(compacted.parent_generation(), Some(base.generation()));
    }

    #[test]
    fn rebuild_replays_faithfully() {
        let base = base_kb();
        let mut o = Overlay::new(base.symbols().clone());
        apply(&mut o, 1, assert_op("p(d)."), &base);
        apply(&mut o, 2, retract_op("p(b)."), &base);
        apply(&mut o, 3, assert_op("s(1). s(2)."), &base);
        let (replayed, skipped) = Overlay::rebuild(&base, o.ops(), &KbConfig::default());
        assert_eq!(skipped, 0);
        let p = base.symbols().lookup_atom("p").unwrap();
        assert_eq!(
            replayed.delta(p, 1).unwrap().added().len(),
            o.delta(p, 1).unwrap().added().len()
        );
        assert_eq!(replayed.max_seq(), 3);
        // Both overlays compact to byte-identical clause sets.
        let a = o.compacted_kb(&base, &KbConfig::default()).unwrap();
        let b = replayed.compacted_kb(&base, &KbConfig::default()).unwrap();
        assert_eq!(a.clause_count(), b.clause_count());
    }
}
