//! E10 — §1: scalability toward Warren's medium knowledge base.
//!
//! Two claims frame the paper's motivation:
//!
//! * conventional memory-resident Prolog systems on a 4 MB SUN3/160 "were
//!   unable to cope with more than about 60k clauses and even then the
//!   overhead of loading these clauses into main memory was very high";
//! * the target scale is Warren's estimate — 3000 predicates, 30 000
//!   rules, 3 000 000 facts, ~30 MB.
//!
//! The sweep grows one disk-resident relation (CLARE's design point) and
//! compares a one-shot selective query under three regimes: (i) load
//! everything into RAM first (the conventional system), (ii) software-only
//! disk streaming, (iii) the two-stage CLARE filter. Per-clause rates from
//! the largest measured point extrapolate to the full 3 M facts.

use clare_core::{retrieve, CrsOptions, SearchMode};
use clare_kb::{KbBuilder, KbConfig, KbStats};
use clare_term::builder::TermBuilder;
use clare_workload::{derive_queries, QueryShape};
use std::fmt;

/// Sun3/160 main memory in the paper's benchmark footnote.
pub const SUN3_RAM_BYTES: usize = 4 * 1024 * 1024;

/// One scale point.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleRow {
    /// Facts in the relation.
    pub clauses: usize,
    /// Compiled size on disk (bytes).
    pub disk_bytes: usize,
    /// Estimated memory-resident size (bytes).
    pub ram_bytes: usize,
    /// Fits the Sun3/160's 4 MB?
    pub fits_ram: bool,
    /// Load-into-RAM model: load time + one in-memory query (ms).
    pub load_and_query_ms: f64,
    /// Software-only streaming query (ms).
    pub software_ms: f64,
    /// Two-stage CLARE query (ms).
    pub two_stage_ms: f64,
    /// Queries needed before pre-loading into RAM beats repeated CLARE
    /// retrievals (amortisation point).
    pub amortise_queries: usize,
}

/// The scalability report.
#[derive(Debug, Clone, PartialEq)]
pub struct WarrenReport {
    /// Measured scale points.
    pub rows: Vec<ScaleRow>,
    /// Clause count where the RAM model crosses 4 MB (extrapolated).
    pub ram_limit_clauses: usize,
    /// Extrapolated one-shot query at the full 3M-fact estimate (ms).
    pub full_scale_two_stage_ms: f64,
    /// Extrapolated software streaming time at the full estimate (ms).
    pub full_scale_software_ms: f64,
}

fn build_relation(
    facts: usize,
) -> (
    clare_kb::KnowledgeBase,
    Vec<clare_term::Term>,
    clare_term::Symbol,
) {
    let mut b = KbBuilder::new();
    let constants = (facts / 10).max(100);
    let mut heads = Vec::new();
    let mut clauses = Vec::with_capacity(facts);
    {
        let mut t = TermBuilder::new(b.symbols_mut());
        for i in 0..facts {
            let key = t.atom(&format!("k{}", i % constants));
            let val = t.atom(&format!("v{}", (i * 13) % constants));
            // A structured payload fattens records to a realistic size
            // ("clauses with rules and structures will not be uncommon").
            let d1 = t.int((i % 28) as i64 + 1);
            let d2 = t.int((i % 12) as i64 + 1);
            let date = t.structure("date", vec![d1, d2]);
            let tag1 = t.atom(&format!("tag{}", i % 13));
            let tag2 = t.atom(&format!("tag{}", i % 7));
            let tags = t.list(vec![tag1, tag2]);
            let payload = t.structure("info", vec![date, tags]);
            let fact = t.fact("rel", vec![key, val, payload]);
            if heads.len() < 500 {
                heads.push(fact.head().clone());
            }
            clauses.push(fact);
        }
    }
    for c in clauses {
        b.add_clause("edb", c);
    }
    let miss = b.symbols_mut().intern_atom("never_stored_atom");
    (b.finish(KbConfig::default()), heads, miss)
}

/// Runs the sweep over the given relation sizes.
pub fn run_sizes(sizes: &[usize]) -> WarrenReport {
    let opts = CrsOptions::default();
    let mut rows = Vec::new();
    for &facts in sizes {
        let (kb, heads, miss) = build_relation(facts);
        let stats = KbStats::gather(&kb);
        let queries = derive_queries(&heads, QueryShape::GroundHit, 1, miss, 1);
        let q = &queries[0];

        let sw = retrieve(&kb, q, SearchMode::SoftwareOnly, &opts);
        let two = retrieve(&kb, q, SearchMode::TwoStage, &opts);

        // Load-into-RAM model: stream every module once, pay a per-clause
        // build cost, then the query runs without disk but with the same
        // software filtering.
        let mut load_ns = 0u64;
        for module in kb.modules() {
            for pred in module.predicates() {
                load_ns += pred.file().scan_time(&opts.disk).as_ns();
            }
        }
        load_ns += opts.cost.per_clause_overhead.as_ns() * stats.clauses as u64;
        let in_memory_query_ns =
            sw.stats.software_filter_time.as_ns() + sw.stats.full_unify_time.as_ns();
        let two_ns = two.stats.elapsed.as_ns().max(1);
        // RAM amortisation: after loading, each query costs only the
        // in-memory filter; CLARE pays `two_ns` per query from cold disk.
        let per_query_saving = two_ns.saturating_sub(in_memory_query_ns).max(1);
        let amortise = (load_ns / per_query_saving + 1) as usize;

        rows.push(ScaleRow {
            clauses: stats.clauses,
            disk_bytes: stats.compiled_bytes,
            ram_bytes: stats.in_memory_bytes,
            fits_ram: stats.in_memory_bytes <= SUN3_RAM_BYTES,
            load_and_query_ms: (load_ns + in_memory_query_ns) as f64 / 1e6,
            software_ms: sw.stats.elapsed.as_ns() as f64 / 1e6,
            two_stage_ms: two.stats.elapsed.as_ns() as f64 / 1e6,
            amortise_queries: amortise,
        });
    }

    // Linear extrapolations from the largest measured point.
    let last = rows.last().expect("at least one size");
    let factor = 3_030_000.0 / last.clauses as f64; // Warren: 3M facts + 30k rules
    let ram_per_clause = last.ram_bytes as f64 / last.clauses as f64;
    WarrenReport {
        ram_limit_clauses: (SUN3_RAM_BYTES as f64 / ram_per_clause) as usize,
        full_scale_two_stage_ms: last.two_stage_ms * factor,
        full_scale_software_ms: last.software_ms * factor,
        rows,
    }
}

/// Runs the default sweep (sized for quick regeneration).
pub fn run(scales: &[f64]) -> WarrenReport {
    let sizes: Vec<usize> = scales
        .iter()
        .map(|s| ((3_000_000.0 * s) as usize).max(500))
        .collect();
    run_sizes(&sizes)
}

impl fmt::Display for WarrenReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E10 / §1: scalability toward Warren's 3M-fact knowledge base\n"
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.clauses.to_string(),
                    format!("{:.2} MB", r.disk_bytes as f64 / 1e6),
                    format!("{:.2} MB", r.ram_bytes as f64 / 1e6),
                    if r.fits_ram { "yes" } else { "NO" }.to_owned(),
                    format!("{:.1}", r.load_and_query_ms),
                    format!("{:.1}", r.software_ms),
                    format!("{:.1}", r.two_stage_ms),
                    r.amortise_queries.to_string(),
                ]
            })
            .collect();
        f.write_str(&crate::render_table(
            &[
                "clauses",
                "disk",
                "RAM",
                "fits 4MB",
                "load+query ms",
                "software ms",
                "CLARE ms",
                "amortise after",
            ],
            &rows,
        ))?;
        writeln!(
            f,
            "\n4 MB Sun3/160 RAM exhausted at ~{} clauses (paper footnote: ~60k)",
            self.ram_limit_clauses
        )?;
        writeln!(
            f,
            "extrapolated one-shot query at full Warren scale: CLARE {:.0} ms vs software {:.0} ms",
            self.full_scale_two_stage_ms, self.full_scale_software_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn report() -> &'static WarrenReport {
        static REPORT: OnceLock<WarrenReport> = OnceLock::new();
        REPORT.get_or_init(|| run_sizes(&[2_000, 8_000, 30_000]))
    }

    #[test]
    fn clare_beats_software_streaming_at_scale() {
        let last = report().rows.last().unwrap();
        assert!(
            last.two_stage_ms < last.software_ms,
            "{} vs {}",
            last.two_stage_ms,
            last.software_ms
        );
        assert!(report().full_scale_two_stage_ms < report().full_scale_software_ms);
    }

    #[test]
    fn one_shot_query_cheaper_than_loading_everything() {
        for row in &report().rows {
            assert!(
                row.two_stage_ms < row.load_and_query_ms,
                "{} clauses: loading dominates a one-shot query",
                row.clauses
            );
            assert!(row.amortise_queries > 1);
        }
    }

    #[test]
    fn ram_limit_is_tens_of_thousands_of_clauses() {
        // The paper's footnote says in-RAM systems die around 60k clauses
        // on a 4 MB machine; our accounting lands in the same decade.
        let r = report();
        assert!(
            r.ram_limit_clauses > 10_000 && r.ram_limit_clauses < 300_000,
            "limit: {}",
            r.ram_limit_clauses
        );
    }

    #[test]
    fn costs_grow_with_scale() {
        let r = report();
        for w in r.rows.windows(2) {
            assert!(w[1].clauses > w[0].clauses);
            assert!(w[1].software_ms > w[0].software_ms);
            assert!(w[1].ram_bytes > w[0].ram_bytes);
        }
    }
}
