//! Server-side replication primitives and threshold auto-compaction.
//!
//! The cluster layer (`clare-cluster`) ships committed WAL records from
//! a primary to a backup and applies them through
//! [`ClauseRetrievalServer::apply_replicated`]. These tests pin the
//! core contracts that shipping relies on, with no sockets involved:
//! subscription catch-up is gapless and ordered, replicas converge to a
//! byte-identical answer state, out-of-order delivery is a typed error,
//! duplicates are idempotent — and a growing overlay compacts on its own
//! once it crosses the configured threshold (the unbounded-growth fix).

use clare_core::{ClauseRetrievalServer, CommitError, CrsOptions, SearchMode, SubscribeError};
use clare_kb::{KbBuilder, KbConfig, KnowledgeBase};
use clare_term::parser::parse_term;
use clare_wal::{WalOp, WalRecord};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

fn base_kb() -> KnowledgeBase {
    let mut b = KbBuilder::new();
    b.consult("m", "item(k0, v0). item(k1, v1). other(x).")
        .unwrap();
    b.finish(KbConfig::default())
}

/// A 10k-op overlay compacts without any manual `compact_now` /
/// `spawn_compaction` call: the default size threshold (8192 ops)
/// triggers it from the commit path, and the auto-trigger counter moves.
#[test]
fn overlay_auto_compacts_past_the_size_threshold() {
    let auto_before = clare_trace::metrics().compaction_auto_triggers.get();
    // A plain (non-Arc) server: the trigger must still fire, falling
    // back to a synchronous pass inside the committing call.
    let server = ClauseRetrievalServer::new(base_kb(), CrsOptions::default());
    for batch in 0..100 {
        let ops: Vec<WalOp> = (0..100)
            .map(|i| WalOp::Assert {
                module: "m".into(),
                source: format!("auto(k{}, v{}).", batch, i),
            })
            .collect();
        server.apply_ops(ops).unwrap();
    }
    // 10_000 ops went in; the threshold fired at 8192 and the
    // synchronous fallback folded the overlay before the loop ended.
    let auto_after = clare_trace::metrics().compaction_auto_triggers.get();
    assert!(
        auto_after > auto_before,
        "the size threshold never auto-triggered"
    );
    let (_, overlay) = server.snapshot_merged();
    assert!(
        overlay.len() < 10_000,
        "overlay still holds {} ops — compaction never folded it",
        overlay.len()
    );
    // The folded state still answers correctly.
    let mut symbols = server.symbols();
    let q = parse_term("auto(k42, X)", &mut symbols).unwrap();
    let got = server.retrieve(&q, SearchMode::TwoStage);
    assert_eq!(got.stats.unified, 100);
}

/// Thresholds off (`None`) means no auto-trigger, however large the
/// overlay grows.
#[test]
fn auto_compaction_disabled_when_thresholds_are_none() {
    let auto_before = clare_trace::metrics().compaction_auto_triggers.get();
    let server = ClauseRetrievalServer::new(
        base_kb(),
        CrsOptions {
            overlay_auto_compact_ops: None,
            overlay_auto_compact_age: None,
            ..CrsOptions::default()
        },
    );
    for batch in 0..10 {
        let ops: Vec<WalOp> = (0..100)
            .map(|i| WalOp::Assert {
                module: "m".into(),
                source: format!("noauto(k{}, v{}).", batch, i),
            })
            .collect();
        server.apply_ops(ops).unwrap();
    }
    let (_, overlay) = server.snapshot_merged();
    assert_eq!(overlay.len(), 1000, "nothing may fold on its own");
    assert_eq!(
        clare_trace::metrics().compaction_auto_triggers.get(),
        auto_before
    );
}

/// Subscribing mid-stream delivers a gapless, ordered record sequence:
/// the catch-up covers everything already committed past `from_seq`, and
/// live notifications cover everything after, with no seam.
#[test]
fn subscription_catch_up_and_live_stream_are_gapless() {
    let server = ClauseRetrievalServer::new(
        base_kb(),
        CrsOptions {
            overlay_auto_compact_ops: None,
            ..CrsOptions::default()
        },
    );
    server.assert_source("m", "s(a).").unwrap();
    server.assert_source("m", "s(b).").unwrap();
    server.retract_source("m", "s(a).").unwrap();

    let (tx, rx) = mpsc::channel::<WalRecord>();
    let current = server
        .subscribe_ops(
            0,
            Box::new(move |records| {
                for r in records {
                    if tx.send(r.clone()).is_err() {
                        return false;
                    }
                }
                true
            }),
        )
        .unwrap();
    assert_eq!(current, 3, "three ops committed before the subscription");

    server.assert_source("m", "s(c).").unwrap();
    server
        .apply_ops(vec![
            WalOp::Assert {
                module: "m".into(),
                source: "s(d).".into(),
            },
            WalOp::Assert {
                module: "m".into(),
                source: "s(e).".into(),
            },
        ])
        .unwrap();

    let mut seqs = Vec::new();
    while let Ok(r) = rx.try_recv() {
        seqs.push(r.seq);
    }
    assert_eq!(seqs, vec![1, 2, 3, 4, 5, 6], "gapless and in commit order");
}

/// After a compaction folds the overlay, a subscriber asking to catch up
/// from before the fold gets the typed gap refusal — never a silently
/// incomplete stream.
#[test]
fn subscription_from_before_the_fold_is_refused() {
    let server = ClauseRetrievalServer::new(
        base_kb(),
        CrsOptions {
            overlay_auto_compact_ops: None,
            ..CrsOptions::default()
        },
    );
    for src in ["f(a).", "f(b).", "f(c)."] {
        server.assert_source("m", src).unwrap();
    }
    server.compact_now();
    match server.subscribe_ops(0, Box::new(|_| true)) {
        Err(SubscribeError::Gap { folded_through }) => assert_eq!(folded_through, 3),
        other => panic!("expected Gap, got {other:?}"),
    }
    // From the fold frontier itself, subscription works.
    assert_eq!(server.subscribe_ops(3, Box::new(|_| true)).unwrap(), 3);
}

/// Shipping every committed record to a second server through
/// `apply_replicated` converges the replica to byte-identical answers;
/// duplicates are idempotent and a skipped record is a typed gap.
#[test]
fn replica_converges_and_rejects_gaps() {
    let opts = || CrsOptions {
        overlay_auto_compact_ops: None,
        ..CrsOptions::default()
    };
    let primary = ClauseRetrievalServer::new(base_kb(), opts());
    let replica = ClauseRetrievalServer::new(base_kb(), opts());

    let shipped: Arc<Mutex<Vec<WalRecord>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&shipped);
    primary
        .subscribe_ops(
            0,
            Box::new(move |records| {
                sink.lock().unwrap().extend(records.iter().cloned());
                true
            }),
        )
        .unwrap();

    primary
        .apply_ops(
            ["r(a).", "r(b).", "r(c)."]
                .map(|s| WalOp::Assert {
                    module: "m".into(),
                    source: s.into(),
                })
                .to_vec(),
        )
        .unwrap();
    primary.retract_source("m", "r(b).").unwrap();
    primary.assert_source("m", "item(k9, v9).").unwrap();

    let records = shipped.lock().unwrap().clone();
    assert_eq!(records.len(), 5);
    // A gap (shipping record 2 first) is refused with the expected seq.
    match replica.apply_replicated(&records[1]) {
        Err(CommitError::ReplicaGap { expected }) => assert_eq!(expected, 1),
        other => panic!("expected ReplicaGap, got {other:?}"),
    }
    // In order: each apply reports the frontier; duplicates are skipped.
    for r in &records {
        assert_eq!(replica.apply_replicated(r).unwrap(), r.seq);
    }
    assert_eq!(replica.apply_replicated(&records[2]).unwrap(), 5);

    // Byte-identical answers on both sides.
    let mut symbols = primary.symbols();
    for q in ["r(X)", "item(K, V)", "other(X)"] {
        let query = parse_term(q, &mut symbols).unwrap();
        let a = primary.retrieve(&query, SearchMode::TwoStage);
        let b = replica.retrieve(&query, SearchMode::TwoStage);
        assert_eq!(a, b, "replica diverged on {q}");
    }
    assert_eq!(replica.current_seq(), primary.current_seq());
}

/// An op too large to frame is refused by the commit path even with no
/// WAL attached — the replica/memory path enforces the same bound the
/// durable path does.
#[test]
fn oversized_op_is_refused_without_a_wal() {
    let server = ClauseRetrievalServer::new(base_kb(), CrsOptions::default());
    let err = server
        .assert_source(&"m".repeat(70_000), "p(a).")
        .unwrap_err();
    match err {
        CommitError::Wal(clare_wal::WalError::OpTooLarge { len, .. }) => assert_eq!(len, 70_000),
        other => panic!("expected OpTooLarge, got {other:?}"),
    }
    // Nothing was published and the sequence did not advance.
    assert_eq!(server.current_seq(), 0);
}
