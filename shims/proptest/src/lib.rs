//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the workspace vendors a
//! deterministic, sampling-based property tester exposing the `proptest`
//! API subset its tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_recursive` / `boxed`, range and regex-class string strategies,
//! tuples, [`collection::vec`] / [`collection::hash_set`], [`option::of`],
//! `prop_oneof!`, and the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros.
//!
//! Differences from upstream: inputs are sampled from a per-test
//! deterministic seed (derived from the test name), and failures report
//! the case number instead of shrinking to a minimal input. Rerunning is
//! fully reproducible.

#![warn(missing_docs)]

pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, TestRng, Union};

/// Per-test configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s with up to `size.end - 1` elements.
    #[derive(Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates hash sets of values drawn from `element`. The set may be
    /// smaller than the drawn target size when the element domain is
    /// narrow (duplicates are discarded, as upstream does).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.usize_in(self.size.clone());
            let mut out = HashSet::with_capacity(target);
            for _ in 0..target.saturating_mul(8).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use crate::strategy::{Strategy, TestRng};

    /// Strategy yielding `None` a quarter of the time, else `Some`.
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    /// Wraps `inner`'s values in `Option`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Runs each property as `cases` deterministic random samples.
///
/// Matches the upstream invocation shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(any::<bool>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(
                    ::core::module_path!(), "::", ::core::stringify!($name)
                ));
                $(let $arg = $strat;)+
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&$arg, &mut __rng);)+
                    let __outcome: ::core::result::Result<(), ::std::string::String> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(__message) = __outcome {
                        ::core::panic!(
                            "property `{}` failed at case {}/{}: {}",
                            ::core::stringify!($name), __case, __config.cases, __message
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts within a `proptest!` body; failure reports the sampled case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` == `{}` ({:?} vs {:?})",
            ::core::stringify!($left), ::core::stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{} ({:?} vs {:?})",
            ::std::format!($($fmt)+), __l, __r
        );
    }};
}
