//! The CLARE core: Clause Retrieval Server (CRS) and resolution engine.
//!
//! "An independent software module, the Clause Retrieval Server (CRS), is
//! being developed which links CLARE with the PDBM Prolog system. In
//! practice, there will be four searching modes during a clause retrieval:
//! (a) by software only …; (b) using FS1 only …; (c) using FS2 only …;
//! (d) using both FS1 and FS2 — a two-stage hardware filter." (§2.2.)
//!
//! This crate integrates every substrate in the workspace:
//!
//! * [`crs`] — the four [`SearchMode`]s with a full timing pipeline
//!   (disk streaming, FS1 index scan at 4.5 MB/s, FS2 double-buffered
//!   matching at Table 1 costs, software costs on an M68020-class host),
//!   plus the mode-selection heuristic the paper sketches.
//! * [`resolve`] — an SLD resolution engine that performs clause lookup
//!   through the CRS, so whole Prolog queries run end-to-end against
//!   disk-resident knowledge bases.
//! * [`server`] — [`ClauseRetrievalServer`]: shared, concurrent access for
//!   multiple clients with read/write transaction semantics.
//! * [`cost`] — the software cost model used by mode (a) and by the final
//!   full-unification stage of every mode.
//!
//! # Examples
//!
//! ```
//! use clare_core::{retrieve, CrsOptions, SearchMode};
//! use clare_kb::{KbBuilder, KbConfig};
//! use clare_term::parser::parse_term;
//!
//! let mut builder = KbBuilder::new();
//! builder.consult("m", "p(a, 1). p(b, 2). p(a, 3).")?;
//! // Parse the query in the same symbol namespace, then compile.
//! let query = parse_term("p(a, X)", builder.symbols_mut())?;
//! let kb = builder.finish(KbConfig::default());
//!
//! let outcome = retrieve(&kb, &query, SearchMode::TwoStage, &CrsOptions::default());
//! assert_eq!(outcome.stats.unified, 2); // p(a, 1) and p(a, 3)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod board;
pub mod budget;
pub mod cache;
pub mod cost;
pub mod crs;
pub mod resolve;
pub mod server;

pub use board::ClareBoard;
pub use budget::{BudgetExceeded, BudgetReason, CancelToken, QueryBudget};
pub use cache::CacheConfig;
pub use cost::SoftwareCostModel;
pub use crs::{
    choose_mode, retrieve, retrieve_batch, retrieve_batch_budgeted, retrieve_batch_merged,
    retrieve_budgeted, retrieve_merged, retrieve_merged_budgeted, CrsOptions, Retrieval,
    RetrievalStats, SearchMode,
};
pub use resolve::{
    solve, solve_goals, solve_goals_budgeted, solve_goals_merged, solve_goals_merged_budgeted,
    solve_merged, ModeChoice, Solution, SolveOptions, SolveOutcome, SolveStats,
};
pub use server::{
    ClauseRetrievalServer, CommitError, CommitReceipt, CompactionOutcome, LogWatcher, ServerStats,
    SubscribeError, UpdateTransaction,
};

pub use clare_simd::SimdLevel;
// The mutable-KB substrate (write-ahead log + memtable overlay) the server
// builds on, re-exported so front-ends can speak its vocabulary directly.
pub use clare_wal::{Overlay, OverlayError, ReplayReport, Wal, WalError, WalOp, WalRecord};
