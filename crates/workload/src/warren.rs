//! Warren-scale knowledge bases.
//!
//! D.H.D. Warren's medium-size estimate (§1 of the paper): "of the order
//! of 3000 predicates, 30000 rules, 3000000 facts, and 30 Mbytes total
//! size". [`WarrenSpec::full`] generates exactly those proportions;
//! [`WarrenSpec::scaled`] shrinks everything by a factor so tests and
//! benches stay laptop-friendly while preserving the shape (ratio of
//! rules to facts, predicate fan-out, value skew).

use clare_kb::KbBuilder;
use clare_term::builder::TermBuilder;
use clare_term::Term;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a Warren-style knowledge base.
#[derive(Debug, Clone)]
pub struct WarrenSpec {
    /// Number of predicates.
    pub predicates: usize,
    /// Number of rules, distributed over ~10% of the predicates.
    pub rules: usize,
    /// Number of facts, distributed over the remaining predicates.
    pub facts: usize,
    /// Size of the constant pool facts draw from (controls selectivity).
    pub constants: usize,
    /// RNG seed.
    pub seed: u64,
}

impl WarrenSpec {
    /// Warren's full estimate: 3000 predicates, 30 000 rules, 3 000 000
    /// facts (~30 MB compiled).
    pub fn full() -> Self {
        WarrenSpec {
            predicates: 3000,
            rules: 30_000,
            facts: 3_000_000,
            constants: 100_000,
            seed: 0x03A8_8E11,
        }
    }

    /// The full estimate scaled by `factor` (e.g. `0.01` for a 1% model:
    /// 30 predicates, 300 rules, 30 000 facts).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn scaled(factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        let full = Self::full();
        let scale = |n: usize| ((n as f64 * factor).round() as usize).max(1);
        WarrenSpec {
            predicates: scale(full.predicates),
            rules: scale(full.rules),
            facts: scale(full.facts),
            constants: scale(full.constants).max(100),
            seed: full.seed,
        }
    }

    /// Populates `module` with the knowledge base.
    pub fn generate(&self, builder: &mut KbBuilder, module: &str) -> WarrenSummary {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // ~10% of predicates are rule heads, the rest hold facts.
        let rule_preds = (self.predicates / 10).max(1);
        let fact_preds = (self.predicates - rule_preds).max(1);
        let mut sample_heads = Vec::new();
        let mut clauses = Vec::with_capacity(self.facts + self.rules);
        {
            let mut t = TermBuilder::new(builder.symbols_mut());
            // Facts: skewed key distribution (squaring a uniform variate
            // gives a gentle power law) over a bounded constant pool.
            for i in 0..self.facts {
                let pred_index = i % fact_preds;
                let pred = format!("f{pred_index}");
                let arity = 2 + (pred_index % 3); // arities 2..=4, fixed per predicate
                let mut args = Vec::with_capacity(arity);
                for _ in 0..arity {
                    let u: f64 = rng.gen();
                    let k = ((u * u) * self.constants as f64) as usize;
                    if rng.gen_bool(0.15) {
                        args.push(t.int((k % 100_000) as i64));
                    } else {
                        args.push(t.atom(&format!("k{k}")));
                    }
                }
                let fact = t.fact(&pred, args);
                if (sample_heads.len() < 1000 || i % 997 == 0) && sample_heads.len() < 2000 {
                    sample_heads.push(fact.head().clone());
                }
                clauses.push(fact);
            }
            // Rules: each head `r<i>(X, Y)` with 1–3 body goals over fact
            // predicates, sharing variables head↔body.
            for i in 0..self.rules {
                t.reset_vars();
                let x = t.fresh_var();
                let y = t.fresh_var();
                let head = t.structure(&format!("r{}", i % rule_preds), vec![x.clone(), y.clone()]);
                let n_goals = 1 + (i % 3);
                let mut body = Vec::with_capacity(n_goals);
                let mut link = x;
                for g in 0..n_goals {
                    // Goals target arity-2 fact predicates (index ≡ 0 mod 3).
                    let p = rng.gen_range(0..fact_preds);
                    let target = format!("f{}", p - (p % 3));
                    let next = if g + 1 == n_goals {
                        y.clone()
                    } else {
                        t.fresh_var()
                    };
                    body.push(t.structure(&target, vec![link, next.clone()]));
                    link = next;
                }
                clauses.push(t.rule(head, body).expect("structure head"));
            }
        }
        for clause in clauses {
            builder.add_clause(module, clause);
        }
        WarrenSummary {
            fact_predicates: fact_preds,
            rule_predicates: rule_preds,
            sample_heads,
        }
    }
}

/// Generation summary, for deriving queries.
#[derive(Debug, Clone)]
pub struct WarrenSummary {
    /// Predicates holding facts.
    pub fact_predicates: usize,
    /// Predicates holding rules.
    pub rule_predicates: usize,
    /// A sample of generated fact heads (query targets).
    pub sample_heads: Vec<Term>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_kb::{KbConfig, KbStats};

    #[test]
    fn scaled_spec_preserves_proportions() {
        let s = WarrenSpec::scaled(0.001);
        assert_eq!(s.predicates, 3);
        assert_eq!(s.rules, 30);
        assert_eq!(s.facts, 3000);
        let full = WarrenSpec::full();
        assert_eq!(full.facts / full.rules, s.facts / s.rules);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn zero_factor_rejected() {
        WarrenSpec::scaled(0.0);
    }

    #[test]
    fn generates_declared_counts() {
        let spec = WarrenSpec::scaled(0.002);
        let mut b = KbBuilder::new();
        let summary = spec.generate(&mut b, "warren");
        let kb = b.finish(KbConfig::default());
        let stats = KbStats::gather(&kb);
        assert_eq!(stats.clauses, spec.facts + spec.rules);
        assert_eq!(stats.rules, spec.rules);
        assert_eq!(stats.ground_facts, spec.facts);
        assert!(stats.predicates <= spec.predicates + 1);
        assert!(!summary.sample_heads.is_empty());
    }

    #[test]
    fn rule_bodies_reference_fact_predicates() {
        let spec = WarrenSpec {
            predicates: 20,
            rules: 10,
            facts: 200,
            constants: 100,
            seed: 3,
        };
        let mut b = KbBuilder::new();
        spec.generate(&mut b, "m");
        let kb = b.finish(KbConfig::default());
        let rules = kb.lookup("r0", 2).expect("rule predicate exists");
        assert!(!rules.clauses().is_empty());
        for clause in rules.clauses() {
            assert!(!clause.is_fact());
            for goal in clause.body() {
                let (f, a) = goal.functor_arity().expect("goals are structures");
                assert_eq!(a, 2);
                assert!(kb.symbols().atom_text(f).starts_with('f'));
            }
        }
    }

    #[test]
    fn compiled_size_tracks_scale() {
        let small = {
            let mut b = KbBuilder::new();
            WarrenSpec::scaled(0.0005).generate(&mut b, "m");
            b.finish(KbConfig::default()).compiled_bytes()
        };
        let larger = {
            let mut b = KbBuilder::new();
            WarrenSpec::scaled(0.002).generate(&mut b, "m");
            b.finish(KbConfig::default()).compiled_bytes()
        };
        assert!(
            larger > small * 2,
            "size grows with scale: {small} -> {larger}"
        );
    }
}
