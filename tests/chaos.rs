//! Seeded chaos harness: deterministic fault schedules driven through the
//! full disk → FS2 → net stack.
//!
//! Every schedule is one `(seed, fault plan)` pair installed as a
//! [`DeterministicInjector`]; a failing seed reproduces exactly by
//! re-running with the same number. The invariant under *any* schedule is
//! **correct or flagged**: a request either returns the fault-free answer
//! set (possibly marked `degraded` with quarantined tracks), or it
//! surfaces a typed error — never a panic, never a silently wrong answer.
//!
//! The schedule count scales with the `CLARE_CHAOS_SCHEDULES` environment
//! variable (CI runs 10 000; the local default keeps `cargo test` quick).
//! Set `CLARE_CHAOS_REPORT=1` to dump the end-of-run metrics counters to
//! `target/chaos-metrics.json`.

use clare::prelude::*;
use clare_fault::{DeterministicInjector, FaultPlan, FaultSite};
use std::sync::Arc;
use std::time::Duration;

/// Total seeded schedules to run, split across the harness's tests.
fn schedules() -> u64 {
    std::env::var("CLARE_CHAOS_SCHEDULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300)
        .max(30)
}

/// Runs `f` with panic messages silenced: injected worker deaths are part
/// of the experiment, and their backtraces would drown real failures.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// A knowledge base big enough that its main predicate spans several
/// disk tracks — quarantining one track must not take the others along.
fn chaos_kb() -> (KnowledgeBase, Vec<Term>) {
    let mut b = KbBuilder::new();
    let facts: String = (0..3000)
        .map(|i| format!("fact(k{}, v{}).", i % 120, i % 7))
        .collect::<Vec<_>>()
        .join("\n");
    b.consult("chaos", &facts).unwrap();
    let kb = b.finish(KbConfig::default());

    let functor = kb.symbols().lookup_atom("fact").unwrap();
    let tracks = kb.predicate(functor, 2).unwrap().file().tracks().len();
    assert!(tracks >= 4, "chaos KB spans only {tracks} tracks");

    let mut symbols = kb.symbols().clone();
    let queries = ["fact(k100, X)", "fact(K, v3)", "fact(k7, v0)"]
        .iter()
        .map(|q| parse_term(q, &mut symbols).unwrap())
        .collect();
    (kb, queries)
}

fn install(seed: u64, plan: FaultPlan) -> clare_fault::InstallGuard {
    clare_fault::install(Arc::new(DeterministicInjector::new(seed, plan)))
}

/// Writes the global metrics counters as JSON when `CLARE_CHAOS_REPORT`
/// is set, so the CI chaos-smoke job can archive what actually happened.
fn maybe_report() {
    if std::env::var("CLARE_CHAOS_REPORT").is_err() {
        return;
    }
    let snapshot = clare_trace::metrics().snapshot();
    let mut json = String::from("{\n");
    for (i, (name, v)) in snapshot.counters.iter().enumerate() {
        let sep = if i + 1 == snapshot.counters.len() {
            ""
        } else {
            ","
        };
        json.push_str(&format!("  \"{name}\": {v}{sep}\n"));
    }
    json.push_str("}\n");
    let _ = std::fs::create_dir_all("target");
    let _ = std::fs::write("target/chaos-metrics.json", json);
}

/// Disk corruption and FS2 worker deaths, together and separately, across
/// the full schedule budget: the unified answer count never moves, any
/// quarantine is flagged `degraded`, and nothing escapes as a panic.
#[test]
fn storage_and_sweep_chaos_is_correct_or_flagged() {
    let (kb, queries) = chaos_kb();
    let opts = CrsOptions {
        fs2_parallelism: Some(4),
        ..CrsOptions::default()
    };
    let modes = [SearchMode::Fs2Only, SearchMode::TwoStage];
    let reference: Vec<Retrieval> = queries
        .iter()
        .flat_map(|q| modes.iter().map(|&m| retrieve(&kb, q, m, &opts)))
        .collect();

    let total = schedules();
    let mut quarantines = 0u64;
    quiet_panics(|| {
        for seed in 0..total {
            // Rotate the fault surface: disk only, workers only, both;
            // sweep the intensity so light and heavy storms both run.
            let permille = 100 + (seed % 8) as u32 * 100;
            let plan = match seed % 3 {
                0 => FaultPlan::none().with(FaultSite::DiskTrackRead, permille),
                1 => FaultPlan::none().with(FaultSite::Fs2Worker, permille),
                _ => FaultPlan::none()
                    .with(FaultSite::DiskTrackRead, permille)
                    .with(FaultSite::Fs2Worker, permille),
            };
            let _guard = install(seed, plan);
            for (pair, want) in queries
                .iter()
                .flat_map(|q| modes.iter().map(move |&m| (q, m)))
                .zip(&reference)
            {
                let (query, mode) = pair;
                let got = retrieve(&kb, query, mode, &opts);
                assert_eq!(
                    got.stats.unified, want.stats.unified,
                    "seed {seed}: the answer set moved under faults"
                );
                assert!(
                    got.stats.candidates >= want.stats.unified,
                    "seed {seed}: the filter dropped a true answer"
                );
                if got.stats.quarantined_tracks > 0 {
                    assert!(got.stats.degraded, "seed {seed}: unflagged quarantine");
                    quarantines += 1;
                }
            }
        }
    });
    assert!(
        quarantines > 0,
        "no schedule ever quarantined a track — the harness is not biting"
    );
    maybe_report();
}

/// Torn `.ckb` writes and corrupted reads across the schedule budget:
/// `save`/`load` round-trips either reproduce the exact knowledge base or
/// fail with a typed error — no panic, no silently different KB.
#[test]
fn kb_io_chaos_never_loads_a_corrupt_kb() {
    let (kb, queries) = chaos_kb();
    let opts = CrsOptions::default();
    let reference: Vec<usize> = queries
        .iter()
        .map(|q| retrieve(&kb, q, SearchMode::TwoStage, &opts).stats.unified)
        .collect();

    let total = schedules();
    let mut survived = 0u64;
    let mut refused = 0u64;
    for seed in 0..total {
        let permille = 1 + (seed % 40) as u32; // subtle, not saturating
        let plan = match seed % 3 {
            0 => FaultPlan::none().with(FaultSite::KbRead, permille),
            1 => FaultPlan::none().with(FaultSite::CkbWrite, permille),
            _ => FaultPlan::none()
                .with(FaultSite::KbRead, permille)
                .with(FaultSite::CkbWrite, permille),
        };
        let _guard = install(seed, plan);
        let mut bytes = Vec::new();
        let saved = clare_kb::io::save(&kb, &mut bytes);
        if saved.is_err() {
            refused += 1; // a torn write was caught at save time
            continue;
        }
        match clare_kb::io::load(&mut bytes.as_slice(), KbConfig::default()) {
            Ok(loaded) => {
                let got: Vec<usize> = queries
                    .iter()
                    .map(|q| {
                        retrieve(&loaded, q, SearchMode::TwoStage, &opts)
                            .stats
                            .unified
                    })
                    .collect();
                assert_eq!(got, reference, "seed {seed}: a corrupt KB slipped through");
                survived += 1;
            }
            Err(_) => refused += 1,
        }
    }
    assert_eq!(survived + refused, total);
    assert!(survived > 0, "every schedule failed — checksums too eager?");
    assert!(refused > 0, "no schedule ever corrupted the stream");
    maybe_report();
}

/// Cache-poisoning schedules: a cache-enabled [`ClauseRetrievalServer`]
/// under disk-corruption and worker-death storms. The invariant is that
/// the cache can never launder a faulted answer into a later fault-free
/// request: only non-degraded answers are cacheable, a non-degraded
/// answer must be byte-identical to the fault-free serial reference, and
/// every track quarantine bumps the predicate epoch so entries cached
/// *before* the quarantine verdict was memoized cannot survive it.
#[test]
fn cache_hits_never_serve_poisoned_answers_under_chaos() {
    let (kb, queries) = chaos_kb();
    let opts = CrsOptions {
        fs2_parallelism: Some(4),
        ..CrsOptions::default()
    };
    // Fault-free serial reference, computed before any injector installs.
    let reference: Vec<Retrieval> = queries
        .iter()
        .map(|q| retrieve(&kb, q, SearchMode::TwoStage, &opts))
        .collect();
    let server = ClauseRetrievalServer::new(kb, opts.clone());

    let total = schedules();
    let mut quarantines = 0u64;
    let hits_before = clare_trace::metrics().cache_hits.get();
    quiet_panics(|| {
        for seed in 0..total {
            let permille = 100 + (seed % 8) as u32 * 100;
            let plan = match seed % 3 {
                0 => FaultPlan::none().with(FaultSite::DiskTrackRead, permille),
                1 => FaultPlan::none().with(FaultSite::Fs2Worker, permille),
                _ => FaultPlan::none()
                    .with(FaultSite::DiskTrackRead, permille)
                    .with(FaultSite::Fs2Worker, permille),
            };
            let guard = install(seed, plan);
            for (query, want) in queries.iter().zip(&reference) {
                let got = server.retrieve(query, SearchMode::TwoStage);
                assert_eq!(
                    got.stats.unified, want.stats.unified,
                    "seed {seed}: the answer set moved under faults"
                );
                quarantines += got.stats.quarantined_tracks as u64;
                if !got.stats.degraded {
                    // The cacheable subset: anything here may be served
                    // verbatim to a later request, so it must already BE
                    // the fault-free answer, byte for byte.
                    assert_eq!(
                        got, *want,
                        "seed {seed}: a non-degraded (cacheable) answer diverged"
                    );
                }
            }
            // Calm after the storm: with the injector gone, the cached
            // server must agree byte-for-byte with a fresh uncached
            // pipeline run on its current snapshot. A storm-era entry
            // outliving the quarantine verdicts it predates would show
            // up right here.
            drop(guard);
            for query in &queries {
                let got = server.retrieve(query, SearchMode::TwoStage);
                let fresh = retrieve(&server.snapshot(), query, SearchMode::TwoStage, &opts);
                assert_eq!(
                    got, fresh,
                    "seed {seed}: post-storm cache state diverged from the pipeline"
                );
            }
        }
    });
    assert!(
        quarantines > 0,
        "no schedule ever quarantined a track — the harness is not biting"
    );
    // Liveness: repeats against one server across {total} schedules must
    // have produced cache hits. Sibling tests in this binary can only
    // inflate the process-wide counter; the precise hit/skip accounting
    // lives in crates/core/tests/cache_counters.rs.
    assert!(
        clare_trace::metrics().cache_hits.get() > hits_before,
        "the cache never once served a hit"
    );
    maybe_report();
}

/// Network chaos over a live loopback daemon: dropped, truncated, and
/// bit-flipped frames in both directions, with frame checksums
/// negotiated. Every retrieval either matches the direct in-process
/// answer exactly or fails with a typed error after bounded retries; the
/// daemon itself never wedges and keeps serving clean clients afterwards.
#[test]
fn net_chaos_over_loopback_is_correct_or_flagged() {
    let (kb, queries) = chaos_kb();
    let crs = Arc::new(ClauseRetrievalServer::new(kb, CrsOptions::default()));
    let server = NetServer::bind(Arc::clone(&crs), "127.0.0.1:0", NetConfig::default()).unwrap();
    let reference: Vec<Retrieval> = queries
        .iter()
        .map(|q| crs.retrieve(q, SearchMode::TwoStage))
        .collect();

    // TCP round-trips dominate here, so the net share of the budget is
    // scaled down; dropped frames each cost one client read timeout.
    let total = (schedules() / 25).max(20);
    let cfg = ClientConfig {
        read_timeout: Duration::from_millis(300),
        reconnect_retries: 4,
        busy_retries: 2,
        ..ClientConfig::default()
    };
    let mut flagged = 0u64;
    let injected_before = clare_fault::injected_total();
    let reconnects_before = clare_trace::metrics().net_client_reconnects.get();
    for seed in 0..total {
        let permille = 50 + (seed % 6) as u32 * 50;
        let plan = match seed % 3 {
            0 => FaultPlan::none().with(FaultSite::NetServerSend, permille),
            1 => FaultPlan::none().with(FaultSite::NetClientSend, permille),
            _ => FaultPlan::none()
                .with(FaultSite::NetServerSend, permille)
                .with(FaultSite::NetClientSend, permille),
        };
        let _guard = install(seed, plan);
        let Ok(mut client) = NetClient::connect(server.local_addr(), cfg.clone()) else {
            flagged += 1; // the handshake itself may eat a fault
            continue;
        };
        for (query, want) in queries.iter().zip(&reference) {
            match client.retrieve(query, SearchMode::TwoStage) {
                Ok(got) => assert_eq!(
                    &got, want,
                    "seed {seed}: a faulted connection returned a different answer"
                ),
                Err(_) => flagged += 1, // flagged, never silently wrong
            }
        }
    }
    // Recovery (reconnect-and-replay) is the *desired* outcome, so a zero
    // `flagged` count is fine — but the storm must demonstrably have hit,
    // and hits must have been either recovered or flagged.
    let injected = clare_fault::injected_total() - injected_before;
    let reconnects = clare_trace::metrics().net_client_reconnects.get() - reconnects_before;
    assert!(injected > 0, "no net fault was ever injected");
    assert!(
        reconnects > 0 || flagged > 0,
        "{injected} faults injected yet none was ever observed by the client"
    );

    // With the injector gone the same daemon serves a clean client
    // perfectly: nothing wedged, nothing leaked into later connections.
    let mut client = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
    for (query, want) in queries.iter().zip(&reference) {
        assert_eq!(&client.retrieve(query, SearchMode::TwoStage).unwrap(), want);
    }
    server.shutdown();
    maybe_report();
}

/// WAL kill-and-recover chaos: a mutable server takes a seeded stream of
/// assert/retract commits (with compactions mixed in) while torn-append
/// faults cut the power mid-batch. After every "crash" the log is
/// reopened — sometimes with extra garbage scribbled on the tail — and
/// the recovered server must (a) hold every acknowledged write, (b) never
/// resurrect more than was attempted, and (c) answer byte-identically to
/// a reference server that applied the recovered prefix from scratch.
#[test]
fn wal_kill_and_recover_loses_no_acked_write() {
    /// Deterministic per-seed stream: xorshift64*.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// A small deterministic base; rebuilt identically for the crashed
    /// server, the recovered server, and the from-scratch reference, so
    /// all three share one symbol lineage.
    fn base_kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        let facts: String = (0..120)
            .map(|i| format!("item(k{}, v{}).", i % 12, i % 5))
            .collect::<Vec<_>>()
            .join("\n");
        b.consult("chaos", &facts).unwrap();
        b.finish(KbConfig::default())
    }

    let total = (schedules() / 10).max(20);
    let wal_faults_before = clare_fault::injected_counts()[FaultSite::WalAppend.index()];
    let mut crashed = 0u64;
    let mut survived = 0u64;
    for seed in 0..total {
        let path =
            std::env::temp_dir().join(format!("clare-chaos-wal-{}-{seed}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);

        // Phase 1: a server with the WAL attached takes commits under a
        // torn-append storm until it finishes or "loses power".
        let server = ClauseRetrievalServer::new(base_kb(), CrsOptions::default());
        server.attach_wal(&path).unwrap();
        let permille = 30 + (seed % 8) as u32 * 30;
        let guard = install(seed, FaultPlan::none().with(FaultSite::WalAppend, permille));
        let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        let mut attempted: Vec<WalOp> = Vec::new();
        let mut acked = 0usize;
        let mut did_crash = false;
        for step in 0..30 {
            let batch: Vec<WalOp> = (0..1 + rng.below(3))
                .map(|_| {
                    if rng.below(4) == 0 && !attempted.is_empty() {
                        // Retract something attempted earlier (possibly
                        // already gone: quiet retract/1 no-op).
                        let i = rng.below(attempted.len() as u64) as usize;
                        let (WalOp::Assert { module, source } | WalOp::Retract { module, source }) =
                            &attempted[i];
                        WalOp::Retract {
                            module: module.clone(),
                            source: source.clone(),
                        }
                    } else {
                        WalOp::Assert {
                            module: "chaos".into(),
                            source: format!("grew(s{step}, n{}).", rng.below(6)),
                        }
                    }
                })
                .collect();
            match server.apply_ops(batch.clone()) {
                Ok(receipt) => {
                    assert!(receipt.durable, "seed {seed}: WAL attached but not durable");
                    attempted.extend(batch);
                    acked = attempted.len();
                }
                Err(CommitError::Wal(_)) => {
                    // Power loss mid-append: some prefix of the batch may
                    // have reached the platter, but nothing was acked.
                    attempted.extend(batch);
                    did_crash = true;
                    break;
                }
                Err(e) => panic!("seed {seed}: well-formed op rejected: {e}"),
            }
            if rng.below(6) == 0 {
                let outcome = server.compact_now();
                assert!(
                    outcome != CompactionOutcome::Failed,
                    "seed {seed}: compaction failed mid-stream"
                );
            }
        }
        drop(guard);
        drop(server); // the crash: only the WAL file survives

        // Some crashes also rot the tail: scribble garbage after the
        // last intact frame and let recovery truncate it away.
        if seed % 4 == 0 {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[0xAB; 13]).unwrap();
        }

        // Phase 2: recovery. Replay must hand back every acked write (a
        // durable prefix at least `acked` long) and nothing invented.
        let recovered = ClauseRetrievalServer::new(base_kb(), CrsOptions::default());
        let report = recovered.attach_wal(&path).unwrap();
        assert!(
            report.records >= acked,
            "seed {seed}: replay lost acked writes ({} < {acked})",
            report.records
        );
        assert!(
            report.records <= attempted.len(),
            "seed {seed}: replay invented records ({} > {})",
            report.records,
            attempted.len()
        );
        if did_crash {
            crashed += 1;
        } else {
            survived += 1;
            assert_eq!(
                report.records, acked,
                "seed {seed}: clean run replay mismatch"
            );
        }

        // Phase 3: byte-identity. A reference server applies the same
        // recovered prefix from scratch (no WAL); every mode must agree
        // exactly, before and after compacting the recovered state.
        let reference = ClauseRetrievalServer::new(base_kb(), CrsOptions::default());
        if report.records > 0 {
            reference
                .apply_ops(attempted[..report.records].to_vec())
                .unwrap();
        }
        let mut symbols = recovered.symbols();
        let queries: Vec<Term> = ["item(k3, X)", "grew(A, B)", "grew(s7, n2)", "item(K, v1)"]
            .iter()
            .map(|q| parse_term(q, &mut symbols).unwrap())
            .collect();
        for query in &queries {
            for &mode in &SearchMode::ALL {
                assert_eq!(
                    recovered.retrieve(query, mode),
                    reference.retrieve(query, mode),
                    "seed {seed}: recovered answers diverged ({mode:?})"
                );
            }
        }
        let outcome = recovered.compact_now();
        assert!(outcome != CompactionOutcome::Failed, "seed {seed}");
        for query in &queries {
            for &mode in &SearchMode::ALL {
                assert_eq!(
                    recovered.retrieve(query, mode).stats.unified,
                    reference.retrieve(query, mode).stats.unified,
                    "seed {seed}: compacting the recovered state moved answers"
                );
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    let wal_faults =
        clare_fault::injected_counts()[FaultSite::WalAppend.index()] - wal_faults_before;
    assert!(wal_faults > 0, "no torn append was ever injected");
    assert!(
        crashed > 0,
        "no schedule ever crashed — the harness is not biting"
    );
    assert!(
        survived > 0,
        "every schedule crashed — nothing tested clean recovery"
    );
    maybe_report();
}

/// Reactor event-loop chaos: short reads that split frames (and their
/// length prefixes) across readiness events, spurious `EAGAIN`-style
/// wakeups that deliver nothing, and torn writes that cut a flush short
/// mid-frame. Unlike `NetServerSend` faults these perturb *scheduling*,
/// not bytes — the reassembly and resumed-write paths must make them
/// invisible: every answer byte-identical, no CRC failures, the client
/// never even reconnects. A bounded number of timeouts under the heaviest
/// storms is the acceptable *flagged* outcome.
#[test]
fn reactor_read_write_chaos_is_transparent() {
    let (kb, queries) = chaos_kb();
    let crs = Arc::new(ClauseRetrievalServer::new(kb, CrsOptions::default()));
    let cfg = NetConfig {
        server_mode: clare_net::ServerMode::Reactor,
        ..NetConfig::default()
    };
    let server = NetServer::bind(Arc::clone(&crs), "127.0.0.1:0", cfg).unwrap();
    let reference: Vec<Retrieval> = queries
        .iter()
        .map(|q| crs.retrieve(q, SearchMode::TwoStage))
        .collect();

    let total = (schedules() / 25).max(20);
    let client_cfg = ClientConfig {
        read_timeout: Duration::from_secs(2),
        reconnect_retries: 2,
        ..ClientConfig::default()
    };
    let counts_before = clare_fault::injected_counts();
    let crc_before = clare_trace::metrics().net_frame_crc_failures.get();
    let mut served = 0u64;
    let mut flagged = 0u64;
    for seed in 0..total {
        let permille = 100 + (seed % 8) as u32 * 100;
        let plan = match seed % 3 {
            0 => FaultPlan::none().with(FaultSite::NetReactorRead, permille),
            1 => FaultPlan::none().with(FaultSite::NetReactorWrite, permille),
            _ => FaultPlan::none()
                .with(FaultSite::NetReactorRead, permille)
                .with(FaultSite::NetReactorWrite, permille),
        };
        let _guard = install(seed, plan);
        let Ok(mut client) = NetClient::connect(server.local_addr(), client_cfg.clone()) else {
            flagged += 1;
            continue;
        };
        for (query, want) in queries.iter().zip(&reference) {
            match client.retrieve(query, SearchMode::TwoStage) {
                Ok(got) => {
                    assert_eq!(
                        &got, want,
                        "seed {seed}: a scheduling fault changed answer bytes"
                    );
                    served += 1;
                }
                Err(_) => flagged += 1,
            }
        }
    }
    let counts = clare_fault::injected_counts();
    let read_faults = counts[FaultSite::NetReactorRead.index()]
        - counts_before[FaultSite::NetReactorRead.index()];
    let write_faults = counts[FaultSite::NetReactorWrite.index()]
        - counts_before[FaultSite::NetReactorWrite.index()];
    assert!(read_faults > 0, "no reactor read fault was ever injected");
    assert!(write_faults > 0, "no reactor write fault was ever injected");
    assert!(
        served > flagged * 10,
        "transparent faults should rarely be visible: {served} served vs {flagged} flagged"
    );
    assert_eq!(
        clare_trace::metrics().net_frame_crc_failures.get(),
        crc_before,
        "a reactor scheduling fault corrupted frame bytes"
    );

    // Clean client after the storm: nothing wedged in the event loop.
    let mut client = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
    for (query, want) in queries.iter().zip(&reference) {
        assert_eq!(&client.retrieve(query, SearchMode::TwoStage).unwrap(), want);
    }
    server.shutdown();
    maybe_report();
}
