//! Saving and loading knowledge bases.
//!
//! The persistent format (`.ckb`) stores the shared symbol table plus
//! every module's clauses as PIF clause records — the same bytes the
//! simulated disk holds. Loading rebuilds the compiled form (track
//! layout, secondary indexes) through [`KbBuilder`], so a loaded
//! knowledge base is bit-identical to recompiling the original source
//! under the same [`KbConfig`].
//!
//! # Formats
//!
//! **`CKB2`** (written by [`save`]) wraps the payload in checksummed
//! sections:
//!
//! ```text
//! "CKB2"  u32 section_count
//! section 0:    u32 len  u32 crc32c  <symbol table body>
//! section 1..n: u32 len  u32 crc32c  <module body>
//! ```
//!
//! A section body is read in bounded chunks (a hostile length field can
//! never force a large allocation) while its CRC32C is folded; a
//! mismatch rejects the section before any of it is parsed. **`CKB1`**
//! (the previous, checksum-free layout) still loads; [`save_v1`] writes
//! it for downgrade paths.
//!
//! Every parse failure reports the byte offset where the stream went
//! wrong ([`KbIoError::Malformed`]). With a [fault injector]
//! (clare_fault) installed, loads see bit flips and short reads and
//! saves can be torn mid-write — the loader's contract under all of it
//! is *`Err`, never panic, never a silently wrong knowledge base*.

use crate::build::{KbBuilder, KbConfig, KbError};
use crate::predicate::KnowledgeBase;
use clare_fault::{crc32c, crc32c_append, FaultAction, FaultSite};
use clare_pif::ClauseRecord;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes opening a current (`v2`, checksummed) `.ckb` stream.
pub const MAGIC: &[u8; 4] = b"CKB2";

/// Magic bytes of the legacy, checksum-free format (still loadable).
pub const MAGIC_V1: &[u8; 4] = b"CKB1";

/// Longest credible string (atom or module name).
const MAX_STR_LEN: usize = 1 << 24;
/// Longest credible clause record.
const MAX_RECORD_LEN: usize = 1 << 24;
/// Longest credible section body.
const MAX_SECTION_LEN: usize = 1 << 30;
/// Bounded read unit: no length field can make us allocate more than
/// this ahead of the bytes actually arriving.
const READ_CHUNK: usize = 64 * 1024;

/// Errors from [`save`]/[`load`].
#[derive(Debug)]
pub enum KbIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream is not a well-formed `.ckb`.
    Malformed {
        /// Byte offset (from the start of the stream) where parsing
        /// failed.
        offset: u64,
        /// What was wrong there.
        reason: String,
    },
    /// A stored clause failed to recompile.
    Build(KbError),
}

impl KbIoError {
    fn malformed(offset: u64, reason: impl Into<String>) -> Self {
        KbIoError::Malformed {
            offset,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for KbIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbIoError::Io(e) => write!(f, "i/o error: {e}"),
            KbIoError::Malformed { offset, reason } => {
                write!(
                    f,
                    "malformed knowledge base file at byte {offset}: {reason}"
                )
            }
            KbIoError::Build(e) => write!(f, "rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for KbIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KbIoError::Io(e) => Some(e),
            KbIoError::Build(e) => Some(e),
            KbIoError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for KbIoError {
    fn from(e: std::io::Error) -> Self {
        KbIoError::Io(e)
    }
}

// --- fault-injecting wrappers -------------------------------------------

/// Applies installed [`FaultSite::KbRead`] faults to a byte source: bit
/// flips in delivered chunks, or a short read after which the stream
/// reports end-of-file.
struct FaultingReader<R> {
    inner: R,
    offset: u64,
    cut: bool,
}

impl<R> FaultingReader<R> {
    fn new(inner: R) -> Self {
        FaultingReader {
            inner,
            offset: 0,
            cut: false,
        }
    }
}

impl<R: Read> Read for FaultingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.cut {
            return Ok(0);
        }
        let n = self.inner.read(buf)?;
        if n > 0 && clare_fault::active() {
            match clare_fault::decide(FaultSite::KbRead, self.offset) {
                FaultAction::FlipBit { bit } => {
                    let i = (bit % (n as u64 * 8)) as usize;
                    buf[i / 8] ^= 1 << (i % 8);
                }
                FaultAction::Truncate { keep } => {
                    self.cut = true;
                    let keep = (keep % (n as u64 + 1)) as usize;
                    self.offset += keep as u64;
                    return Ok(keep);
                }
                _ => {}
            }
        }
        self.offset += n as u64;
        Ok(n)
    }
}

/// Applies installed [`FaultSite::CkbWrite`] faults to a byte sink: a
/// torn write persists a prefix of one chunk and silently swallows the
/// rest — the save call still reports success, exactly like a power cut
/// after the OS accepted the bytes. The loader must catch it later.
struct TornWriter<W> {
    inner: W,
    offset: u64,
    torn: bool,
}

impl<W> TornWriter<W> {
    fn new(inner: W) -> Self {
        TornWriter {
            inner,
            offset: 0,
            torn: false,
        }
    }
}

impl<W: Write> Write for TornWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.torn {
            return Ok(buf.len());
        }
        if !buf.is_empty() && clare_fault::active() {
            if let FaultAction::Truncate { keep } =
                clare_fault::decide(FaultSite::CkbWrite, self.offset)
            {
                let keep = (keep % (buf.len() as u64 + 1)) as usize;
                self.inner.write_all(&buf[..keep])?;
                self.torn = true;
                self.offset += keep as u64;
                return Ok(buf.len());
            }
        }
        self.inner.write_all(buf)?;
        self.offset += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

// --- offset-tracking primitives -----------------------------------------

/// A reader that knows how far into the stream it is, so every parse
/// error can say *where*.
struct Src<R> {
    inner: R,
    offset: u64,
}

impl<R: Read> Src<R> {
    fn new(inner: R) -> Self {
        Src { inner, offset: 0 }
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), KbIoError> {
        self.inner.read_exact(buf)?;
        self.offset += buf.len() as u64;
        Ok(())
    }

    fn u32(&mut self) -> Result<u32, KbIoError> {
        let mut buf = [0u8; 4];
        self.read_exact(&mut buf)?;
        Ok(u32::from_be_bytes(buf))
    }

    fn u64(&mut self) -> Result<u64, KbIoError> {
        let mut buf = [0u8; 8];
        self.read_exact(&mut buf)?;
        Ok(u64::from_be_bytes(buf))
    }

    fn str_(&mut self) -> Result<String, KbIoError> {
        let at = self.offset;
        let len = self.u32()? as usize;
        if len > MAX_STR_LEN {
            return Err(KbIoError::malformed(at, "string length implausible"));
        }
        let mut buf = read_bounded(self, len)?;
        match String::from_utf8(std::mem::take(&mut buf)) {
            Ok(s) => Ok(s),
            Err(_) => Err(KbIoError::malformed(at + 4, "non-UTF-8 string")),
        }
    }

    /// True when at least one more byte is readable (and consumes it).
    /// Used to reject streams with bytes after the last section — a
    /// count field corrupted downward must not silently drop modules.
    fn has_trailing_byte(&mut self) -> Result<bool, KbIoError> {
        let mut probe = [0u8; 1];
        loop {
            match self.inner.read(&mut probe) {
                Ok(0) => return Ok(false),
                Ok(_) => {
                    self.offset += 1;
                    return Ok(true);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// Reads `len` bytes in [`READ_CHUNK`]-bounded steps, so a hostile
/// length field cannot force a large up-front allocation.
fn read_bounded<R: Read>(src: &mut Src<R>, len: usize) -> Result<Vec<u8>, KbIoError> {
    let mut out = Vec::with_capacity(len.min(READ_CHUNK));
    let mut chunk = [0u8; READ_CHUNK];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK);
        src.read_exact(&mut chunk[..take])?;
        out.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    Ok(out)
}

/// A cursor over an in-memory section body that reports absolute stream
/// offsets (`base` + position) in errors.
struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
    base: u64,
}

impl<'a> Cur<'a> {
    fn new(bytes: &'a [u8], base: u64) -> Self {
        Cur {
            bytes,
            pos: 0,
            base,
        }
    }

    fn at(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], KbIoError> {
        if self.bytes.len() - self.pos < n {
            return Err(KbIoError::malformed(self.at(), "section body truncated"));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, KbIoError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, KbIoError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str_(&mut self) -> Result<String, KbIoError> {
        let at = self.at();
        let len = self.u32()? as usize;
        if len > MAX_STR_LEN {
            return Err(KbIoError::malformed(at, "string length implausible"));
        }
        let bytes = self.take(len)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => Err(KbIoError::malformed(at + 4, "non-UTF-8 string")),
        }
    }

    fn exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn write_u32(w: &mut impl Write, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_be_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_be_bytes())
}

fn write_str(w: &mut impl Write, s: &str) -> std::io::Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

// --- saving --------------------------------------------------------------

fn symbols_section(kb: &KnowledgeBase) -> std::io::Result<Vec<u8>> {
    let mut body = Vec::new();
    let symbols = kb.symbols();
    write_u32(&mut body, symbols.atom_count() as u32)?;
    for (_, text) in symbols.atoms() {
        write_str(&mut body, text)?;
    }
    write_u32(&mut body, symbols.float_count() as u32)?;
    for offset in 0..symbols.float_count() {
        let value = symbols.float_value(clare_term::FloatId::from_offset(offset as u32));
        write_u64(&mut body, value.to_bits())?;
    }
    Ok(body)
}

fn module_section(module: &crate::predicate::Module) -> Result<Vec<u8>, KbIoError> {
    let mut body = Vec::new();
    write_str(&mut body, module.name())?;
    let clause_count: usize = module.predicates().iter().map(|p| p.clauses().len()).sum();
    write_u32(&mut body, clause_count as u32)?;
    for pred in module.predicates() {
        for clause in pred.clauses() {
            let record =
                ClauseRecord::compile(clause).map_err(|e| KbIoError::Build(KbError::Pif(e)))?;
            let bytes = record.to_bytes();
            write_u32(&mut body, bytes.len() as u32)?;
            body.extend_from_slice(&bytes);
        }
    }
    Ok(body)
}

/// Serializes a knowledge base in the current (`CKB2`, checksummed)
/// format.
///
/// # Errors
///
/// Propagates I/O failures from `writer`; returns [`KbIoError::Build`]
/// if a stored clause no longer compiles (cannot happen for a knowledge
/// base built through [`KbBuilder`]).
pub fn save(kb: &KnowledgeBase, writer: &mut impl Write) -> Result<(), KbIoError> {
    let mut w = TornWriter::new(writer);
    w.write_all(MAGIC)?;
    let mut sections = vec![symbols_section(kb)?];
    for module in kb.modules() {
        sections.push(module_section(module)?);
    }
    write_u32(&mut w, sections.len() as u32)?;
    for body in &sections {
        write_u32(&mut w, body.len() as u32)?;
        write_u32(&mut w, crc32c(body))?;
        w.write_all(body)?;
    }
    w.flush()?;
    Ok(())
}

/// Serializes a knowledge base in the legacy `CKB1` layout (no
/// checksums) for downgrade paths. [`load`] accepts both.
///
/// # Errors
///
/// As for [`save`].
pub fn save_v1(kb: &KnowledgeBase, writer: &mut impl Write) -> Result<(), KbIoError> {
    writer.write_all(MAGIC_V1)?;
    let symbols = symbols_section(kb)?;
    writer.write_all(&symbols)?;
    write_u32(writer, kb.modules().len() as u32)?;
    for module in kb.modules() {
        let body = module_section(module)?;
        writer.write_all(&body)?;
    }
    Ok(())
}

// --- loading -------------------------------------------------------------

/// Deserializes and recompiles a knowledge base under `config`. Accepts
/// `CKB2` (checksummed sections, verified before parsing) and legacy
/// `CKB1` streams.
///
/// # Errors
///
/// Returns [`KbIoError`] on I/O failure, malformed or corrupted data
/// (with the byte offset of the failure), or recompilation failure.
/// Never panics, whatever the input bytes.
pub fn load(reader: &mut impl Read, config: KbConfig) -> Result<KnowledgeBase, KbIoError> {
    let mut src = Src::new(FaultingReader::new(reader));
    let mut magic = [0u8; 4];
    src.read_exact(&mut magic)?;
    let kb = match &magic {
        m if m == MAGIC => load_v2(&mut src, config),
        m if m == MAGIC_V1 => load_v1(&mut src, config),
        _ => return Err(KbIoError::malformed(0, "bad magic")),
    }?;
    if src.has_trailing_byte()? {
        return Err(KbIoError::malformed(
            src.offset - 1,
            "trailing bytes after knowledge base",
        ));
    }
    Ok(kb)
}

fn load_v2(src: &mut Src<impl Read>, config: KbConfig) -> Result<KnowledgeBase, KbIoError> {
    let at = src.offset;
    let section_count = src.u32()? as usize;
    if section_count == 0 {
        return Err(KbIoError::malformed(
            at,
            "no sections (symbol table missing)",
        ));
    }
    if section_count > 1 << 20 {
        return Err(KbIoError::malformed(at, "section count implausible"));
    }
    let mut builder = KbBuilder::new();
    for i in 0..section_count {
        let (body, base) = read_section(src)?;
        let mut cur = Cur::new(&body, base);
        if i == 0 {
            parse_symbols(&mut cur, &mut builder)?;
        } else {
            parse_module(&mut cur, &mut builder)?;
        }
        if !cur.exhausted() {
            return Err(KbIoError::malformed(cur.at(), "trailing section bytes"));
        }
    }
    builder.try_finish(config).map_err(KbIoError::Build)
}

/// Reads one `len · crc · body` section, verifying the checksum while
/// the body streams in bounded chunks. Returns the body and its
/// absolute stream offset.
fn read_section(src: &mut Src<impl Read>) -> Result<(Vec<u8>, u64), KbIoError> {
    let header_at = src.offset;
    let len = src.u32()? as usize;
    if len > MAX_SECTION_LEN {
        return Err(KbIoError::malformed(
            header_at,
            "section length implausible",
        ));
    }
    let expected = src.u32()?;
    let base = src.offset;
    let mut body = Vec::with_capacity(len.min(READ_CHUNK));
    let mut chunk = [0u8; READ_CHUNK];
    let mut running = 0u32;
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(READ_CHUNK);
        src.read_exact(&mut chunk[..take])?;
        running = crc32c_append(running, &chunk[..take]);
        body.extend_from_slice(&chunk[..take]);
        remaining -= take;
    }
    if running != expected {
        return Err(KbIoError::malformed(
            base,
            format!(
                "section checksum mismatch (stored {expected:#010x}, computed {running:#010x})"
            ),
        ));
    }
    Ok((body, base))
}

fn parse_symbols(cur: &mut Cur<'_>, builder: &mut KbBuilder) -> Result<(), KbIoError> {
    let atom_count = cur.u32()? as usize;
    for _ in 0..atom_count {
        let text = cur.str_()?;
        builder.symbols_mut().intern_atom(&text);
    }
    let float_count = cur.u32()? as usize;
    for _ in 0..float_count {
        let bits = cur.u64()?;
        builder.symbols_mut().intern_float(f64::from_bits(bits));
    }
    Ok(())
}

fn parse_module(cur: &mut Cur<'_>, builder: &mut KbBuilder) -> Result<(), KbIoError> {
    let name = cur.str_()?;
    let clause_count = cur.u32()? as usize;
    for _ in 0..clause_count {
        let at = cur.at();
        let len = cur.u32()? as usize;
        if len > MAX_RECORD_LEN {
            return Err(KbIoError::malformed(at, "record length implausible"));
        }
        let bytes = cur.take(len)?;
        let (record, used) = ClauseRecord::from_bytes(bytes)
            .map_err(|e| KbIoError::malformed(at + 4, format!("bad clause record: {e}")))?;
        if used != len {
            return Err(KbIoError::malformed(at + 4, "trailing record bytes"));
        }
        builder.add_clause(&name, record.clause().clone());
    }
    Ok(())
}

fn load_v1(src: &mut Src<impl Read>, config: KbConfig) -> Result<KnowledgeBase, KbIoError> {
    let mut builder = KbBuilder::new();
    let atom_count = src.u32()? as usize;
    for _ in 0..atom_count {
        let text = src.str_()?;
        builder.symbols_mut().intern_atom(&text);
    }
    let float_count = src.u32()? as usize;
    for _ in 0..float_count {
        let bits = src.u64()?;
        builder.symbols_mut().intern_float(f64::from_bits(bits));
    }
    let module_count = src.u32()? as usize;
    for _ in 0..module_count {
        let name = src.str_()?;
        let clause_count = src.u32()? as usize;
        for _ in 0..clause_count {
            let at = src.offset;
            let len = src.u32()? as usize;
            if len > MAX_RECORD_LEN {
                return Err(KbIoError::malformed(at, "record length implausible"));
            }
            let bytes = read_bounded(src, len)?;
            let (record, used) = ClauseRecord::from_bytes(&bytes)
                .map_err(|e| KbIoError::malformed(at + 4, format!("bad clause record: {e}")))?;
            if used != len {
                return Err(KbIoError::malformed(at + 4, "trailing record bytes"));
            }
            builder.add_clause(&name, record.clause().clone());
        }
    }
    builder.try_finish(config).map_err(KbIoError::Build)
}

/// Saves to a filesystem path.
///
/// # Errors
///
/// As for [`save`].
pub fn save_to_path(kb: &KnowledgeBase, path: impl AsRef<Path>) -> Result<(), KbIoError> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    save(kb, &mut file)
}

/// Loads from a filesystem path.
///
/// # Errors
///
/// As for [`load`].
pub fn load_from_path(
    path: impl AsRef<Path>,
    config: KbConfig,
) -> Result<KnowledgeBase, KbIoError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    load(&mut file, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::KbStats;

    fn sample_kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        b.consult(
            "family",
            "parent(tom, bob). parent(bob, ann).
             weight('heavy item', 2.5).
             gp(X, Z) :- parent(X, Y), parent(Y, Z).",
        )
        .unwrap();
        b.consult("other", "colour(red). colour(blue).").unwrap();
        b.finish(KbConfig::default())
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let kb = sample_kb();
        let mut buf = Vec::new();
        save(&kb, &mut buf).unwrap();
        assert_eq!(&buf[..4], MAGIC);
        let loaded = load(&mut buf.as_slice(), KbConfig::default()).unwrap();
        assert_eq!(KbStats::gather(&loaded), KbStats::gather(&kb));
        assert_eq!(loaded.modules().len(), 2);
        assert_eq!(loaded.modules()[0].name(), "family");
        // Symbol offsets identical: terms compare equal across the trip.
        for (module, loaded_module) in kb.modules().iter().zip(loaded.modules()) {
            for (pred, loaded_pred) in module.predicates().iter().zip(loaded_module.predicates()) {
                assert_eq!(pred.clauses(), loaded_pred.clauses());
                assert_eq!(pred.addrs(), loaded_pred.addrs());
            }
        }
        // Float survives by bit pattern.
        assert!(loaded.symbols().lookup_float(2.5).is_some());
    }

    #[test]
    fn legacy_ckb1_still_loads() {
        let kb = sample_kb();
        let mut buf = Vec::new();
        save_v1(&kb, &mut buf).unwrap();
        assert_eq!(&buf[..4], MAGIC_V1);
        let loaded = load(&mut buf.as_slice(), KbConfig::default()).unwrap();
        assert_eq!(KbStats::gather(&loaded), KbStats::gather(&kb));
    }

    #[test]
    fn loaded_kb_answers_queries_identically() {
        use clare_term::parser::parse_term;
        let kb = sample_kb();
        let mut buf = Vec::new();
        save(&kb, &mut buf).unwrap();
        let loaded = load(&mut buf.as_slice(), KbConfig::default()).unwrap();
        let mut symbols = loaded.symbols().clone();
        let q = parse_term("parent(tom, X)", &mut symbols).unwrap();
        let pred = loaded.lookup("parent", 2).unwrap();
        let scan = pred.index().scan(&q);
        assert_eq!(
            scan.matches.len(),
            kb.lookup("parent", 2)
                .unwrap()
                .index()
                .scan(&q)
                .matches
                .len()
        );
    }

    #[test]
    fn file_roundtrip() {
        let kb = sample_kb();
        let path =
            std::env::temp_dir().join(format!("clare_kb_io_test_{}.ckb", std::process::id()));
        save_to_path(&kb, &path).unwrap();
        let loaded = load_from_path(&path, KbConfig::default()).unwrap();
        assert_eq!(loaded.clause_count(), kb.clause_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load(&mut b"NOPE".as_slice(), KbConfig::default()).unwrap_err();
        assert!(matches!(err, KbIoError::Malformed { offset: 0, .. }));
    }

    #[test]
    fn truncation_detected() {
        let kb = sample_kb();
        let mut buf = Vec::new();
        save(&kb, &mut buf).unwrap();
        for cut in [3, buf.len() / 2, buf.len() - 1] {
            assert!(
                load(&mut buf[..cut].to_vec().as_slice(), KbConfig::default()).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn empty_kb_roundtrips() {
        let kb = KbBuilder::new().finish(KbConfig::default());
        let mut buf = Vec::new();
        save(&kb, &mut buf).unwrap();
        let loaded = load(&mut buf.as_slice(), KbConfig::default()).unwrap();
        assert_eq!(loaded.clause_count(), 0);
    }

    #[test]
    fn every_single_bit_flip_errors_with_an_offset_and_never_panics() {
        let kb = sample_kb();
        let mut clean = Vec::new();
        save(&kb, &mut clean).unwrap();
        let reference = KbStats::gather(&kb);
        // Flip every bit of the stream: the loader must either reject
        // (the overwhelmingly common case — the section CRC catches
        // payload damage, header damage trips bounds) or, never, accept
        // silently-wrong data. A flip confined to ignored header slack
        // does not exist in this format, so anything that loads must
        // gather identical stats.
        for bit in 0..clean.len() * 8 {
            let mut dirty = clean.clone();
            dirty[bit / 8] ^= 1 << (bit % 8);
            match load(&mut dirty.as_slice(), KbConfig::default()) {
                Err(KbIoError::Malformed { offset, .. }) => {
                    assert!(offset <= clean.len() as u64, "offset {offset} out of range");
                }
                Err(_) => {}
                Ok(loaded) => {
                    assert_eq!(
                        KbStats::gather(&loaded),
                        reference,
                        "bit {bit} flipped into a different-but-accepted KB"
                    );
                }
            }
        }
    }

    #[test]
    fn hostile_length_fields_do_not_allocate() {
        // A CKB2 header claiming a section of MAX_SECTION_LEN bytes with
        // no body behind it: the chunked reader must fail at EOF having
        // allocated at most one chunk.
        let mut evil = Vec::new();
        evil.extend_from_slice(MAGIC);
        evil.extend_from_slice(&1u32.to_be_bytes()); // one section
        evil.extend_from_slice(&(MAX_SECTION_LEN as u32).to_be_bytes());
        evil.extend_from_slice(&0u32.to_be_bytes()); // bogus crc
        assert!(load(&mut evil.as_slice(), KbConfig::default()).is_err());

        // Section length over the cap is rejected before any read.
        let mut evil = Vec::new();
        evil.extend_from_slice(MAGIC);
        evil.extend_from_slice(&1u32.to_be_bytes());
        evil.extend_from_slice(&u32::MAX.to_be_bytes());
        evil.extend_from_slice(&0u32.to_be_bytes());
        match load(&mut evil.as_slice(), KbConfig::default()) {
            Err(KbIoError::Malformed { offset, reason }) => {
                assert_eq!(offset, 8);
                assert!(reason.contains("section length"), "{reason}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }

        // Same for a hostile v1 record length.
        let mut evil = Vec::new();
        evil.extend_from_slice(MAGIC_V1);
        evil.extend_from_slice(&0u32.to_be_bytes()); // no atoms
        evil.extend_from_slice(&0u32.to_be_bytes()); // no floats
        evil.extend_from_slice(&1u32.to_be_bytes()); // one module
        evil.extend_from_slice(&1u32.to_be_bytes());
        evil.push(b'm'); // name "m"
        evil.extend_from_slice(&1u32.to_be_bytes()); // one clause
        evil.extend_from_slice(&u32::MAX.to_be_bytes()); // hostile record len
        match load(&mut evil.as_slice(), KbConfig::default()) {
            Err(KbIoError::Malformed { reason, .. }) => {
                assert!(reason.contains("record length"), "{reason}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn torn_saves_are_caught_by_the_loader() {
        use clare_fault::{DeterministicInjector, FaultPlan, FaultSite};
        let kb = sample_kb();
        let reference = KbStats::gather(&kb);
        let plan = FaultPlan::none().with(FaultSite::CkbWrite, 400);
        let mut torn_seen = 0;
        for seed in 0..40u64 {
            let buf = {
                let _guard = clare_fault::install(std::sync::Arc::new(DeterministicInjector::new(
                    seed, plan,
                )));
                let mut buf = Vec::new();
                save(&kb, &mut buf).unwrap(); // a torn save still "succeeds"
                buf
            };
            // Correct-or-flagged: the file either loads back identical or
            // the loader rejects it — never panics, never loads wrong.
            match load(&mut buf.as_slice(), KbConfig::default()) {
                Ok(loaded) => assert_eq!(KbStats::gather(&loaded), reference, "seed {seed}"),
                Err(_) => torn_seen += 1,
            }
        }
        assert!(torn_seen > 0, "a 40% torn-write plan never tore a save");
    }

    #[test]
    fn faulted_reads_error_or_load_identically() {
        use clare_fault::{DeterministicInjector, FaultPlan, FaultSite};
        let kb = sample_kb();
        let reference = KbStats::gather(&kb);
        let mut clean = Vec::new();
        save(&kb, &mut clean).unwrap();
        let plan = FaultPlan::none().with(FaultSite::KbRead, 300);
        let mut rejected = 0;
        for seed in 0..40u64 {
            let _guard =
                clare_fault::install(std::sync::Arc::new(DeterministicInjector::new(seed, plan)));
            match load(&mut clean.as_slice(), KbConfig::default()) {
                Ok(loaded) => assert_eq!(KbStats::gather(&loaded), reference, "seed {seed}"),
                Err(_) => rejected += 1,
            }
        }
        assert!(rejected > 0, "a 30% read-fault plan never corrupted a load");
    }
}
