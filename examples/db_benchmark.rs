//! The database benchmark suite (paper refs [6,7] style) run end to end:
//! a supplier/part/supply database with a six-query mix, each solved
//! through the CRS with automatic mode selection.
//!
//! ```text
//! cargo run --release --example db_benchmark [scale]
//! ```

use clare::prelude::*;
use clare::workload::SuiteSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1);
    let spec = SuiteSpec {
        suppliers: 200 * scale,
        parts: 1000 * scale,
        supplies: 10_000 * scale,
        ..SuiteSpec::default()
    };
    println!(
        "building benchmark database: {} suppliers, {} parts, {} supplies …",
        spec.suppliers, spec.parts, spec.supplies
    );
    let mut builder = KbBuilder::new();
    let summary = spec.generate(&mut builder, "db");
    let kb = builder.finish(KbConfig::default());
    println!("{}\n", KbStats::gather(&kb));

    println!(
        "{:<18} {:<14} {:>8} {:>11} {:>11} {:>12}",
        "query", "top-goal mode", "answers", "retrievals", "candidates", "elapsed"
    );
    for q in &summary.queries {
        let mode = choose_mode(&kb, &q.goal);
        let outcome = solve(
            &kb,
            &q.goal,
            &q.var_names,
            &SolveOptions {
                max_solutions: 200_000,
                ..SolveOptions::default()
            },
        );
        println!(
            "{:<18} {:<14} {:>8} {:>11} {:>11} {:>12}",
            q.label,
            mode.to_string(),
            outcome.solutions.len(),
            outcome.stats.retrievals,
            outcome.stats.candidates,
            outcome.stats.retrieval_elapsed.to_string(),
        );
    }
    Ok(())
}
