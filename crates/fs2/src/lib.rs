//! FS2 — the second-stage filter of the CLARE engine (§3 of the paper).
//!
//! A route-accurate software simulation of the partial-test-unification
//! hardware:
//!
//! * [`components`] — the datapath components of the Test Unification
//!   Engine (Figure 5) with the propagation delays printed under
//!   Figures 6–12 (selectors 20 ns, Query Memory 35 ns, DB Memory 25 ns,
//!   registers 20 ns, comparator 30 ns, Double Buffer output 20 ns).
//! * [`ops`] — the seven hardware operations (MATCH, DB_STORE,
//!   QUERY_STORE, DB_FETCH, QUERY_FETCH, DB_CROSS_BOUND_FETCH,
//!   QUERY_CROSS_BOUND_FETCH) defined by their per-cycle datapath routes.
//!   **Table 1 is derived, not transcribed**: each execution time is the
//!   sum over cycles of the longest parallel route, plus the terminal
//!   comparator or memory-write delay.
//! * [`control`] — the 8-bit control register, the four operational modes
//!   (Read Result / Search / Microprogramming / Set Query), and the
//!   FS1/FS2 select bit, as mapped into the host's VMEbus space.
//! * [`memory`] — Query Memory and DB Memory as arrays of 32-bit PIF
//!   words, with the "reset to pointing to itself" idiom for unbound
//!   variable cells.
//! * [`map`] — the Map ROM: dispatch on the pair of 8-bit type tags to a
//!   microroutine, per the three type categories of §3.1.
//! * [`engine`] — the matching engine: walks the pre-loaded query stream
//!   against each clause head stream, drives the seven operations, and
//!   renders a verdict with a full operation trace and nanosecond timing.
//! * [`result`] — the Result Memory with its 6-bit satisfier counter and
//!   9-bit offset counter (32 KB, one disk track worst case).
//! * [`buffer`] — the Double Buffer alternation model.
//! * [`device`] — `Fs2Device`, tying control modes, engine, buffers, and
//!   result memory together for track-at-a-time searches.

#![warn(missing_docs)]

pub mod buffer;
pub mod components;
pub mod config;
pub mod control;
pub mod device;
pub mod engine;
pub mod map;
pub mod memory;
pub mod micro;
pub mod ops;
pub mod result;
pub mod rtl;
pub mod trace;

pub use config::{Fs2Config, DEFAULT_SHARD_TRACKS};
pub use control::{ControlRegister, FilterSelect, OperationalMode};
pub use device::{Fs2Device, SearchStats};
pub use engine::{ClauseVerdict, Fs2Engine, StreamVerdict, TraceStep};
pub use micro::{Microprogram, Wcs};
pub use ops::{HwOp, RouteTrace};
pub use result::ResultMemory;
