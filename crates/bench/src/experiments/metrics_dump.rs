//! `metrics` — exercise every local layer (FS1, FS2, CRS) on a small
//! disk-resident relation, then dump the process-wide metrics registry.
//!
//! This is the CLI window onto the same registry the daemon serves over
//! the extended `stats` opcode: counters and histograms accumulated by
//! the SCW index scanner, the FS2 streaming engine, and the Clause
//! Retrieval Server. Net-layer counters stay zero here — no daemon runs
//! inside this process; fetch them with `net_client` or the `stats`
//! opcode instead.

use clare_core::{ClauseRetrievalServer, CrsOptions, SearchMode};
use clare_kb::{KbBuilder, KbConfig};
use clare_term::builder::TermBuilder;
use clare_workload::{derive_queries, QueryShape};

const FACTS: usize = 5_000;

/// Runs a representative retrieval mix, then renders the registry —
/// human-readable text, or the same snapshot as JSON.
pub fn run(json: bool) -> String {
    let mut b = KbBuilder::new();
    let mut heads = Vec::new();
    let mut clauses = Vec::with_capacity(FACTS);
    {
        let mut t = TermBuilder::new(b.symbols_mut());
        for i in 0..FACTS {
            let key = t.atom(&format!("k{}", i % 500));
            let val = t.atom(&format!("v{}", (i * 13) % 500));
            let fact = t.fact("rel", vec![key, val]);
            if heads.len() < 200 {
                heads.push(fact.head().clone());
            }
            clauses.push(fact);
        }
    }
    for c in clauses {
        b.add_clause("edb", c);
    }
    let miss = b.symbols_mut().intern_atom("never_stored_atom");
    let kb = b.finish(KbConfig::default());
    let server = ClauseRetrievalServer::new(kb, CrsOptions::default());

    let queries = derive_queries(&heads, QueryShape::GroundHit, 8, miss, 2);
    for q in &queries {
        server.retrieve(q, SearchMode::TwoStage);
    }
    server.retrieve_batch(&queries, SearchMode::TwoStage);

    let snapshot = clare_trace::metrics().snapshot();
    if json {
        snapshot.render_json()
    } else {
        snapshot.render_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_reports_nonzero_fs1_fs2_and_crs_activity() {
        let text = run(false);
        for name in ["fs1.scans", "fs2.tracks", "crs.retrieve_wall_ns"] {
            assert!(text.contains(name), "{name} missing from text dump");
        }
        // The registry is process-global and monotone, so a snapshot
        // taken after our own retrievals must show activity in every
        // local layer regardless of what parallel tests recorded.
        let snapshot = clare_trace::metrics().snapshot();
        assert!(snapshot.counter("fs1.scans").unwrap() > 0);
        assert!(snapshot.counter("fs2.tracks").unwrap() > 0);
        assert!(snapshot.histogram("crs.retrieve_wall_ns").unwrap().count > 0);
        assert!(snapshot.histogram("crs.batch_size").unwrap().count > 0);
        let json = run(true);
        assert!(json.contains("\"fs1.scans\""));
    }
}
