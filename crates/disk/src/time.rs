//! Simulated time and data rates.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A rejected time or rate value, carrying the offending input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeError {
    /// A duration that is negative, NaN, or infinite.
    InvalidDuration {
        /// The rejected seconds value.
        secs: f64,
    },
    /// A byte rate that is not finite and positive.
    InvalidRate {
        /// The rejected bytes-per-second value.
        bytes_per_sec: f64,
    },
}

impl fmt::Display for TimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeError::InvalidDuration { secs } => {
                write!(f, "duration must be finite and non-negative, got {secs}")
            }
            TimeError::InvalidRate { bytes_per_sec } => {
                write!(
                    f,
                    "rate must be positive and finite, got {bytes_per_sec} B/s"
                )
            }
        }
    }
}

impl std::error::Error for TimeError {}

/// A span of simulated time in nanoseconds.
///
/// Nanoseconds are the paper's native unit (every Table 1 entry is in ns);
/// a `u64` spans ~584 years, ample for any experiment.
///
/// # Examples
///
/// ```
/// use clare_disk::SimNanos;
///
/// let op = SimNanos::from_ns(235);
/// let million_ops = op * 1_000_000;
/// assert_eq!(million_ops.as_millis_f64(), 235.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimNanos(u64);

impl SimNanos {
    /// Zero duration.
    pub const ZERO: SimNanos = SimNanos(0);

    /// Constructs from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimNanos(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimNanos(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimNanos(ms * 1_000_000)
    }

    /// Constructs from seconds (fractional), rounding to the nearest ns.
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite input; use
    /// [`Self::try_from_secs_f64`] to handle untrusted values.
    pub fn from_secs_f64(secs: f64) -> Self {
        match Self::try_from_secs_f64(secs) {
            Ok(ns) => ns,
            Err(e) => panic!("duration must be finite and non-negative: {e}"),
        }
    }

    /// Fallible [`Self::from_secs_f64`]: rejects negative and non-finite
    /// inputs with a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::InvalidDuration`] when `secs` is negative,
    /// NaN, or infinite.
    pub fn try_from_secs_f64(secs: f64) -> Result<Self, TimeError> {
        if secs >= 0.0 && secs.is_finite() {
            Ok(SimNanos((secs * 1e9).round() as u64))
        } else {
            Err(TimeError::InvalidDuration { secs })
        }
    }

    /// The raw nanosecond count.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// As fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimNanos) -> SimNanos {
        SimNanos(self.0.saturating_sub(other.0))
    }

    /// Checked subtraction: `None` when `other` exceeds `self`. The `-`
    /// operator saturates to zero; call this where a negative duration
    /// indicates a logic error the caller wants to detect.
    pub fn checked_sub(self, other: SimNanos) -> Option<SimNanos> {
        self.0.checked_sub(other.0).map(SimNanos)
    }

    /// The larger of two durations (e.g. two parallel datapath routes — the
    /// paper always takes "the longest routing time of the two").
    pub fn max(self, other: SimNanos) -> SimNanos {
        SimNanos(self.0.max(other.0))
    }
}

impl Add for SimNanos {
    type Output = SimNanos;
    fn add(self, rhs: SimNanos) -> SimNanos {
        SimNanos(self.0 + rhs.0)
    }
}

impl AddAssign for SimNanos {
    fn add_assign(&mut self, rhs: SimNanos) {
        self.0 += rhs.0;
    }
}

impl Sub for SimNanos {
    type Output = SimNanos;
    /// Saturating: a negative difference clamps to zero. Simulated clocks
    /// only move forward, so an underflow means the caller mixed up its
    /// operands — use [`SimNanos::checked_sub`] to detect that instead of
    /// crashing a serving daemon over an accounting slip.
    fn sub(self, rhs: SimNanos) -> SimNanos {
        SimNanos(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimNanos {
    type Output = SimNanos;
    fn mul(self, rhs: u64) -> SimNanos {
        SimNanos(self.0 * rhs)
    }
}

impl Sum for SimNanos {
    fn sum<I: Iterator<Item = SimNanos>>(iter: I) -> SimNanos {
        iter.fold(SimNanos::ZERO, Add::add)
    }
}

impl fmt::Display for SimNanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 10_000 {
            write!(f, "{} ns", self.0)
        } else if self.0 < 10_000_000 {
            write!(f, "{:.2} µs", self.as_micros_f64())
        } else if self.0 < 10_000_000_000 {
            write!(f, "{:.2} ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3} s", self.as_secs_f64())
        }
    }
}

/// A sustained data rate in bytes per second.
///
/// # Examples
///
/// ```
/// use clare_disk::{ByteRate, SimNanos};
///
/// // The paper's worst-case FS2 rate: one byte every 235 ns.
/// let rate = ByteRate::per_byte_time(SimNanos::from_ns(235));
/// assert!((rate.as_mb_per_sec() - 4.25).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct ByteRate(f64);

impl ByteRate {
    /// Constructs from bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive; use
    /// [`Self::try_from_bytes_per_sec`] to handle untrusted values.
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        match Self::try_from_bytes_per_sec(bps) {
            Ok(rate) => rate,
            Err(e) => panic!("rate must be positive: {e}"),
        }
    }

    /// Fallible [`Self::from_bytes_per_sec`].
    ///
    /// # Errors
    ///
    /// Returns [`TimeError::InvalidRate`] when `bps` is zero, negative,
    /// NaN, or infinite.
    pub fn try_from_bytes_per_sec(bps: f64) -> Result<Self, TimeError> {
        if bps.is_finite() && bps > 0.0 {
            Ok(ByteRate(bps))
        } else {
            Err(TimeError::InvalidRate { bytes_per_sec: bps })
        }
    }

    /// Constructs from megabytes per second (decimal MB, as the paper
    /// uses: 1 MB = 10^6 bytes).
    pub fn from_mb_per_sec(mbps: f64) -> Self {
        Self::from_bytes_per_sec(mbps * 1e6)
    }

    /// The rate achieved when each byte takes `per_byte` to process.
    pub fn per_byte_time(per_byte: SimNanos) -> Self {
        Self::from_bytes_per_sec(1e9 / per_byte.as_ns() as f64)
    }

    /// Bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Megabytes (10^6 bytes) per second.
    pub fn as_mb_per_sec(self) -> f64 {
        self.0 / 1e6
    }

    /// Time to move `bytes` at this rate.
    pub fn transfer_time(self, bytes: u64) -> SimNanos {
        SimNanos::from_secs_f64(bytes as f64 / self.0)
    }

    /// The rate implied by moving `bytes` in `elapsed`.
    ///
    /// Returns `None` for a zero duration or zero bytes (no meaningful
    /// rate exists; previously zero bytes panicked).
    pub fn observed(bytes: u64, elapsed: SimNanos) -> Option<Self> {
        if elapsed == SimNanos::ZERO {
            None
        } else {
            Self::try_from_bytes_per_sec(bytes as f64 / elapsed.as_secs_f64()).ok()
        }
    }
}

impl fmt::Display for ByteRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} MB/s", self.as_mb_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_conversions() {
        assert_eq!(SimNanos::from_micros(3).as_ns(), 3_000);
        assert_eq!(SimNanos::from_millis(2).as_ns(), 2_000_000);
        assert_eq!(SimNanos::from_secs_f64(1.5).as_ns(), 1_500_000_000);
        assert_eq!(SimNanos::from_ns(500).as_micros_f64(), 0.5);
    }

    #[test]
    fn arithmetic() {
        let a = SimNanos::from_ns(100);
        let b = SimNanos::from_ns(40);
        assert_eq!((a + b).as_ns(), 140);
        assert_eq!((a - b).as_ns(), 60);
        assert_eq!((a * 3).as_ns(), 300);
        assert_eq!(a.max(b), a);
        assert_eq!(b.saturating_sub(a), SimNanos::ZERO);
        let total: SimNanos = [a, b, b].into_iter().sum();
        assert_eq!(total.as_ns(), 180);
    }

    #[test]
    fn underflow_saturates_and_checked_sub_detects() {
        assert_eq!(SimNanos::from_ns(1) - SimNanos::from_ns(2), SimNanos::ZERO);
        assert_eq!(SimNanos::from_ns(1).checked_sub(SimNanos::from_ns(2)), None);
        assert_eq!(
            SimNanos::from_ns(5).checked_sub(SimNanos::from_ns(2)),
            Some(SimNanos::from_ns(3))
        );
        assert!(SimNanos::try_from_secs_f64(-1.0).is_err());
        assert!(SimNanos::try_from_secs_f64(f64::NAN).is_err());
        assert_eq!(
            SimNanos::try_from_secs_f64(1.5),
            Ok(SimNanos::from_ns(1_500_000_000))
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimNanos::from_ns(235).to_string(), "235 ns");
        assert_eq!(SimNanos::from_micros(150).to_string(), "150.00 µs");
        assert_eq!(SimNanos::from_millis(25).to_string(), "25.00 ms");
        assert_eq!(SimNanos::from_secs_f64(12.5).to_string(), "12.500 s");
    }

    #[test]
    fn paper_worst_case_rate() {
        // 1 byte per 235 ns ≈ 4.25 MB/s — the §4 claim.
        let rate = ByteRate::per_byte_time(SimNanos::from_ns(235));
        assert!((rate.as_mb_per_sec() - 4.2553).abs() < 0.001);
    }

    #[test]
    fn transfer_time_inverts_rate() {
        let rate = ByteRate::from_mb_per_sec(2.0);
        let t = rate.transfer_time(2_000_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn observed_rate() {
        let r = ByteRate::observed(1_000_000, SimNanos::from_secs_f64(0.5)).unwrap();
        assert!((r.as_mb_per_sec() - 2.0).abs() < 1e-9);
        assert!(ByteRate::observed(1, SimNanos::ZERO).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        ByteRate::from_bytes_per_sec(0.0);
    }

    #[test]
    fn try_rate_rejects_without_panicking() {
        assert!(ByteRate::try_from_bytes_per_sec(0.0).is_err());
        assert!(ByteRate::try_from_bytes_per_sec(-2.0).is_err());
        assert!(ByteRate::try_from_bytes_per_sec(f64::INFINITY).is_err());
        assert!(ByteRate::try_from_bytes_per_sec(1e6).is_ok());
        // Zero bytes over nonzero time is "no rate", not a crash.
        assert!(ByteRate::observed(0, SimNanos::from_ns(10)).is_none());
    }
}
