//! Adversarial-input properties for the live server and the payload
//! codecs: arbitrary bytes never panic a decoder, and a live server
//! answers every garbage frame with *some* frame — never a hang, never a
//! dropped connection, never a dead worker.

use clare_core::{ClauseRetrievalServer, CrsOptions, SearchMode};
use clare_kb::{KbBuilder, KbConfig};
use clare_net::protocol::{
    decode_consult, decode_error, decode_retrievals, decode_retrieve, decode_retrieve_batch,
    decode_server_stats, decode_solve, decode_solve_outcome, decode_symbols, encode_client_hello,
    opcode, Frame, FrameReader, MAX_FRAME_LEN, PROTOCOL_VERSION, SERVER_HELLO_LEN,
};
use clare_net::{ClientConfig, NetClient, NetConfig, NetServer};
use clare_term::parser::parse_term;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every request-payload decoder is total on arbitrary bytes.
    #[test]
    fn payload_decoders_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_retrieve(&bytes);
        let _ = decode_retrieve_batch(&bytes);
        let _ = decode_solve(&bytes);
        let _ = decode_consult(&bytes);
        let _ = decode_retrievals(&bytes);
        let _ = decode_solve_outcome(&bytes);
        let _ = decode_server_stats(&bytes);
        let _ = decode_symbols(&bytes);
        let _ = decode_error(&bytes);
    }
}

/// One server shared by the live-fire property below.
fn spawn_server() -> NetServer {
    let mut b = KbBuilder::new();
    b.consult("m", "p(a). p(b). q(c, d).").unwrap();
    let crs = Arc::new(ClauseRetrievalServer::new(
        b.finish(KbConfig::default()),
        CrsOptions::default(),
    ));
    NetServer::bind(
        crs,
        "127.0.0.1:0",
        NetConfig {
            workers: 2,
            ..NetConfig::default()
        },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fire a random-opcode, random-payload frame at a live server: the
    /// server must answer the frame's id with *something* (a reply or an
    /// error frame) and then still serve a correct retrieval on the same
    /// connection. This pins "malformed input yields error frames, not
    /// disconnects and not dead workers".
    #[test]
    fn live_server_survives_arbitrary_frames(
        op in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(&encode_client_hello(PROTOCOL_VERSION)).unwrap();
        let mut hello = [0u8; SERVER_HELLO_LEN];
        stream.read_exact(&mut hello).unwrap();

        let mut reader = FrameReader::new(MAX_FRAME_LEN);
        stream.write_all(&Frame::new(7, op, payload).encoded()).unwrap();
        // Whatever the opcode decoded to, id 7 must eventually be
        // answered — directly, or implicitly by the connection staying
        // healthy for the probe below. Consume frames until the probe's
        // reply appears; every intermediate frame must carry id 7.
        stream.write_all(&Frame::new(8, opcode::PING, Vec::new()).encoded()).unwrap();
        loop {
            let frame = reader.read_frame(&mut stream).unwrap();
            if frame.request_id == 8 {
                prop_assert_eq!(frame.opcode, opcode::PING | opcode::REPLY);
                break;
            }
            prop_assert_eq!(frame.request_id, 7);
        }

        // The service still answers real queries on this connection.
        drop(stream);
        let mut client = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
        let mut symbols = client.symbols().unwrap();
        let query = parse_term("p(X)", &mut symbols).unwrap();
        let got = client.retrieve(&query, SearchMode::TwoStage).unwrap();
        prop_assert_eq!(got.stats.unified, 2);
        server.shutdown();
    }
}
