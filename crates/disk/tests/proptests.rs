//! Property tests for track layout and streaming timing.

use clare_disk::{ByteRate, DiskProfile, FileBuilder, SimNanos};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Records come back in order, none lost, none split across tracks.
    #[test]
    fn layout_preserves_records(
        sizes in prop::collection::vec(1usize..400, 0..60),
        track_bytes in 400usize..2000,
    ) {
        let mut builder = FileBuilder::new(track_bytes);
        for (i, size) in sizes.iter().enumerate() {
            builder.append_record(&vec![i as u8; *size]).unwrap();
        }
        let file = builder.finish("prop");
        prop_assert_eq!(file.record_count(), sizes.len());
        let mut seen = Vec::new();
        for track in file.tracks() {
            let mut used = 0usize;
            for record in track.records() {
                seen.push(record.len());
                used += record.len();
                // First byte identifies the record index.
                if !record.is_empty() {
                    prop_assert_eq!(record[0] as usize, seen.len() - 1);
                }
            }
            prop_assert!(used <= track_bytes, "track never over-filled");
            prop_assert_eq!(track.used_bytes(), used);
        }
        prop_assert_eq!(seen, sizes);
    }

    /// Streaming time equals the closed-form scan time, and rates never
    /// exceed the sustained rate.
    #[test]
    fn stream_timing_consistent(n_records in 1usize..120) {
        let profile = DiskProfile::micropolis_1325();
        let mut builder = FileBuilder::new(profile.track_bytes());
        for _ in 0..n_records {
            builder.append_record(&[0u8; 3000]).unwrap();
        }
        let file = builder.finish("prop");
        let mut stream = file.stream(&profile);
        while stream.next_track().is_some() {}
        let stats = stream.stats();
        prop_assert_eq!(stats.elapsed, file.scan_time(&profile));
        prop_assert_eq!(stats.records, n_records as u64);
        let rate = stats.rate().unwrap();
        prop_assert!(rate.as_bytes_per_sec() <= profile.sustained_rate().as_bytes_per_sec() + 1.0);
    }

    /// Transfer time inverts the rate within rounding.
    #[test]
    fn rate_transfer_inverse(mb in 0.1f64..20.0, bytes in 1u64..100_000_000) {
        let rate = ByteRate::from_mb_per_sec(mb);
        let t = rate.transfer_time(bytes);
        let back = ByteRate::observed(bytes, t).unwrap();
        let rel = (back.as_bytes_per_sec() - rate.as_bytes_per_sec()).abs()
            / rate.as_bytes_per_sec();
        prop_assert!(rel < 1e-3, "relative error {rel}");
    }

    /// SimNanos arithmetic is consistent with u64 arithmetic.
    #[test]
    fn simnanos_arithmetic(a in 0u64..1 << 40, b in 0u64..1 << 40, k in 0u64..1000) {
        let (sa, sb) = (SimNanos::from_ns(a), SimNanos::from_ns(b));
        prop_assert_eq!((sa + sb).as_ns(), a + b);
        prop_assert_eq!((sa * k).as_ns(), a * k);
        prop_assert_eq!(sa.max(sb).as_ns(), a.max(b));
        prop_assert_eq!(sa.saturating_sub(sb).as_ns(), a.saturating_sub(b));
    }
}
