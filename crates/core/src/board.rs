//! The CLARE board as a whole: both filter stages behind the shared
//! VMEbus window.
//!
//! "Both filtering stages, FS1 and FS2, appear in the form of plug-in
//! circuit boards. A common address space from ffff7e00(hex) to
//! ffff7fff(hex) … is shared by FS1 and FS2. The two filters are mutually
//! exclusive. The selection between the two is governed by the third
//! least significant bit, b₂, of an 8-bit control register — a 0 in b₂
//! selects FS1 and a 1 selects FS2." (§2.2.)
//!
//! [`ClareBoard`] enforces exactly that: driving the deselected filter is
//! an error, and the control register is shared between the stages.

use clare_fs2::control::{VME_WINDOW_END, VME_WINDOW_START};
use clare_fs2::device::Fs2Error;
use clare_fs2::{ControlRegister, FilterSelect, Fs2Device, OperationalMode};
use clare_scw::ClauseAddr;
use clare_scw::{encode_query_descriptor, IndexFile, QueryDescriptor, ScanOutcome, ScwConfig};
use clare_term::Term;
use std::fmt;

/// Errors from driving the board against its select bit.
#[derive(Debug, Clone, PartialEq)]
pub enum BoardError {
    /// The addressed filter is not the one b₂ selects.
    FilterNotSelected {
        /// The filter currently mapped into the window.
        selected: FilterSelect,
    },
    /// An FS2 protocol error.
    Fs2(Fs2Error),
    /// The FS1 stage was driven out of its mode protocol.
    Fs1Protocol {
        /// The mode the register is in.
        current: OperationalMode,
        /// The mode the action needs.
        needed: OperationalMode,
    },
    /// An FS1 search started before a query descriptor was loaded.
    Fs1NotReady,
}

impl fmt::Display for BoardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoardError::FilterNotSelected { selected } => write!(
                f,
                "the shared window currently addresses {selected:?}; flip control bit b2 first"
            ),
            BoardError::Fs2(e) => write!(f, "{e}"),
            BoardError::Fs1Protocol { current, needed } => {
                write!(f, "FS1 stage is in {current} mode but {needed} is required")
            }
            BoardError::Fs1NotReady => f.write_str("FS1 search started without a query descriptor"),
        }
    }
}

impl std::error::Error for BoardError {}

impl From<Fs2Error> for BoardError {
    fn from(e: Fs2Error) -> Self {
        BoardError::Fs2(e)
    }
}

/// Both CLARE filter boards behind one control register.
///
/// # Examples
///
/// ```
/// use clare_core::board::ClareBoard;
/// use clare_fs2::FilterSelect;
///
/// let mut board = ClareBoard::new();
/// board.select(FilterSelect::Fs2);
/// assert!(board.fs2_mut().is_ok());
/// board.select(FilterSelect::Fs1);
/// assert!(board.fs2_mut().is_err(), "FS2 unmapped while FS1 selected");
/// ```
#[derive(Debug)]
pub struct ClareBoard {
    control: ControlRegister,
    fs2: Fs2Device,
    fs1_descriptor: Option<QueryDescriptor>,
    fs1_results: Vec<ClauseAddr>,
}

impl ClareBoard {
    /// A powered-up board: FS1 selected (b₂ = 0), Read Result mode.
    pub fn new() -> Self {
        ClareBoard {
            control: ControlRegister::new(),
            fs2: Fs2Device::new(),
            fs1_descriptor: None,
            fs1_results: Vec::new(),
        }
    }

    /// The first byte of the shared VME window.
    pub fn window_start() -> u32 {
        VME_WINDOW_START
    }

    /// The last byte of the shared VME window.
    pub fn window_end() -> u32 {
        VME_WINDOW_END
    }

    /// The shared control register, as the host reads it.
    pub fn control(&self) -> ControlRegister {
        self.control
    }

    /// Flips the b₂ select bit.
    pub fn select(&mut self, filter: FilterSelect) {
        self.control.select_filter(filter);
    }

    /// Which filter the window currently addresses.
    pub fn selected(&self) -> FilterSelect {
        self.control.filter()
    }

    /// Sets the operational mode bits (shared register; they apply to
    /// whichever filter is selected).
    pub fn set_mode(&mut self, mode: OperationalMode) {
        self.control.set_mode(mode);
        self.fs2.set_mode(mode);
    }

    /// Access to the FS2 device.
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::FilterNotSelected`] while b₂ selects FS1.
    pub fn fs2_mut(&mut self) -> Result<&mut Fs2Device, BoardError> {
        if self.selected() == FilterSelect::Fs2 {
            Ok(&mut self.fs2)
        } else {
            Err(BoardError::FilterNotSelected {
                selected: self.selected(),
            })
        }
    }

    /// Runs an FS1 index scan through the board (one-shot convenience:
    /// encodes the query and scans, regardless of operational mode).
    ///
    /// # Errors
    ///
    /// Returns [`BoardError::FilterNotSelected`] while b₂ selects FS2.
    pub fn fs1_scan(&mut self, index: &IndexFile, query: &Term) -> Result<ScanOutcome, BoardError> {
        if self.selected() != FilterSelect::Fs1 {
            return Err(BoardError::FilterNotSelected {
                selected: self.selected(),
            });
        }
        let outcome = index.scan(query);
        self.control.set_match_found(!outcome.matches.is_empty());
        Ok(outcome)
    }

    fn require_fs1(&self, needed: OperationalMode) -> Result<(), BoardError> {
        if self.selected() != FilterSelect::Fs1 {
            return Err(BoardError::FilterNotSelected {
                selected: self.selected(),
            });
        }
        if self.control.mode() != needed {
            return Err(BoardError::Fs1Protocol {
                current: self.control.mode(),
                needed,
            });
        }
        Ok(())
    }

    /// Compiles and loads the FS1 query descriptor (Set Query mode, FS1
    /// selected) — the register-level protocol, symmetric with FS2.
    ///
    /// # Errors
    ///
    /// [`BoardError::FilterNotSelected`] or [`BoardError::Fs1Protocol`].
    pub fn fs1_set_query(&mut self, query: &Term, config: &ScwConfig) -> Result<(), BoardError> {
        self.require_fs1(OperationalMode::SetQuery)?;
        self.fs1_descriptor = Some(encode_query_descriptor(query, config));
        self.fs1_results.clear();
        Ok(())
    }

    /// Streams a secondary file through the loaded descriptor (Search
    /// mode), accumulating clause addresses.
    ///
    /// # Errors
    ///
    /// [`BoardError::FilterNotSelected`], [`BoardError::Fs1Protocol`], or
    /// [`BoardError::Fs1NotReady`].
    pub fn fs1_search(&mut self, index: &IndexFile) -> Result<usize, BoardError> {
        self.require_fs1(OperationalMode::Search)?;
        let descriptor = self
            .fs1_descriptor
            .as_ref()
            .ok_or(BoardError::Fs1NotReady)?;
        let outcome = index.scan_with_descriptor(descriptor);
        let found = outcome.matches.len();
        self.fs1_results.extend(outcome.matches);
        self.control.set_match_found(!self.fs1_results.is_empty());
        Ok(found)
    }

    /// Reads (and drains) the accumulated FS1 matches (Read Result mode).
    ///
    /// # Errors
    ///
    /// [`BoardError::FilterNotSelected`] or [`BoardError::Fs1Protocol`].
    pub fn fs1_read_results(&mut self) -> Result<Vec<ClauseAddr>, BoardError> {
        self.require_fs1(OperationalMode::ReadResult)?;
        Ok(std::mem::take(&mut self.fs1_results))
    }

    /// The match-found flag (b₇) from the last operation on either stage.
    pub fn match_found(&self) -> bool {
        self.control.match_found() || self.fs2.match_found()
    }
}

impl Default for ClareBoard {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_pif::encode_query;
    use clare_scw::{ClauseAddr, ScwConfig};
    use clare_term::parser::parse_term;
    use clare_term::SymbolTable;

    #[test]
    fn powers_up_with_fs1_selected() {
        let board = ClareBoard::new();
        assert_eq!(board.selected(), FilterSelect::Fs1);
        assert!(!board.match_found());
    }

    #[test]
    fn mutual_exclusivity_enforced() {
        let mut board = ClareBoard::new();
        let mut sy = SymbolTable::new();
        let q = parse_term("p(a)", &mut sy).unwrap();
        let index = IndexFile::new(ScwConfig::paper());
        // FS1 selected: FS1 works, FS2 is unmapped.
        assert!(board.fs1_scan(&index, &q).is_ok());
        assert!(matches!(
            board.fs2_mut(),
            Err(BoardError::FilterNotSelected { .. })
        ));
        // Flip b2: the situation inverts.
        board.select(FilterSelect::Fs2);
        assert!(board.fs2_mut().is_ok());
        assert!(matches!(
            board.fs1_scan(&index, &q),
            Err(BoardError::FilterNotSelected { .. })
        ));
    }

    #[test]
    fn fs1_scan_sets_match_flag() {
        let mut board = ClareBoard::new();
        let mut sy = SymbolTable::new();
        let mut index = IndexFile::new(ScwConfig::paper());
        let head = parse_term("p(a)", &mut sy).unwrap();
        index.insert(&head, ClauseAddr::new(0, 0));
        let q = parse_term("p(a)", &mut sy).unwrap();
        let outcome = board.fs1_scan(&index, &q).unwrap();
        assert_eq!(outcome.matches.len(), 1);
        assert!(board.match_found());
        // A missing query clears it.
        let miss = parse_term("p(zzz)", &mut sy).unwrap();
        board.fs1_scan(&index, &miss).unwrap();
        assert!(!board.match_found());
    }

    #[test]
    fn full_fs2_protocol_through_the_board() {
        let mut board = ClareBoard::new();
        board.select(FilterSelect::Fs2);
        board.set_mode(OperationalMode::Microprogramming);
        let program = clare_fs2::Microprogram::standard();
        board.fs2_mut().unwrap().load_program(&program).unwrap();
        board.set_mode(OperationalMode::SetQuery);
        let mut sy = SymbolTable::new();
        let q = parse_term("p(a)", &mut sy).unwrap();
        board
            .fs2_mut()
            .unwrap()
            .set_query(&encode_query(&q).unwrap())
            .unwrap();
        board.set_mode(OperationalMode::Search);
        // Build one track with a hit.
        let mut fb = clare_disk::FileBuilder::new(16 * 1024);
        let clause = clare_term::parser::parse_clause("p(a).", &mut sy).unwrap();
        fb.append_record(
            &clare_pif::ClauseRecord::compile(&clause)
                .unwrap()
                .to_bytes(),
        )
        .unwrap();
        let file = fb.finish("t");
        let stats = board
            .fs2_mut()
            .unwrap()
            .search_track(&file.tracks()[0])
            .unwrap();
        assert_eq!(stats.satisfiers, 1);
        assert!(board.match_found());
    }

    #[test]
    fn fs1_register_protocol() {
        let mut board = ClareBoard::new();
        let mut sy = SymbolTable::new();
        let config = ScwConfig::paper();
        let mut index = IndexFile::new(config);
        for (i, src) in ["p(a)", "p(b)", "p(a)"].iter().enumerate() {
            let head = parse_term(src, &mut sy).unwrap();
            index.insert(&head, ClauseAddr::new(0, i as u16));
        }
        let q = parse_term("p(a)", &mut sy).unwrap();
        // Searching before Set Query is a protocol error.
        board.set_mode(OperationalMode::Search);
        assert!(matches!(
            board.fs1_search(&index),
            Err(BoardError::Fs1NotReady)
        ));
        // Setting the query in the wrong mode is a protocol error.
        assert!(matches!(
            board.fs1_set_query(&q, &config),
            Err(BoardError::Fs1Protocol { .. })
        ));
        // The correct sequence works.
        board.set_mode(OperationalMode::SetQuery);
        board.fs1_set_query(&q, &config).unwrap();
        board.set_mode(OperationalMode::Search);
        assert_eq!(board.fs1_search(&index).unwrap(), 2);
        assert!(board.match_found());
        board.set_mode(OperationalMode::ReadResult);
        let results = board.fs1_read_results().unwrap();
        assert_eq!(results, vec![ClauseAddr::new(0, 0), ClauseAddr::new(0, 2)]);
        // Draining empties the result store.
        assert!(board.fs1_read_results().unwrap().is_empty());
    }

    #[test]
    fn window_bounds_exposed() {
        assert_eq!(ClareBoard::window_start(), 0xffff_7e00);
        assert_eq!(ClareBoard::window_end(), 0xffff_7fff);
    }
}
