//! Track-organized record files and streaming reads.
//!
//! Records are opaque byte strings to this crate (the PIF layer defines
//! their contents). A record never spans a track boundary: the paper sizes
//! FS2's Result Memory to hold "all clause satisfiers of one disk track —
//! the worst case of a single FS2 search call", which presumes track-aligned
//! records.
//!
//! Every track carries a CRC32C over its record stream, maintained
//! incrementally by [`FileBuilder`]. Readers that must not trust the
//! medium go through [`StoredFile::read_track`], which verifies the
//! checksum (memoized, so the clean path pays it once per track per
//! file), applies any installed [fault injector](clare_fault) first, and
//! reports whether the delivered bytes are intact.

use crate::profile::DiskProfile;
use crate::time::{ByteRate, SimNanos};
use clare_fault::{crc32c_append, FaultAction, FaultSite};
use std::borrow::Cow;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Error from [`FileBuilder::append_record`]: the record exceeds one track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordTooLargeError {
    /// Size of the offending record.
    pub record_bytes: usize,
    /// The track capacity it must fit in.
    pub track_bytes: usize,
}

impl fmt::Display for RecordTooLargeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "record of {} bytes does not fit a {}-byte track",
            self.record_bytes, self.track_bytes
        )
    }
}

impl std::error::Error for RecordTooLargeError {}

/// Error from [`FileBuilder::try_new`]: a zero track capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidTrackSizeError;

impl fmt::Display for InvalidTrackSizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "track size must be positive")
    }
}

impl std::error::Error for InvalidTrackSizeError {}

/// One disk track's worth of records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Track {
    records: Vec<Vec<u8>>,
    used_bytes: usize,
    crc: u32,
}

impl Track {
    /// Records stored on this track, in layout order.
    pub fn records(&self) -> &[Vec<u8>] {
        &self.records
    }

    /// Bytes occupied by records (excluding end-of-track padding).
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of records on the track.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// The CRC32C stored when the track was laid out (over each record's
    /// big-endian `u32` length followed by its bytes, so record boundary
    /// shifts are detected too).
    pub fn stored_crc(&self) -> u32 {
        self.crc
    }

    /// Recomputes the record-stream CRC32C from the bytes actually
    /// present. Equal to [`Self::stored_crc`] iff the track is intact.
    pub fn compute_crc(&self) -> u32 {
        let mut crc = 0u32;
        for record in &self.records {
            crc = crc32c_append(crc, &(record.len() as u32).to_be_bytes());
            crc = crc32c_append(crc, record);
        }
        crc
    }

    fn push_record(&mut self, record: &[u8]) {
        self.crc = crc32c_append(self.crc, &(record.len() as u32).to_be_bytes());
        self.crc = crc32c_append(self.crc, record);
        self.records.push(record.to_vec());
        self.used_bytes += record.len();
    }
}

/// Builds a [`StoredFile`] by appending records first-fit onto tracks.
#[derive(Debug)]
pub struct FileBuilder {
    track_bytes: usize,
    tracks: Vec<Track>,
}

impl FileBuilder {
    /// Creates a builder for tracks of `track_bytes` capacity.
    ///
    /// # Panics
    ///
    /// Panics if `track_bytes` is zero; use [`Self::try_new`] to handle
    /// untrusted geometry.
    pub fn new(track_bytes: usize) -> Self {
        match Self::try_new(track_bytes) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Self::new`].
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTrackSizeError`] when `track_bytes` is zero.
    pub fn try_new(track_bytes: usize) -> Result<Self, InvalidTrackSizeError> {
        if track_bytes == 0 {
            return Err(InvalidTrackSizeError);
        }
        Ok(FileBuilder {
            track_bytes,
            tracks: vec![Track::default()],
        })
    }

    /// Appends a record, starting a new track when the current one is full.
    ///
    /// # Errors
    ///
    /// Returns [`RecordTooLargeError`] if the record alone exceeds a track.
    pub fn append_record(&mut self, record: &[u8]) -> Result<(), RecordTooLargeError> {
        if record.len() > self.track_bytes {
            return Err(RecordTooLargeError {
                record_bytes: record.len(),
                track_bytes: self.track_bytes,
            });
        }
        let needs_new_track = match self.tracks.last() {
            Some(open) => open.used_bytes + record.len() > self.track_bytes,
            None => true,
        };
        if needs_new_track {
            self.tracks.push(Track::default());
        }
        let last = self.tracks.len() - 1;
        self.tracks[last].push_record(record);
        Ok(())
    }

    /// Finishes the file. An empty trailing track is dropped.
    pub fn finish(mut self, name: impl Into<String>) -> StoredFile {
        if self
            .tracks
            .last()
            .is_some_and(|t| t.records.is_empty() && self.tracks.len() > 1)
        {
            self.tracks.pop();
        }
        let verified = Arc::new(VerifyCache::new(self.tracks.len()));
        StoredFile {
            name: name.into(),
            track_bytes: self.track_bytes,
            tracks: self.tracks,
            verified,
        }
    }
}

/// Memoizes per-track checksum verification: an atomic bitset marking
/// tracks whose stored and recomputed CRCs were seen to agree, so the
/// clean read path pays the CRC once per track per file lifetime.
#[derive(Debug, Default)]
struct VerifyCache {
    bits: Vec<AtomicU64>,
}

impl VerifyCache {
    fn new(tracks: usize) -> Self {
        VerifyCache {
            bits: (0..tracks.div_ceil(64))
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    fn get(&self, i: usize) -> bool {
        match self.bits.get(i / 64) {
            Some(word) => word.load(Ordering::Relaxed) >> (i % 64) & 1 == 1,
            None => false,
        }
    }

    fn set(&self, i: usize) {
        if let Some(word) = self.bits.get(i / 64) {
            word.fetch_or(1 << (i % 64), Ordering::Relaxed);
        }
    }
}

/// A record file laid out on disk tracks.
///
/// # Examples
///
/// ```
/// use clare_disk::{DiskProfile, FileBuilder};
///
/// let profile = DiskProfile::micropolis_1325();
/// let mut b = FileBuilder::new(profile.track_bytes());
/// for i in 0..100u32 {
///     b.append_record(&i.to_be_bytes())?;
/// }
/// let file = b.finish("numbers");
/// let mut stream = file.stream(&profile);
/// let mut seen = 0;
/// while let Some(track) = stream.next_track() {
///     seen += track.record_count();
/// }
/// assert_eq!(seen, 100);
/// assert!(stream.stats().elapsed.as_ns() > 0);
/// # Ok::<(), clare_disk::RecordTooLargeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StoredFile {
    name: String,
    track_bytes: usize,
    tracks: Vec<Track>,
    /// Shared across clones: verification is a property of the stored
    /// bytes, which clones share.
    verified: Arc<VerifyCache>,
}

impl PartialEq for StoredFile {
    /// The verification memo is a cache, not content — two files compare
    /// equal iff their layout and bytes do.
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.track_bytes == other.track_bytes
            && self.tracks == other.tracks
    }
}

impl StoredFile {
    /// File name (diagnostic only).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Track capacity this file was laid out for.
    pub fn track_bytes(&self) -> usize {
        self.track_bytes
    }

    /// The tracks in order.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Number of tracks occupied.
    pub fn track_count(&self) -> usize {
        self.tracks.len()
    }

    /// Total records across all tracks.
    pub fn record_count(&self) -> usize {
        self.tracks.iter().map(Track::record_count).sum()
    }

    /// Total record payload bytes (excluding padding).
    pub fn payload_bytes(&self) -> usize {
        self.tracks.iter().map(Track::used_bytes).sum()
    }

    /// Bytes the file occupies on disk (whole tracks, including padding) —
    /// what a full scan must transfer.
    pub fn occupied_bytes(&self) -> usize {
        self.tracks.len() * self.track_bytes
    }

    /// Starts a timed streaming read of the whole file.
    pub fn stream<'a>(&'a self, profile: &'a DiskProfile) -> TrackStream<'a> {
        TrackStream {
            file: self,
            profile,
            next: 0,
            stats: TransferStats::default(),
        }
    }

    /// Time for one exhaustive sequential scan on `profile`.
    pub fn scan_time(&self, profile: &DiskProfile) -> SimNanos {
        profile.sequential_read_time(self.tracks.len() as u64)
    }

    /// Delivers track `t` as a reader must see it: through the installed
    /// [fault injector](clare_fault) (which may flip bits or cut the read
    /// short) and through CRC32C verification of whatever arrives.
    ///
    /// The clean path borrows the track and memoizes the checksum, so
    /// repeated reads cost one atomic load. A faulted read clones the
    /// track, corrupts the clone, and reports `intact() == false` when
    /// verification catches it.
    pub fn read_track(&self, t: usize) -> Option<TrackRead<'_>> {
        let track = self.tracks.get(t)?;
        if clare_fault::active() {
            let ctx = (t as u64) ^ (fnv1a(self.name.as_bytes()) << 24);
            match clare_fault::decide(FaultSite::DiskTrackRead, ctx) {
                FaultAction::FlipBit { bit } if track.record_count() > 0 => {
                    let mut dirty = track.clone();
                    let n_records = dirty.records.len() as u64;
                    let r = (bit % n_records) as usize;
                    let record = &mut dirty.records[r];
                    if !record.is_empty() {
                        let i = ((bit / n_records) % (record.len() as u64 * 8)) as usize;
                        record[i / 8] ^= 1 << (i % 8);
                    }
                    let intact = dirty.compute_crc() == dirty.stored_crc();
                    return Some(TrackRead {
                        track: Cow::Owned(dirty),
                        intact,
                    });
                }
                FaultAction::Truncate { keep } if track.record_count() > 0 => {
                    // A short read: only a prefix of the records arrives.
                    let mut dirty = track.clone();
                    let keep = (keep % dirty.records.len() as u64) as usize;
                    dirty.records.truncate(keep);
                    dirty.used_bytes = dirty.records.iter().map(Vec::len).sum();
                    let intact = dirty.compute_crc() == dirty.stored_crc();
                    return Some(TrackRead {
                        track: Cow::Owned(dirty),
                        intact,
                    });
                }
                _ => {}
            }
        }
        let intact = self.verify_track(t, track);
        Some(TrackRead {
            track: Cow::Borrowed(track),
            intact,
        })
    }

    /// Verifies a track's checksum, memoizing successes.
    fn verify_track(&self, t: usize, track: &Track) -> bool {
        if self.verified.get(t) {
            return true;
        }
        let ok = track.compute_crc() == track.stored_crc();
        if ok {
            self.verified.set(t);
        }
        ok
    }
}

/// FNV-1a over the file name, to spread fault contexts across files.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One track as delivered by [`StoredFile::read_track`]: the (possibly
/// corrupted) bytes plus the integrity verdict.
#[derive(Debug)]
pub struct TrackRead<'a> {
    track: Cow<'a, Track>,
    intact: bool,
}

impl TrackRead<'_> {
    /// The delivered track contents.
    pub fn track(&self) -> &Track {
        &self.track
    }

    /// True when the delivered bytes passed CRC verification. A `false`
    /// here means the track must be quarantined: its records cannot be
    /// trusted by hardware filters and the caller should degrade to a
    /// path that re-checks every candidate.
    pub fn intact(&self) -> bool {
        self.intact
    }
}

/// Accumulated statistics for a streaming read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Simulated time spent so far (seek + latency + transfers).
    pub elapsed: SimNanos,
    /// Bytes transferred (whole tracks).
    pub bytes: u64,
    /// Tracks delivered.
    pub tracks: u64,
    /// Records delivered.
    pub records: u64,
}

impl TransferStats {
    /// The effective delivery rate so far, if any time has elapsed.
    pub fn rate(&self) -> Option<ByteRate> {
        ByteRate::observed(self.bytes, self.elapsed)
    }
}

/// A streaming, timed read over a [`StoredFile`]'s tracks.
///
/// Each [`next_track`](Self::next_track) call accounts the simulated time
/// to deliver that track: the first call pays the average seek and
/// rotational latency, later calls pay a cylinder-to-cylinder seek when the
/// track index crosses a cylinder boundary, and every call pays the track
/// transfer time.
#[derive(Debug)]
pub struct TrackStream<'a> {
    file: &'a StoredFile,
    profile: &'a DiskProfile,
    next: usize,
    stats: TransferStats,
}

impl<'a> TrackStream<'a> {
    /// Delivers the next track, or `None` at end of file.
    pub fn next_track(&mut self) -> Option<&'a Track> {
        let track = self.file.tracks.get(self.next)?;
        if self.next == 0 {
            self.stats.elapsed += self.profile.avg_seek() + self.profile.avg_rotational_latency();
        } else if self
            .next
            .is_multiple_of(self.profile.tracks_per_cylinder() as usize)
        {
            self.stats.elapsed += self.profile.track_to_track_seek();
        }
        self.stats.elapsed += self.profile.track_transfer_time();
        self.stats.bytes += self.file.track_bytes as u64;
        self.stats.tracks += 1;
        self.stats.records += track.record_count() as u64;
        self.next += 1;
        Some(track)
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> TransferStats {
        self.stats
    }

    /// Index of the track the next call will deliver.
    pub fn position(&self) -> usize {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> DiskProfile {
        DiskProfile::fujitsu_m2351a()
    }

    #[test]
    fn records_fill_tracks_without_spanning() {
        let mut b = FileBuilder::new(100);
        b.append_record(&[0u8; 60]).unwrap();
        b.append_record(&[1u8; 60]).unwrap(); // doesn't fit track 0
        let f = b.finish("t");
        assert_eq!(f.track_count(), 2);
        assert_eq!(f.tracks()[0].record_count(), 1);
        assert_eq!(f.tracks()[0].used_bytes(), 60);
        assert_eq!(f.tracks()[1].used_bytes(), 60);
        assert_eq!(f.payload_bytes(), 120);
        assert_eq!(f.occupied_bytes(), 200);
    }

    #[test]
    fn exact_fit_does_not_open_new_track() {
        let mut b = FileBuilder::new(100);
        b.append_record(&[0u8; 50]).unwrap();
        b.append_record(&[1u8; 50]).unwrap();
        let f = b.finish("t");
        assert_eq!(f.track_count(), 1);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut b = FileBuilder::new(100);
        let err = b.append_record(&[0u8; 101]).unwrap_err();
        assert_eq!(err.record_bytes, 101);
        assert_eq!(err.track_bytes, 100);
    }

    #[test]
    fn empty_file_has_one_empty_track() {
        let f = FileBuilder::new(100).finish("empty");
        assert_eq!(f.track_count(), 1);
        assert_eq!(f.record_count(), 0);
    }

    #[test]
    fn stream_visits_every_record_in_order() {
        let p = profile();
        let mut b = FileBuilder::new(64);
        for i in 0..10u8 {
            b.append_record(&[i; 20]).unwrap();
        }
        let f = b.finish("t");
        let mut s = f.stream(&p);
        let mut seen = Vec::new();
        while let Some(track) = s.next_track() {
            for r in track.records() {
                seen.push(r[0]);
            }
        }
        assert_eq!(seen, (0..10).collect::<Vec<u8>>());
        assert_eq!(s.stats().records, 10);
        assert_eq!(s.stats().tracks as usize, f.track_count());
    }

    #[test]
    fn stream_timing_matches_scan_time() {
        let p = profile();
        let mut b = FileBuilder::new(p.track_bytes());
        // Enough records for several cylinders.
        let n_tracks_wanted = p.tracks_per_cylinder() as usize * 2 + 3;
        for _ in 0..n_tracks_wanted {
            b.append_record(&vec![7u8; p.track_bytes()]).unwrap();
        }
        let f = b.finish("big");
        assert_eq!(f.track_count(), n_tracks_wanted);
        let mut s = f.stream(&p);
        while s.next_track().is_some() {}
        assert_eq!(s.stats().elapsed, f.scan_time(&p));
    }

    #[test]
    fn first_track_pays_seek_and_latency() {
        let p = profile();
        let mut b = FileBuilder::new(p.track_bytes());
        b.append_record(&[1u8; 10]).unwrap();
        let f = b.finish("t");
        let mut s = f.stream(&p);
        s.next_track().unwrap();
        assert_eq!(
            s.stats().elapsed,
            p.avg_seek() + p.avg_rotational_latency() + p.track_transfer_time()
        );
    }

    #[test]
    fn tracks_carry_matching_crcs_from_the_builder() {
        let mut b = FileBuilder::new(100);
        for i in 0..9u8 {
            b.append_record(&[i; 33]).unwrap();
        }
        let f = b.finish("t");
        for (i, track) in f.tracks().iter().enumerate() {
            assert_eq!(track.compute_crc(), track.stored_crc(), "track {i}");
            let read = f.read_track(i).unwrap();
            assert!(read.intact());
            assert_eq!(read.track(), track);
        }
        assert!(f.read_track(f.track_count()).is_none());
    }

    #[test]
    fn any_single_bit_flip_is_caught_by_the_track_crc() {
        // Exhaustive over a small track: flip every bit of every record
        // (and every bit of a record length via boundary shifts below).
        let mut b = FileBuilder::new(64);
        b.append_record(&[0xA5; 11]).unwrap();
        b.append_record(&[0x3C; 7]).unwrap();
        b.append_record(&[0x00; 13]).unwrap();
        let f = b.finish("flips");
        let clean = &f.tracks()[0];
        for r in 0..clean.record_count() {
            for bit in 0..clean.records()[r].len() * 8 {
                let mut dirty = clean.clone();
                dirty.records[r][bit / 8] ^= 1 << (bit % 8);
                assert_ne!(
                    dirty.compute_crc(),
                    dirty.stored_crc(),
                    "flip of record {r} bit {bit} went undetected"
                );
            }
        }
        // Boundary shifts: moving a byte across a record boundary keeps
        // the concatenated payload identical but must still be caught.
        let mut shifted = clean.clone();
        let moved = shifted.records[0].pop().unwrap();
        shifted.records[1].insert(0, moved);
        assert_ne!(shifted.compute_crc(), shifted.stored_crc());
        // Dropped trailing record (a short read) is caught too.
        let mut short = clean.clone();
        short.records.pop();
        assert_ne!(short.compute_crc(), short.stored_crc());
    }

    #[test]
    fn builder_never_panics_on_degenerate_inputs() {
        assert!(FileBuilder::try_new(0).is_err());
        let mut b = FileBuilder::try_new(1).unwrap();
        b.append_record(&[]).unwrap(); // zero-length records are legal
        b.append_record(&[9]).unwrap();
        assert!(b.append_record(&[0; 2]).is_err());
        let f = b.finish("tiny");
        assert_eq!(f.record_count(), 2);
        let read = f.read_track(0).unwrap();
        assert!(read.intact());
    }

    #[test]
    fn injected_disk_faults_are_flagged_not_trusted() {
        use clare_fault::{DeterministicInjector, FaultPlan, FaultSite};
        let mut b = FileBuilder::new(64);
        for i in 0..12u8 {
            b.append_record(&[i; 15]).unwrap();
        }
        let f = b.finish("faulted");
        let plan = FaultPlan::none().with(FaultSite::DiskTrackRead, 1000);
        let _guard =
            clare_fault::install(std::sync::Arc::new(DeterministicInjector::new(11, plan)));
        let mut flagged = 0;
        for t in 0..f.track_count() {
            let read = f.read_track(t).unwrap();
            if !read.intact() {
                flagged += 1;
                // The corruption never silently matches the stored CRC.
                assert_ne!(read.track().compute_crc(), read.track().stored_crc());
            }
        }
        assert!(flagged > 0, "a 100% fault plan corrupted nothing");
    }

    #[test]
    fn delivery_rate_approaches_sustained_for_long_files() {
        let p = profile();
        let mut b = FileBuilder::new(p.track_bytes());
        for _ in 0..500 {
            b.append_record(&vec![0u8; p.track_bytes()]).unwrap();
        }
        let f = b.finish("long");
        let mut s = f.stream(&p);
        while s.next_track().is_some() {}
        let rate = s.stats().rate().unwrap();
        let sustained = p.sustained_rate().as_bytes_per_sec();
        assert!(
            rate.as_bytes_per_sec() > sustained * 0.85,
            "long scans amortise seeks: {rate} vs {}",
            p.sustained_rate()
        );
        assert!(rate.as_bytes_per_sec() <= sustained);
    }
}
