//! A lightweight span API with a pluggable sink.
//!
//! A [`span`] guard measures the wall-clock time of a scope and, on
//! drop, hands a [`SpanEvent`] to the installed [`Sink`]. With no sink
//! installed (the default) opening a span costs one relaxed atomic load
//! and skips the clock reads entirely, so instrumentation can stay in
//! the hot paths permanently. [`RingSink`] keeps the last N events in
//! memory for the repl; [`JsonlSink`] appends one JSON object per event
//! to any writer (a file, a pipe).

use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One finished span: a static name and the wall-clock duration of the
/// scope it guarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// The name passed to [`span`].
    pub name: &'static str,
    /// Scope duration in nanoseconds.
    pub dur_ns: u64,
}

/// Where finished spans go. Implementations must be cheap and must not
/// panic — sinks run inside the instrumented hot paths.
pub trait Sink: Send + Sync {
    /// Receives one finished span.
    fn record(&self, event: &SpanEvent);
}

static SINK_ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

/// Installs a sink; spans recorded from now on are delivered to it.
pub fn set_sink(sink: Arc<dyn Sink>) {
    *SINK.write() = Some(sink);
    SINK_ENABLED.store(true, Ordering::Release);
}

/// Removes the installed sink, returning span recording to the free
/// no-op default.
pub fn clear_sink() {
    SINK_ENABLED.store(false, Ordering::Release);
    *SINK.write() = None;
}

/// Whether a sink is currently installed.
#[inline]
pub fn sink_enabled() -> bool {
    SINK_ENABLED.load(Ordering::Relaxed)
}

/// Guard returned by [`span`]; reports the elapsed time to the sink on
/// drop. Holds no clock state when no sink was installed at creation.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Nanoseconds since the span opened (0 when disabled).
    pub fn elapsed_ns(&self) -> u64 {
        self.start
            .map(|s| s.elapsed().as_nanos() as u64)
            .unwrap_or(0)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let event = SpanEvent {
            name: self.name,
            dur_ns: start.elapsed().as_nanos() as u64,
        };
        if let Some(sink) = SINK.read().as_ref() {
            sink.record(&event);
        }
    }
}

/// Opens a span named `name`. When no sink is installed this is one
/// relaxed load — no clock read, nothing recorded on drop.
#[inline]
pub fn span(name: &'static str) -> Span {
    let start = if sink_enabled() {
        Some(Instant::now())
    } else {
        None
    };
    Span { name, start }
}

/// Keeps the most recent `capacity` span events in a ring buffer.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: Mutex<VecDeque<SpanEvent>>,
}

impl RingSink {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            capacity,
            events: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// The buffered events, oldest first.
    pub fn drain(&self) -> Vec<SpanEvent> {
        self.events.lock().drain(..).collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for RingSink {
    fn record(&self, event: &SpanEvent) {
        let mut events = self.events.lock();
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event.clone());
    }
}

/// Appends one JSON object per span event to a writer, e.g.
/// `{"span": "fs2.sweep", "dur_ns": 48211}`. Write errors are counted,
/// not raised — sinks must not disturb the instrumented path.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
    errors: crate::metric::Counter,
}

impl<W: Write + Send> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("errors", &self.errors.get())
            .finish()
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer. Each event becomes one `\n`-terminated line.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
            errors: crate::metric::Counter::new(),
        }
    }

    /// Write errors swallowed so far.
    pub fn errors(&self) -> u64 {
        self.errors.get()
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(self) -> W {
        let mut w = self.writer.into_inner();
        let _ = w.flush();
        w
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&self, event: &SpanEvent) {
        let line = format!(
            "{{\"span\": \"{}\", \"dur_ns\": {}}}\n",
            event.name, event.dur_ns
        );
        if self.writer.lock().write_all(line.as_bytes()).is_err() {
            self.errors.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink registry is process-wide; these tests serialise on one
    // lock so parallel test threads don't steal each other's sink.
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_span_records_nothing_and_reads_no_clock() {
        let _g = TEST_GUARD.lock();
        clear_sink();
        let s = span("test.noop");
        assert_eq!(s.elapsed_ns(), 0);
        drop(s);
    }

    #[test]
    fn ring_sink_keeps_last_n() {
        let _g = TEST_GUARD.lock();
        let ring = Arc::new(RingSink::new(2));
        set_sink(ring.clone());
        for _ in 0..3 {
            drop(span("test.ring"));
        }
        clear_sink();
        let events = ring.drain();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.name == "test.ring"));
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_span() {
        let _g = TEST_GUARD.lock();
        let sink = Arc::new(JsonlSink::new(Vec::new()));
        set_sink(sink.clone());
        drop(span("test.jsonl"));
        drop(span("test.jsonl"));
        clear_sink();
        let sink = Arc::try_unwrap(sink).expect("sink uniquely owned after clear");
        assert_eq!(sink.errors(), 0);
        let buf = sink.into_inner();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"span\": \"test.jsonl\", \"dur_ns\": "));
    }

    #[test]
    fn span_measures_elapsed_when_enabled() {
        let _g = TEST_GUARD.lock();
        let ring = Arc::new(RingSink::new(8));
        set_sink(ring.clone());
        {
            let s = span("test.timed");
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert!(s.elapsed_ns() > 0);
        }
        clear_sink();
        let events = ring.drain();
        assert_eq!(events.len(), 1);
        assert!(
            events[0].dur_ns >= 1_000_000,
            "slept 2ms, got {}",
            events[0].dur_ns
        );
    }
}
