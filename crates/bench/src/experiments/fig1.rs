//! E4 — Figure 1: validation of the partial test unification algorithm.
//!
//! The paper states "the partial test unification algorithm has been
//! verified" (§4). This experiment performs that verification over a large
//! randomized term population:
//!
//! * **completeness** — no clause that fully unifies is ever rejected by
//!   the FS2 simulator (zero false negatives);
//! * **hardware/software agreement** — the word-level FS2 engine and the
//!   term-level Figure 1 reference render identical verdicts and identical
//!   operation traces;
//! * **false-drop rate** — how many Level-3 acceptances full unification
//!   later rejects.

use clare_fs2::Fs2Engine;
use clare_pif::{encode_clause_head, encode_query};
use clare_term::SymbolTable;
use clare_unify::partial::{partial_match, PartialConfig};
use clare_unify::unify_query_clause;
use clare_workload::{RandomTermSpec, RandomTerms};
use std::fmt;

/// Validation results over a random population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig1Report {
    /// Query/clause pairs examined.
    pub pairs: usize,
    /// Pairs that fully unify.
    pub unifiable: usize,
    /// Pairs the FS2 simulator accepts.
    pub fs2_accepts: usize,
    /// Unifiable pairs the FS2 simulator rejected (must be 0).
    pub false_negatives: usize,
    /// FS2 acceptances that fail full unification (Level-3 false drops).
    pub false_drops: usize,
    /// Pairs where the hardware engine and the software reference
    /// disagreed on verdict or op trace (must be 0).
    pub disagreements: usize,
}

/// Runs the validation over `pairs` random pairs.
pub fn run(pairs: usize, seed: u64) -> Fig1Report {
    let mut symbols = SymbolTable::new();
    let mut generator = RandomTerms::new(RandomTermSpec::default(), &mut symbols, seed);
    let mut report = Fig1Report {
        pairs,
        unifiable: 0,
        fs2_accepts: 0,
        false_negatives: 0,
        false_drops: 0,
        disagreements: 0,
    };
    for _ in 0..pairs {
        let query = generator.head();
        let clause = generator.head();
        let unifies = unify_query_clause(&query, &clause).is_some();
        let software = partial_match(&query, &clause, PartialConfig::fs2());
        let (q_stream, c_stream) = match (encode_query(&query), encode_clause_head(&clause)) {
            (Ok(q), Ok(c)) => (q, c),
            _ => continue,
        };
        let mut engine = Fs2Engine::new(&q_stream).expect("random queries fit query memory");
        let hardware = engine.match_clause_stream(&c_stream);
        if unifies {
            report.unifiable += 1;
        }
        if hardware.matched {
            report.fs2_accepts += 1;
            if !unifies {
                report.false_drops += 1;
            }
        } else if unifies {
            report.false_negatives += 1;
        }
        let traces_equal = hardware.ops.len() == software.ops.len()
            && hardware
                .ops
                .iter()
                .zip(&software.ops)
                .all(|(h, s)| h.name() == s.name());
        if hardware.matched != software.matched || !traces_equal {
            report.disagreements += 1;
        }
    }
    report
}

impl Fig1Report {
    /// Fraction of FS2 acceptances that are false drops.
    pub fn false_drop_rate(&self) -> f64 {
        if self.fs2_accepts == 0 {
            0.0
        } else {
            self.false_drops as f64 / self.fs2_accepts as f64
        }
    }
}

impl fmt::Display for Fig1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E4 / Figure 1: partial test unification algorithm validation\n"
        )?;
        writeln!(f, "random query/clause pairs : {}", self.pairs)?;
        writeln!(f, "fully unifiable           : {}", self.unifiable)?;
        writeln!(f, "FS2 (level 3 + cross) hits: {}", self.fs2_accepts)?;
        writeln!(
            f,
            "false negatives           : {} (completeness requires 0)",
            self.false_negatives
        )?;
        writeln!(
            f,
            "level-3 false drops       : {} ({:.1}% of hits, removed by full unification)",
            self.false_drops,
            100.0 * self.false_drop_rate()
        )?;
        writeln!(
            f,
            "hw/sw disagreements       : {} (verdicts and op traces must agree)",
            self.disagreements
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_holds_over_large_population() {
        let r = run(3000, 0xF191);
        assert_eq!(r.false_negatives, 0, "completeness violated");
        assert_eq!(r.disagreements, 0, "hw and sw models diverge");
        assert!(r.unifiable > 100, "population has matches: {}", r.unifiable);
        assert!(r.fs2_accepts >= r.unifiable);
    }

    #[test]
    fn false_drops_exist_but_are_minority() {
        let r = run(3000, 0xF192);
        assert!(r.false_drops > 0, "level 3 must have some false drops");
        assert!(
            r.false_drop_rate() < 0.5,
            "filter still discriminates: {}",
            r.false_drop_rate()
        );
    }
}
