//! Epoch-invalidated retrieval cache.
//!
//! The filters are deterministic: for a fixed knowledge base and a fixed
//! query, [`crate::retrieve`] returns byte-identical [`Retrieval`]s every
//! time. [`ClauseRetrievalServer`](crate::ClauseRetrievalServer) exploits
//! that with a sharded, bounded cache of two layers:
//!
//! * **answers** — the full [`Retrieval`] (candidates and every stat),
//!   keyed by predicate, [`SearchMode`], and the canonical PIF encoding
//!   of the query;
//! * **FS1 outcomes** — the first-stage [`ScanOutcome`] keyed without the
//!   mode, so a `TwoStage` miss can still skip the index scan a prior
//!   `Fs1Only` retrieval already paid for (and vice versa).
//!
//! # The epoch invariant
//!
//! Every entry is stamped with `(global epoch, predicate epoch)` at
//! insert, and a hit requires both stamps to still be current. Epochs
//! move only forward:
//!
//! * an **incremental** update (built via `to_builder` from the currently
//!   published base, same [`KbConfig`](clare_kb::KbConfig) fingerprint)
//!   bumps the predicate epoch of every touched predicate — module
//!   granularity, see [`KnowledgeBase::touched_predicates`];
//! * any **other** update (fresh build, loaded `.ckb`, different
//!   compilation parameters) bumps the global epoch, invalidating
//!   everything at once;
//! * a **track quarantine** bumps the affected predicate's epoch: the
//!   stored file memoizes CRC verdicts, so post-fault retrievals may
//!   legitimately differ (degraded) from what was cached before.
//!
//! The server reads the stamp and the knowledge-base snapshot under one
//! read-lock acquisition, and updates bump epochs while holding the write
//! lock — so a stamp can never pair an old base with a new epoch or vice
//! versa, and a hit is provably the byte-identical answer a fresh run of
//! the filters against the current base would produce. Degraded answers
//! are never inserted: a hit is always a fault-free answer.
//!
//! Keying by the canonical PIF stream rather than by codeword matters:
//! codewords are a lossy superimposition (false drops are the design
//! premise of FS1), so two distinct queries can share a codeword yet have
//! different answer sets. The PIF stream is lossless up to variable
//! renaming, and retrieval results are invariant under renaming.

use crate::crs::{Retrieval, SearchMode};
use clare_kb::KnowledgeBase;
use clare_scw::ScanOutcome;
use clare_term::{Symbol, Term};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Retrieval-cache knobs, carried on [`crate::CrsOptions`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Whether the server consults the cache at all. Disabled, every
    /// retrieval runs the full filter pipeline.
    pub enabled: bool,
    /// Upper bound on entries *per layer* (answers and FS1 outcomes are
    /// bounded independently), spread across the shards. Zero disables
    /// the cache.
    pub capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: true,
            capacity: 2048,
        }
    }
}

impl CacheConfig {
    /// A disabled cache (every retrieval runs the filters).
    pub fn off() -> Self {
        CacheConfig {
            enabled: false,
            capacity: 0,
        }
    }
}

/// Lock striping: keys hash to one of this many independently locked
/// shards, so concurrent clients on different predicates never contend.
const SHARDS: usize = 8;

/// The `(global, predicate)` epoch pair an entry was inserted under. A
/// hit requires exact equality with the current pair — epochs only move
/// forward, so a stale entry can never validate again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct Stamp {
    global: u64,
    predicate: u64,
}

/// Canonical identity of a cacheable query: its predicate plus the PIF
/// query stream, word for word (tag, content, *and* extension — the
/// stream is lossless up to variable renaming, and retrievals are
/// invariant under renaming). Queries that fail PIF encoding are not
/// cacheable; they fall back to the uncached path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct QueryKey {
    functor: Symbol,
    arity: usize,
    sig: Box<[u64]>,
}

impl QueryKey {
    /// Builds the canonical key, or `None` for a query the hardware (and
    /// therefore the cache) has no canonical encoding for.
    pub(crate) fn new(query: &Term) -> Option<QueryKey> {
        let (functor, arity) = query.functor_arity()?;
        let stream = clare_pif::encode_query(query).ok()?;
        let mut sig = Vec::with_capacity(stream.words().len() * 2);
        for w in stream.words() {
            sig.push(u64::from(w.to_u32()));
            // `u64::MAX` cannot collide with a real extension (u32).
            sig.push(w.extension().map_or(u64::MAX, u64::from));
        }
        Some(QueryKey {
            functor,
            arity,
            sig: sig.into(),
        })
    }

    /// The `(functor, arity)` pair epochs are tracked under.
    pub(crate) fn pred(&self) -> (Symbol, usize) {
        (self.functor, self.arity)
    }
}

/// The FS1 consultation seam handed into the scan phase: `get` is tried
/// before scanning, `put` is called with a freshly computed outcome.
/// Implemented by the server with the key and stamp captured, so the
/// phase code stays ignorant of epochs.
pub(crate) trait Fs1Cache {
    /// A still-valid cached outcome, if any.
    fn get(&self) -> Option<ScanOutcome>;
    /// Offers a freshly computed outcome for caching.
    fn put(&self, outcome: &ScanOutcome);
}

/// One bounded, FIFO-evicted cache layer. Stale entries (stamp mismatch)
/// are dropped lazily on lookup; the eviction queue bounds the map.
#[derive(Debug)]
struct Layer<K, V> {
    map: HashMap<K, (Stamp, V)>,
    order: VecDeque<K>,
}

// Manual impl: the derive would demand `K: Default, V: Default`.
impl<K, V> Default for Layer<K, V> {
    fn default() -> Self {
        Layer {
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Layer<K, V> {
    fn get(&mut self, key: &K, now: Stamp) -> Option<V> {
        let m = clare_trace::metrics();
        match self.map.get(key) {
            Some((stamp, value)) if *stamp == now => {
                m.cache_hits.inc();
                Some(value.clone())
            }
            Some(_) => {
                // An epoch moved under this entry; its queue slot is
                // reclaimed when eviction reaches it.
                self.map.remove(key);
                m.cache_epoch_invalidations.inc();
                m.cache_misses.inc();
                None
            }
            None => {
                m.cache_misses.inc();
                None
            }
        }
    }

    fn put(&mut self, key: K, stamp: Stamp, value: V, cap: usize) {
        if cap == 0 {
            return;
        }
        if self.map.insert(key.clone(), (stamp, value)).is_none() {
            self.order.push_back(key);
        }
        // Bounding the queue bounds the map: every live key sits in the
        // queue at least once. Popped keys already removed by a stale-on-
        // lookup drop are not double-counted as evictions.
        while self.order.len() > cap {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            if self.map.remove(&old).is_some() {
                clare_trace::metrics().cache_evictions.inc();
            }
        }
    }
}

#[derive(Debug, Default)]
struct Shard {
    answers: Layer<(QueryKey, SearchMode), Retrieval>,
    fs1: Layer<QueryKey, ScanOutcome>,
}

/// The server-side cache: epoch state plus the sharded layers.
#[derive(Debug)]
pub(crate) struct RetrievalCache {
    enabled: bool,
    /// Per-shard, per-layer entry bound.
    shard_cap: usize,
    /// Bumped by non-incremental updates; invalidates every entry.
    global: AtomicU64,
    /// Per-predicate epochs, bumped by incremental updates (touched
    /// predicates) and by track quarantines. Absent means epoch 0.
    preds: Mutex<HashMap<(Symbol, usize), u64>>,
    shards: [Mutex<Shard>; SHARDS],
}

impl RetrievalCache {
    pub(crate) fn new(config: &CacheConfig) -> Self {
        RetrievalCache {
            enabled: config.enabled && config.capacity > 0,
            shard_cap: config.capacity.div_ceil(SHARDS).max(1),
            global: AtomicU64::new(0),
            preds: Mutex::new(HashMap::new()),
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// The current epoch pair for `pred`. The server must call this while
    /// holding the same read lock its knowledge-base snapshot comes from,
    /// so the stamp and the snapshot are mutually consistent.
    pub(crate) fn stamp(&self, pred: (Symbol, usize)) -> Stamp {
        Stamp {
            global: self.global.load(Ordering::Acquire),
            predicate: self.preds.lock().get(&pred).copied().unwrap_or(0),
        }
    }

    /// Invalidates every cached entry for one predicate.
    pub(crate) fn bump_predicate(&self, pred: (Symbol, usize)) {
        *self.preds.lock().entry(pred).or_insert(0) += 1;
    }

    /// Invalidates the whole cache.
    pub(crate) fn bump_global(&self) {
        self.global.fetch_add(1, Ordering::Release);
    }

    /// Epoch bookkeeping for a knowledge-base swap, called under the
    /// server's write lock: an incremental successor of the currently
    /// published base (same lineage, same compilation fingerprint) bumps
    /// only its touched predicates; anything else bumps the global epoch.
    pub(crate) fn bump_for_update(&self, old: &KnowledgeBase, new: &KnowledgeBase) {
        let incremental = new.parent_generation() == Some(old.generation())
            && new.build_fingerprint() == old.build_fingerprint();
        if incremental {
            for &pred in new.touched_predicates() {
                self.bump_predicate(pred);
            }
        } else {
            self.bump_global();
        }
    }

    fn shard(&self, key: &QueryKey) -> &Mutex<Shard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    pub(crate) fn get_answer(
        &self,
        key: &QueryKey,
        mode: SearchMode,
        now: Stamp,
    ) -> Option<Retrieval> {
        if !self.enabled {
            return None;
        }
        self.shard(key)
            .lock()
            .answers
            .get(&(key.clone(), mode), now)
    }

    pub(crate) fn put_answer(
        &self,
        key: QueryKey,
        mode: SearchMode,
        stamp: Stamp,
        answer: Retrieval,
    ) {
        if !self.enabled {
            return;
        }
        self.shard(&key)
            .lock()
            .answers
            .put((key, mode), stamp, answer, self.shard_cap);
    }

    pub(crate) fn get_fs1(&self, key: &QueryKey, now: Stamp) -> Option<ScanOutcome> {
        if !self.enabled {
            return None;
        }
        self.shard(key).lock().fs1.get(key, now)
    }

    pub(crate) fn put_fs1(&self, key: QueryKey, stamp: Stamp, outcome: ScanOutcome) {
        if !self.enabled {
            return;
        }
        self.shard(&key)
            .lock()
            .fs1
            .put(key.clone(), stamp, outcome, self.shard_cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_term::parser::parse_term;
    use clare_term::SymbolTable;

    fn key(src: &str, symbols: &mut SymbolTable) -> QueryKey {
        QueryKey::new(&parse_term(src, symbols).unwrap()).unwrap()
    }

    #[test]
    fn query_keys_are_canonical_up_to_renaming() {
        let mut symbols = SymbolTable::default();
        let a = key("p(a, X, X)", &mut symbols);
        let renamed = key("p(a, Y, Y)", &mut symbols);
        assert_eq!(a, renamed, "alpha-renaming preserves the key");
        let distinct_vars = key("p(a, X, Z)", &mut symbols);
        assert_ne!(a, distinct_vars, "cross-binding structure is kept");
        let other = key("p(b, X, X)", &mut symbols);
        assert_ne!(a, other);
    }

    #[test]
    fn unencodable_queries_have_no_key() {
        let mut symbols = SymbolTable::default();
        let q = parse_term("p(999999999999)", &mut symbols).unwrap();
        assert!(QueryKey::new(&q).is_none());
    }

    #[test]
    fn epoch_bumps_invalidate_selectively() {
        let mut symbols = SymbolTable::default();
        let cache = RetrievalCache::new(&CacheConfig::default());
        let p = key("p(a)", &mut symbols);
        let q = key("q(a)", &mut symbols);
        let empty = Retrieval {
            candidates: Vec::new(),
            stats: crate::crs::RetrievalStats::empty(SearchMode::SoftwareOnly),
        };
        let sp = cache.stamp(p.pred());
        let sq = cache.stamp(q.pred());
        cache.put_answer(p.clone(), SearchMode::TwoStage, sp, empty.clone());
        cache.put_answer(q.clone(), SearchMode::TwoStage, sq, empty.clone());
        assert!(cache.get_answer(&p, SearchMode::TwoStage, sp).is_some());
        assert!(
            cache.get_answer(&p, SearchMode::Fs1Only, sp).is_none(),
            "mode is part of the key"
        );

        cache.bump_predicate(p.pred());
        let sp2 = cache.stamp(p.pred());
        assert_ne!(sp, sp2);
        assert!(cache.get_answer(&p, SearchMode::TwoStage, sp2).is_none());
        assert!(
            cache
                .get_answer(&q, SearchMode::TwoStage, cache.stamp(q.pred()))
                .is_some(),
            "bumping p leaves q valid"
        );

        cache.bump_global();
        assert!(cache
            .get_answer(&q, SearchMode::TwoStage, cache.stamp(q.pred()))
            .is_none());
    }

    #[test]
    fn layers_stay_bounded() {
        let mut symbols = SymbolTable::default();
        let cache = RetrievalCache::new(&CacheConfig {
            enabled: true,
            capacity: 8,
        });
        let evictions_before = clare_trace::metrics().cache_evictions.get();
        let keys: Vec<QueryKey> = (0..200)
            .map(|i| key(&format!("p(k{i})"), &mut symbols))
            .collect();
        let empty = Retrieval {
            candidates: Vec::new(),
            stats: crate::crs::RetrievalStats::empty(SearchMode::SoftwareOnly),
        };
        for k in &keys {
            let s = cache.stamp(k.pred());
            cache.put_answer(k.clone(), SearchMode::TwoStage, s, empty.clone());
        }
        let live: usize = cache
            .shards
            .iter()
            .map(|s| s.lock().answers.map.len())
            .sum();
        assert!(live <= 8 * 2, "bounded: {live} entries live");
        assert!(clare_trace::metrics().cache_evictions.get() > evictions_before);
    }
}
