//! `clare-net`: the Clause Retrieval Server, served over TCP.
//!
//! The paper's CRS is a shared back-end engine: one retrieval unit serving
//! many inference machines. This crate gives the reproduction the same
//! shape over a network — a [`NetServer`] front-end that exposes a
//! [`ClauseRetrievalServer`](clare_core::ClauseRetrievalServer) to remote
//! clients, a standalone daemon (`clare-served`), and a blocking
//! [`NetClient`].
//!
//! Three layers:
//!
//! - [`protocol`] — the wire format. Length-prefixed frames whose query
//!   payloads are Pseudo In-line Format term bytes: the network speaks the
//!   hardware's own encoding. Every decoder is hardened against untrusted
//!   input (bounds-checked, depth-limited, never panics).
//! - [`NetServer`] — connection intake (an epoll [`reactor`] by default,
//!   or classic per-connection reader threads via
//!   [`ServerMode::Threaded`]) feeding a bounded worker pool. Supports
//!   request pipelining with out-of-order completion, coalesces pipelined
//!   same-predicate retrieves into single hardware batch passes, sheds
//!   load with retry-after hints when the queue or connection limit is
//!   hit, and drains in-flight requests on shutdown.
//! - [`NetClient`] — mirrors the in-process server API call for call;
//!   answers (satisfier sets, verdict counts, modelled `SimNanos` times)
//!   are byte-identical to direct calls on the same CRS.
//!
//! # Examples
//!
//! ```
//! use clare_core::{ClauseRetrievalServer, CrsOptions, SearchMode};
//! use clare_kb::{KbBuilder, KbConfig};
//! use clare_net::{ClientConfig, NetClient, NetConfig, NetServer};
//! use clare_term::parser::parse_term;
//! use std::sync::Arc;
//!
//! let mut b = KbBuilder::new();
//! b.consult("family", "parent(tom, bob). parent(bob, ann).")?;
//! let crs = Arc::new(ClauseRetrievalServer::new(
//!     b.finish(KbConfig::default()),
//!     CrsOptions::default(),
//! ));
//! let server = NetServer::bind(Arc::clone(&crs), "127.0.0.1:0", NetConfig::default())?;
//!
//! let mut client = NetClient::connect(server.local_addr(), ClientConfig::default())?;
//! let mut symbols = client.symbols()?; // the server's namespace
//! let query = parse_term("parent(tom, X)", &mut symbols)?;
//! let networked = client.retrieve(&query, SearchMode::TwoStage)?;
//! assert_eq!(networked.stats.unified, 1);
//! // Identical to asking the engine directly:
//! assert_eq!(networked, crs.retrieve(&query, SearchMode::TwoStage));
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod protocol;
pub(crate) mod reactor;
pub mod server;

pub use client::{ClientConfig, NetClient};
pub use error::NetError;
pub use protocol::{
    BudgetExt, ErrorCode, CAP_QUERY_BUDGET, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
pub use server::{NetConfig, NetServer, ServerMode};
