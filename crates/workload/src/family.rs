//! The family/genealogy workload.

use clare_kb::KbBuilder;
use clare_term::builder::TermBuilder;
use clare_term::Term;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the family knowledge base.
#[derive(Debug, Clone)]
pub struct FamilySpec {
    /// Number of married couples (each produces a `married_couple/2`
    /// fact, two `parent/2` facts per child, and gender facts).
    pub couples: usize,
    /// Children per couple.
    pub children_per_couple: usize,
    /// Fraction of couples recorded reflexively (both arguments the same
    /// atom) — the targets of the paper's `married_couple(Same, Same)`
    /// query.
    pub reflexive_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FamilySpec {
    fn default() -> Self {
        FamilySpec {
            couples: 100,
            children_per_couple: 2,
            reflexive_fraction: 0.02,
            seed: 0xFA41_1109,
        }
    }
}

/// What the generator produced, for deriving queries.
#[derive(Debug, Clone)]
pub struct FamilySummary {
    /// Heads of the generated `married_couple/2` facts.
    pub couple_heads: Vec<Term>,
    /// Heads of the generated `parent/2` facts.
    pub parent_heads: Vec<Term>,
    /// Number of reflexive couples actually generated.
    pub reflexive_couples: usize,
}

impl FamilySpec {
    /// Populates `module` in `builder` with the family knowledge base and
    /// its rule set.
    pub fn generate(&self, builder: &mut KbBuilder, module: &str) -> FamilySummary {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut couple_heads = Vec::new();
        let mut parent_heads = Vec::new();
        let mut reflexive = 0usize;
        let mut facts: Vec<clare_term::Clause> = Vec::new();
        {
            let mut t = TermBuilder::new(builder.symbols_mut());
            for c in 0..self.couples {
                let husband = format!("h{c}");
                let wife = format!("w{c}");
                let (a, b) = if rng.gen_bool(self.reflexive_fraction) {
                    reflexive += 1;
                    (husband.clone(), husband.clone())
                } else {
                    (husband.clone(), wife.clone())
                };
                let args = vec![t.atom(&a), t.atom(&b)];
                let couple = t.fact("married_couple", args);
                couple_heads.push(couple.head().clone());
                facts.push(couple);
                let h_atom = t.atom(&husband);
                facts.push(t.fact("male", vec![h_atom]));
                let w_atom = t.atom(&wife);
                facts.push(t.fact("female", vec![w_atom]));
                for k in 0..self.children_per_couple {
                    let child = format!("c{c}_{k}");
                    let args = vec![t.atom(&husband), t.atom(&child)];
                    let p1 = t.fact("parent", args);
                    parent_heads.push(p1.head().clone());
                    facts.push(p1);
                    let args = vec![t.atom(&wife), t.atom(&child)];
                    let p2 = t.fact("parent", args);
                    parent_heads.push(p2.head().clone());
                    facts.push(p2);
                    let c_atom = t.atom(&child);
                    if rng.gen_bool(0.5) {
                        facts.push(t.fact("male", vec![c_atom]));
                    } else {
                        facts.push(t.fact("female", vec![c_atom]));
                    }
                }
            }
        }
        for fact in facts {
            builder.add_clause(module, fact);
        }
        builder
            .consult(
                module,
                "grandparent(G, C) :- parent(G, P), parent(P, C).
                 father(F, C) :- parent(F, C), male(F).
                 mother(M, C) :- parent(M, C), female(M).
                 sibling(A, B) :- parent(P, A), parent(P, B).
                 ancestor(A, D) :- parent(A, D).
                 ancestor(A, D) :- parent(A, P), ancestor(P, D).",
            )
            .expect("rule text parses");
        FamilySummary {
            couple_heads,
            parent_heads,
            reflexive_couples: reflexive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_kb::KbConfig;

    #[test]
    fn generates_expected_shape() {
        let spec = FamilySpec {
            couples: 50,
            children_per_couple: 2,
            reflexive_fraction: 0.1,
            seed: 7,
        };
        let mut b = KbBuilder::new();
        let summary = spec.generate(&mut b, "family");
        let kb = b.finish(KbConfig::default());
        assert_eq!(kb.lookup("married_couple", 2).unwrap().clauses().len(), 50);
        assert_eq!(kb.lookup("parent", 2).unwrap().clauses().len(), 200);
        assert_eq!(summary.couple_heads.len(), 50);
        assert_eq!(summary.parent_heads.len(), 200);
        assert!(summary.reflexive_couples > 0);
        assert!(summary.reflexive_couples < 20);
        // Rules present.
        assert!(kb.lookup("ancestor", 2).is_some());
        assert_eq!(kb.lookup("ancestor", 2).unwrap().clauses().len(), 2);
    }

    #[test]
    fn deterministic_from_seed() {
        let spec = FamilySpec::default();
        let run = |spec: &FamilySpec| {
            let mut b = KbBuilder::new();
            let s = spec.generate(&mut b, "m");
            (
                s.reflexive_couples,
                b.finish(KbConfig::default()).clause_count(),
            )
        };
        assert_eq!(run(&spec), run(&spec));
    }

    #[test]
    fn reflexive_couples_answer_shared_var_query() {
        use clare_core::{retrieve, CrsOptions, SearchMode};
        use clare_term::parser::parse_term;
        let spec = FamilySpec {
            couples: 200,
            children_per_couple: 1,
            reflexive_fraction: 0.05,
            seed: 11,
        };
        let mut b = KbBuilder::new();
        let summary = spec.generate(&mut b, "family");
        let q = parse_term("married_couple(S, S)", b.symbols_mut()).unwrap();
        let kb = b.finish(KbConfig::default());
        let r = retrieve(&kb, &q, SearchMode::TwoStage, &CrsOptions::default());
        assert_eq!(r.stats.unified, summary.reflexive_couples);
    }
}
