//! Unification for the CLARE reproduction.
//!
//! Two layers, corresponding to the paper's split between *full unification*
//! (done in software by the Prolog system on the clauses that survive
//! filtering) and *partial test unification* (done on-the-fly by the FS2
//! hardware):
//!
//! * [`full`] — a complete, sound unifier over [`clare_term::Term`]s with a
//!   trail for backtracking and an optional occurs check. This is the
//!   reference oracle every filter is validated against: a filter may accept
//!   clauses that full unification later rejects (*false drops*), but must
//!   never reject a clause that would unify (*no false negatives*).
//! * [`partial`] — the paper's five matching levels (§2.2) as a pure
//!   software model of the Figure 1 algorithm, with word-level binding
//!   semantics that mirror what the FS2 datapath actually compares. The
//!   adopted hardware configuration is Level 3 (first-level structures) plus
//!   variable cross-binding checks: [`partial::PartialConfig::fs2`].
//!
//! # Examples
//!
//! ```
//! use clare_term::{SymbolTable, parser::parse_term};
//! use clare_unify::{full, partial};
//!
//! let mut sy = SymbolTable::new();
//! let query = parse_term("married_couple(S, S)", &mut sy)?;
//! let fact = parse_term("married_couple(ann, bob)", &mut sy)?;
//!
//! // Full unification rejects it (S cannot be both ann and bob)…
//! assert!(full::unify_query_clause(&query, &fact).is_none());
//! // …and so does FS2-style partial matching, thanks to cross-binding checks.
//! let report = partial::partial_match(&query, &fact, partial::PartialConfig::fs2());
//! assert!(!report.matched);
//! # Ok::<(), clare_term::parser::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod full;
pub mod partial;
pub mod store;

pub use full::{unify, unify_query_clause};
pub use partial::{partial_match, DepthPolicy, MatchLevel, MatchReport, PartialConfig, PartialOp};
pub use store::{shift_vars, BindingStore};
