//! Nested-structure workloads for the matching-level ablation.
//!
//! The paper's Levels 1–5 differ in how deep into a term the filter
//! looks. To expose that trade-off, this generator builds facts whose
//! *only* discriminating constant sits at a controlled nesting depth:
//!
//! ```text
//! shape(g(g(...g(k17)...)))        % depth d, key at the bottom
//! ```
//!
//! A Level-`n` filter can separate two such facts only if it descends at
//! least as deep as the key; anything shallower passes every clause of
//! the predicate (maximal false drops).

use clare_kb::KbBuilder;
use clare_term::builder::TermBuilder;
use clare_term::Term;

/// Parameters of the deep-structure predicate.
#[derive(Debug, Clone)]
pub struct DeepSpec {
    /// Number of facts.
    pub facts: usize,
    /// Nesting depth of the discriminating key (0 = key at top level).
    pub depth: usize,
    /// Distinct keys (facts cycle through them).
    pub keys: usize,
}

impl Default for DeepSpec {
    fn default() -> Self {
        DeepSpec {
            facts: 200,
            depth: 2,
            keys: 50,
        }
    }
}

impl DeepSpec {
    /// Builds the nested term `g(g(…g(k<key>)…))` with `depth` wrappers.
    pub fn nest(t: &mut TermBuilder<'_>, depth: usize, key: usize) -> Term {
        let mut term = t.atom(&format!("k{key}"));
        for _ in 0..depth {
            term = t.structure("g", vec![term]);
        }
        term
    }

    /// Populates `module` with `shape/1` facts and returns the heads.
    pub fn generate(&self, builder: &mut KbBuilder, module: &str) -> Vec<Term> {
        let mut heads = Vec::with_capacity(self.facts);
        let mut clauses = Vec::with_capacity(self.facts);
        {
            let mut t = TermBuilder::new(builder.symbols_mut());
            for i in 0..self.facts {
                let arg = Self::nest(&mut t, self.depth, i % self.keys.max(1));
                let fact = t.fact("shape", vec![arg]);
                heads.push(fact.head().clone());
                clauses.push(fact);
            }
        }
        for clause in clauses {
            builder.add_clause(module, clause);
        }
        heads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_kb::KbConfig;
    use clare_term::term_depth;

    #[test]
    fn key_sits_at_declared_depth() {
        let spec = DeepSpec {
            facts: 10,
            depth: 3,
            keys: 5,
        };
        let mut b = KbBuilder::new();
        let heads = spec.generate(&mut b, "m");
        let kb = b.finish(KbConfig::default());
        assert_eq!(kb.lookup("shape", 1).unwrap().clauses().len(), 10);
        for head in &heads {
            // shape(...) adds one level above the nest.
            assert_eq!(term_depth(head), spec.depth + 1);
        }
    }

    #[test]
    fn depth_zero_is_flat() {
        let spec = DeepSpec {
            facts: 4,
            depth: 0,
            keys: 2,
        };
        let mut b = KbBuilder::new();
        let heads = spec.generate(&mut b, "m");
        for head in &heads {
            assert_eq!(term_depth(head), 1);
        }
    }

    #[test]
    fn keys_cycle() {
        let spec = DeepSpec {
            facts: 6,
            depth: 1,
            keys: 3,
        };
        let mut b = KbBuilder::new();
        let heads = spec.generate(&mut b, "m");
        assert_eq!(heads[0], heads[3]);
        assert_ne!(heads[0], heads[1]);
    }

    #[test]
    fn level_separation_on_deep_keys() {
        use clare_term::parser::parse_term;
        use clare_unify::partial::match_at_all_levels;
        // Two facts differing only at depth 3.
        let mut sy = clare_term::SymbolTable::new();
        let a = parse_term("shape(g(g(g(k1))))", &mut sy).unwrap();
        let b = parse_term("shape(g(g(g(k2))))", &mut sy).unwrap();
        let verdicts = match_at_all_levels(&a, &b);
        // L1..L3 cannot separate them; L4/L5 can.
        assert_eq!(verdicts, [true, true, true, false, false]);
    }
}
