//! Property tests for knowledge-base compilation and persistence.

use clare_kb::{io, KbBuilder, KbConfig, KbStats};
use proptest::prelude::*;

/// Random small programs: facts and rules over a tiny vocabulary.
fn program_source() -> impl Strategy<Value = String> {
    let arg = prop_oneof![
        "[a-c]".prop_map(|a| a),
        (0i64..10).prop_map(|v| v.to_string()),
        "[X-Z]".prop_map(|v| v),
        Just("g(a, Y)".to_owned()),
        Just("[1, 2 | T]".to_owned()),
    ];
    let head = ("[pq]", prop::collection::vec(arg.clone(), 1..4))
        .prop_map(|(f, a)| format!("{f}({})", a.join(", ")));
    let clause = (head.clone(), proptest::option::of(head)).prop_map(|(h, body)| match body {
        Some(b) => format!("{h} :- {b}."),
        None => format!("{h}."),
    });
    prop::collection::vec(clause, 0..25).prop_map(|cs| cs.join("\n"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compilation is total over generated programs, clause counts add up,
    /// and addresses resolve to the right records.
    #[test]
    fn compilation_invariants(source in program_source()) {
        let mut b = KbBuilder::new();
        b.consult("m", &source).unwrap();
        let kb = b.finish(KbConfig::default());
        let stats = KbStats::gather(&kb);
        prop_assert_eq!(stats.clauses, kb.clause_count());
        for module in kb.modules() {
            for pred in module.predicates() {
                prop_assert_eq!(pred.addrs().len(), pred.clauses().len());
                for (i, addr) in pred.addrs().iter().enumerate() {
                    let (clause, id) = pred.clause_at(*addr);
                    prop_assert_eq!(id.index() as usize, i);
                    prop_assert_eq!(clause, &pred.clauses()[i]);
                }
                prop_assert_eq!(pred.index().len(), pred.clauses().len());
            }
        }
    }

    /// The pre-decoded arena agrees word for word with the persistence
    /// path: every clause's arena stream equals the head stream re-decoded
    /// from its on-disk record, and the arena's track ranges mirror the
    /// record addresses.
    #[test]
    fn arena_matches_redecoded_records(source in program_source()) {
        let mut b = KbBuilder::new();
        b.consult("m", &source).unwrap();
        let kb = b.finish(KbConfig::default());
        for module in kb.modules() {
            for pred in module.predicates() {
                let arena = pred.arena();
                prop_assert_eq!(arena.len(), pred.clauses().len());
                for (i, addr) in pred.addrs().iter().enumerate() {
                    let (record, _) =
                        clare_pif::ClauseRecord::from_bytes(pred.record_at(*addr)).unwrap();
                    prop_assert_eq!(
                        arena.stream(i),
                        record.head_stream().words(),
                        "clause {} at {}", i, addr
                    );
                    let range = arena.track_clauses(addr.track() as usize);
                    prop_assert_eq!(range.start + addr.slot() as usize, i);
                    prop_assert_eq!(pred.clause_id_at(*addr).unwrap().index() as usize, i);
                }
            }
        }
    }

    /// Save/load is the identity on clauses, addresses, and statistics.
    #[test]
    fn persistence_roundtrip(source in program_source()) {
        let mut b = KbBuilder::new();
        b.consult("m", &source).unwrap();
        let kb = b.finish(KbConfig::default());
        let mut buf = Vec::new();
        io::save(&kb, &mut buf).unwrap();
        let loaded = io::load(&mut buf.as_slice(), KbConfig::default()).unwrap();
        prop_assert_eq!(KbStats::gather(&loaded), KbStats::gather(&kb));
        for (m, lm) in kb.modules().iter().zip(loaded.modules()) {
            prop_assert_eq!(m.name(), lm.name());
            for (p, lp) in m.predicates().iter().zip(lm.predicates()) {
                prop_assert_eq!(p.clauses(), lp.clauses());
                prop_assert_eq!(p.addrs(), lp.addrs());
                prop_assert_eq!(p.arena(), lp.arena());
            }
        }
    }

    /// The decompile/recompile cycle (to_builder) is also the identity.
    #[test]
    fn to_builder_roundtrip(source in program_source()) {
        let mut b = KbBuilder::new();
        b.consult("m", &source).unwrap();
        let kb = b.finish(KbConfig::default());
        let rebuilt = kb.to_builder().finish(KbConfig::default());
        prop_assert_eq!(KbStats::gather(&rebuilt), KbStats::gather(&kb));
        prop_assert_eq!(rebuilt.clause_count(), kb.clause_count());
    }
}
