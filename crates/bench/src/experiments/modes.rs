//! E8 — §2.2: the four search modes on fact- and rule-intensive
//! knowledge bases.
//!
//! "One of these modes will be selected depending on the nature of a query
//! (e.g. whether it contains cross bound variables) and the knowledge base
//! (e.g. whether it is rule or fact intensive)."
//!
//! The workload is one *large* disk-resident predicate (tens of tracks):
//! that is CLARE's design point — a small predicate fits a track or two
//! and any mode is dominated by a single seek. Two variants:
//!
//! * **fact-intensive** — 30 000 ground facts; the SCW index is highly
//!   selective for ground queries, so the two-stage filter reads only the
//!   candidate tracks.
//! * **rule-intensive** — the same size but the heads carry variables in
//!   the first argument (rule-style heads), so the index masks make FS1
//!   nearly useless and FS2's streaming filter is the right tool.

use clare_core::{choose_mode, retrieve, CrsOptions, SearchMode};
use clare_kb::{KbBuilder, KbConfig, KnowledgeBase};
use clare_term::builder::TermBuilder;
use clare_term::Term;
use clare_workload::{derive_queries, QueryShape};
use std::fmt;

/// One measured cell: a (kb, query shape, mode) combination.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeRow {
    /// Knowledge-base label.
    pub kb: &'static str,
    /// Query shape label.
    pub shape: &'static str,
    /// Search mode.
    pub mode: SearchMode,
    /// Candidates reaching full unification.
    pub candidates: usize,
    /// Final answers.
    pub unified: usize,
    /// Bytes read from disk.
    pub bytes: u64,
    /// Modelled elapsed milliseconds.
    pub elapsed_ms: f64,
}

/// The report: all cells plus the automatic mode choices.
#[derive(Debug, Clone, PartialEq)]
pub struct ModesReport {
    /// Measured cells.
    pub rows: Vec<ModeRow>,
    /// `(kb, shape, chosen mode)` from the selection heuristic.
    pub auto_choices: Vec<(&'static str, &'static str, SearchMode)>,
}

const FACTS: usize = 20_000;
const CONSTANTS: usize = 2_000;

/// A realistic record: key, value, and a structured payload ("clauses with
/// rules and structures will not be uncommon", §1). The payload fattens
/// records to ~150 bytes so clause files span many tracks, which is the
/// regime the index exists for.
fn fat_args(t: &mut TermBuilder<'_>, i: usize) -> Vec<Term> {
    let key = t.atom(&format!("k{}", i % CONSTANTS));
    let val = t.atom(&format!("v{}", (i * 7) % CONSTANTS));
    let d1 = t.int((i % 28) as i64 + 1);
    let d2 = t.int((i % 12) as i64 + 1);
    let date = t.structure("date", vec![d1, d2]);
    let t1 = t.atom(&format!("tag{}", i % 17));
    let t2 = t.atom(&format!("tag{}", i % 5));
    let tags = t.list(vec![t1, t2]);
    let payload = t.structure("info", vec![date, tags]);
    vec![key, val, payload]
}

fn build_kb(rule_heavy: bool) -> (KnowledgeBase, Vec<Term>, clare_term::Symbol) {
    let mut b = KbBuilder::new();
    let mut heads = Vec::new();
    let mut clauses = Vec::with_capacity(FACTS);
    {
        let mut t = TermBuilder::new(b.symbols_mut());
        for i in 0..FACTS {
            if rule_heavy {
                // Rule-style clause with a fully open head: the index
                // masks record every position as a variable, so FS1 has
                // nothing to discriminate on.
                t.reset_vars();
                let x = t.fresh_var();
                let y = t.fresh_var();
                let z = t.fresh_var();
                let head = t.structure("big", vec![x.clone(), y.clone(), z.clone()]);
                let goal = t.structure("aux", vec![x, y, z]);
                let clause = t.rule(head, vec![goal]).expect("structure head");
                heads.push(clause.head().clone());
                clauses.push(clause);
            } else {
                let args = fat_args(&mut t, i);
                let fact = t.fact("big", args);
                heads.push(fact.head().clone());
                clauses.push(fact);
            }
        }
        if rule_heavy {
            // A small aux relation so rule bodies resolve.
            for i in 0..64 {
                let args = fat_args(&mut t, i);
                clauses.push(t.fact("aux", args));
            }
        }
    }
    for clause in clauses {
        b.add_clause("m", clause);
    }
    let miss = b.symbols_mut().intern_atom("never_stored_atom");
    (b.finish(KbConfig::default()), heads, miss)
}

/// Runs the experiment.
pub fn run() -> ModesReport {
    let opts = CrsOptions::default();
    let mut rows = Vec::new();
    let mut auto_choices = Vec::new();
    for (kb_label, rule_heavy) in [("fact-intensive", false), ("rule-intensive", true)] {
        let (kb, heads, miss) = build_kb(rule_heavy);
        for shape in [
            QueryShape::GroundHit,
            QueryShape::HalfOpen,
            QueryShape::SharedVar,
        ] {
            let queries = derive_queries(&heads, shape, 2, miss, 0xE8E8);
            for mode in SearchMode::ALL {
                let mut candidates = 0usize;
                let mut unified = 0usize;
                let mut bytes = 0u64;
                let mut elapsed_ns = 0u64;
                for q in &queries {
                    let r = retrieve(&kb, q, mode, &opts);
                    candidates += r.stats.candidates;
                    unified += r.stats.unified;
                    bytes += r.stats.bytes_from_disk;
                    elapsed_ns += r.stats.elapsed.as_ns();
                }
                rows.push(ModeRow {
                    kb: kb_label,
                    shape: shape.label(),
                    mode,
                    candidates,
                    unified,
                    bytes,
                    elapsed_ms: elapsed_ns as f64 / 1e6,
                });
            }
            auto_choices.push((kb_label, shape.label(), choose_mode(&kb, &queries[0])));
        }
    }
    ModesReport { rows, auto_choices }
}

impl ModesReport {
    /// The fastest mode for each `(kb, shape)` group.
    pub fn winners(&self) -> Vec<(&'static str, &'static str, SearchMode)> {
        let mut out = Vec::new();
        for kb in ["fact-intensive", "rule-intensive"] {
            for shape in ["ground-hit", "half-open", "shared-var"] {
                if let Some(best) = self
                    .rows
                    .iter()
                    .filter(|r| r.kb == kb && r.shape == shape)
                    .min_by(|a, b| a.elapsed_ms.total_cmp(&b.elapsed_ms))
                {
                    out.push((kb, shape, best.mode));
                }
            }
        }
        out
    }

    /// Finds one cell.
    pub fn cell(&self, kb: &str, shape: &str, mode: SearchMode) -> &ModeRow {
        self.rows
            .iter()
            .find(|r| r.kb == kb && r.shape == shape && r.mode == mode)
            .expect("cell exists")
    }
}

impl fmt::Display for ModesReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "E8 / §2.2: the four search modes ({FACTS} clauses, 2 queries per cell)\n"
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.kb.to_owned(),
                    r.shape.to_owned(),
                    r.mode.to_string(),
                    r.candidates.to_string(),
                    r.unified.to_string(),
                    format!("{:.0} KB", r.bytes as f64 / 1024.0),
                    format!("{:.1}", r.elapsed_ms),
                ]
            })
            .collect();
        f.write_str(&crate::render_table(
            &[
                "kb",
                "query",
                "mode",
                "cand",
                "answers",
                "disk",
                "elapsed ms",
            ],
            &rows,
        ))?;
        writeln!(f, "\nfastest mode per scenario:")?;
        for (kb, shape, mode) in self.winners() {
            writeln!(f, "  {kb:<15} {shape:<12} -> {mode}")?;
        }
        writeln!(f, "\nautomatic mode selection (paper's heuristic):")?;
        for (kb, shape, mode) in &self.auto_choices {
            writeln!(f, "  {kb:<15} {shape:<12} -> {mode}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn report() -> &'static ModesReport {
        static REPORT: OnceLock<ModesReport> = OnceLock::new();
        REPORT.get_or_init(run)
    }

    #[test]
    fn all_modes_agree_on_answers() {
        let report = report();
        for kb in ["fact-intensive", "rule-intensive"] {
            for shape in ["ground-hit", "half-open", "shared-var"] {
                let answers: Vec<usize> = report
                    .rows
                    .iter()
                    .filter(|r| r.kb == kb && r.shape == shape)
                    .map(|r| r.unified)
                    .collect();
                assert_eq!(answers.len(), 4);
                assert!(
                    answers.windows(2).all(|w| w[0] == w[1]),
                    "{kb}/{shape}: {answers:?}"
                );
            }
        }
    }

    #[test]
    fn two_stage_wins_ground_queries_on_fact_kb() {
        let r = report();
        let two = r.cell("fact-intensive", "ground-hit", SearchMode::TwoStage);
        let sw = r.cell("fact-intensive", "ground-hit", SearchMode::SoftwareOnly);
        let fs2 = r.cell("fact-intensive", "ground-hit", SearchMode::Fs2Only);
        assert!(two.elapsed_ms < sw.elapsed_ms, "beats software scanning");
        assert!(two.elapsed_ms < fs2.elapsed_ms, "beats full FS2 streaming");
        assert!(two.bytes < fs2.bytes, "reads only candidate tracks");
    }

    #[test]
    fn fs2_wins_on_rule_kb() {
        let r = report();
        for shape in ["ground-hit", "half-open"] {
            let fs2 = r.cell("rule-intensive", shape, SearchMode::Fs2Only);
            let two = r.cell("rule-intensive", shape, SearchMode::TwoStage);
            let fs1 = r.cell("rule-intensive", shape, SearchMode::Fs1Only);
            assert!(
                fs2.elapsed_ms <= two.elapsed_ms,
                "{shape}: index adds nothing on rule-style heads"
            );
            assert!(fs2.elapsed_ms < fs1.elapsed_ms);
        }
    }

    #[test]
    fn hardware_beats_software_everywhere_at_this_scale() {
        let r = report();
        for kb in ["fact-intensive", "rule-intensive"] {
            for shape in ["ground-hit", "half-open", "shared-var"] {
                let sw = r.cell(kb, shape, SearchMode::SoftwareOnly);
                let fs2 = r.cell(kb, shape, SearchMode::Fs2Only);
                assert!(
                    fs2.elapsed_ms < sw.elapsed_ms,
                    "{kb}/{shape}: {} vs {}",
                    fs2.elapsed_ms,
                    sw.elapsed_ms
                );
            }
        }
    }

    #[test]
    fn auto_selection_follows_the_paper() {
        let r = report();
        for (kb, shape, mode) in &r.auto_choices {
            match (*kb, *shape) {
                (_, "shared-var") => assert_eq!(*mode, SearchMode::Fs2Only, "{kb}/{shape}"),
                ("rule-intensive", _) => assert_eq!(*mode, SearchMode::Fs2Only, "{kb}/{shape}"),
                ("fact-intensive", "ground-hit") => {
                    assert_eq!(*mode, SearchMode::Fs1Only, "{kb}/{shape}")
                }
                ("fact-intensive", "half-open") => {
                    assert_eq!(*mode, SearchMode::TwoStage, "{kb}/{shape}")
                }
                _ => {}
            }
        }
    }
}
