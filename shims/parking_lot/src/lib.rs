//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API shape the
//! workspace uses: `lock()`/`read()`/`write()` return guards directly
//! (poisoning is swallowed — a poisoned lock just keeps serving, which is
//! `parking_lot`'s behaviour since it has no poisoning at all).

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock around `value` (const, as in upstream `parking_lot`).
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose `read`/`write` cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock around `value` (const, as in upstream `parking_lot`).
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_concurrent_reads() {
        let l = RwLock::new(7);
        let (a, b) = (l.read(), l.read());
        assert_eq!((*a, *b), (7, 7));
        drop((a, b));
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
