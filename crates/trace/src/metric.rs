//! The metric primitives: counters, gauges, and fixed-bucket histograms.
//!
//! Everything here is built on plain atomics with `Relaxed` ordering —
//! recording a value is a handful of uncontended `fetch_add`s, cheap
//! enough to leave permanently enabled on the hot paths it observes.
//! Snapshots are monotone but not cross-metric consistent: a reader may
//! see counter A after an event and counter B before it. That is the
//! usual contract for service metrics; anything needing a torn-proof
//! snapshot (like `ServerStats`) keeps its own synchronisation.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins instantaneous measurement (queue depth, connection
/// count). Unlike [`Counter`] it can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Buckets per histogram: power-of-two boundaries cover `[1, 2^40)` —
/// for nanosecond values that is 1 ns up to ~18 minutes, plenty for any
/// latency this workspace models or measures.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-bucket log2 histogram: bucket `i` counts values in
/// `[2^i, 2^(i+1))` (zero lands in bucket 0, values past the last
/// boundary clamp into the final bucket). Recording is two relaxed
/// `fetch_add`s plus one for the bucket.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        // An array-repeat seed: each bucket gets its own fresh atomic
        // (interior mutability in a `const` is exactly the intent here).
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; HISTOGRAM_BUCKETS],
        }
    }

    /// The bucket index a value lands in.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (63 - (value | 1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// The lower bound of bucket `i` (`2^i`, with bucket 0 covering 0–1).
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1 << i
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the whole histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A plain-data copy of a [`Histogram`], ready for wire encoding,
/// rendering, or percentile estimation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket counts (log2 buckets, see [`Histogram::bucket_of`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observations, or 0 with none.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) from the buckets: finds
    /// the bucket holding the `q`-th observation and returns its
    /// geometric midpoint (`1.5 * floor`). Log2 buckets bound the error
    /// to a factor of two, which is the resolution the catalogue
    /// advertises.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let floor = Histogram::bucket_floor(i);
                return floor + floor / 2;
            }
        }
        Histogram::bucket_floor(self.buckets.len().saturating_sub(1))
    }

    /// Shorthand for the median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Shorthand for the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1023), 9);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(10), 1024);
    }

    #[test]
    fn histogram_records_and_estimates() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 8, 100, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1 + 2 + 4 + 8 + 100 + 1000 + 1_000_000);
        assert_eq!(s.mean(), s.sum / 7);
        // The median observation is 8, which lives in bucket 3 (8..16);
        // the estimate is that bucket's midpoint.
        assert_eq!(s.p50(), 12);
        // p99 lands in the 1_000_000 bucket (2^19 = 524288).
        assert_eq!(s.quantile(0.99), 524_288 + 262_144);
        // Quantiles of an empty histogram are 0.
        assert_eq!(HistogramSnapshot::default().p50(), 0);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let c = Counter::new();
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for i in 0..1000u64 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        let s = h.snapshot();
        assert_eq!(s.count, 8000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 8000);
    }
}
