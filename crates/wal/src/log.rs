//! The crash-safe write-ahead log.
//!
//! One append-only file of CRC32C-framed records, each carrying a
//! monotonic sequence number and one textual assert/retract operation.
//! A commit batch is encoded into a single buffered write followed by a
//! single `fdatasync` — the group-commit unit — and an operation is
//! *acknowledged* only after that sync returns. Opening a log replays
//! every intact frame and truncates the torn tail a mid-append crash
//! leaves behind, so replay recovers exactly the acknowledged prefix
//! (plus, possibly, a final batch that was synced but whose ack never
//! reached the caller — recovery is a superset of the acks, never a
//! subset).
//!
//! Frame layout, all integers little-endian:
//!
//! ```text
//! u32 payload_len   u32 crc32c(payload)   payload
//! payload = u64 seq   u8 op   u16 module_len   module   u32 src_len   source
//! ```
//!
//! Operations travel as *source text* (module name + Edinburgh-syntax
//! clauses) rather than compiled records: replay re-parses against the
//! base snapshot's symbol table, which keeps the log valid across
//! compactions that renumber clause addresses.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};

use clare_fault::{FaultAction, FaultSite};
use clare_trace::metrics;

/// One logged mutation, as transported: module name plus clause source
/// text. `Assert` appends every clause in `source` (in order) to its
/// predicate; `Retract` removes the first live clause structurally equal
/// to the single clause in `source` (a no-op if none matches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Append the clauses parsed from `source` to `module`.
    Assert {
        /// Target module name.
        module: String,
        /// Clause source text (one or more clauses).
        source: String,
    },
    /// Remove the first live clause structurally equal to the one clause
    /// in `source`.
    Retract {
        /// Target module name.
        module: String,
        /// Clause source text (exactly one clause).
        source: String,
    },
}

impl WalOp {
    /// The module this operation targets.
    pub fn module(&self) -> &str {
        match self {
            WalOp::Assert { module, .. } | WalOp::Retract { module, .. } => module,
        }
    }

    /// The clause source text this operation carries.
    pub fn source(&self) -> &str {
        match self {
            WalOp::Assert { source, .. } | WalOp::Retract { source, .. } => source,
        }
    }

    /// Checks that this op fits the frame encoding: the module name must
    /// fit its `u16` length prefix and the whole payload must stay under
    /// [`MAX_PAYLOAD`]. Without this gate, `module.len() as u16` would
    /// silently truncate the length prefix and write a structurally
    /// corrupt frame that poisons replay.
    pub fn validate(&self) -> Result<(), WalError> {
        let module = self.module();
        if module.len() > u16::MAX as usize {
            return Err(WalError::OpTooLarge {
                what: "module name",
                len: module.len(),
                max: u16::MAX as usize,
            });
        }
        let payload = 15 + module.len() + self.source().len();
        if payload > MAX_PAYLOAD as usize {
            return Err(WalError::OpTooLarge {
                what: "frame payload",
                len: payload,
                max: MAX_PAYLOAD as usize,
            });
        }
        Ok(())
    }
}

/// A [`WalOp`] with the sequence number the log assigned it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic sequence number (starts at 1, no gaps).
    pub seq: u64,
    /// The logged operation.
    pub op: WalOp,
}

/// Errors from opening or appending to a log.
#[derive(Debug)]
pub enum WalError {
    /// An I/O error from the underlying file.
    Io(std::io::Error),
    /// A frame passed its CRC but decoded to garbage, or sequence
    /// numbers are not contiguous — not a torn tail, real corruption.
    Corrupt {
        /// Byte offset of the offending frame.
        offset: u64,
        /// What was wrong with it.
        detail: String,
    },
    /// A previous append failed at an unknown point; the in-process
    /// handle refuses further appends (reopening the file recovers by
    /// truncating the torn tail).
    Poisoned,
    /// An operation does not fit the frame encoding (module name beyond
    /// its `u16` length prefix, or payload beyond [`MAX_PAYLOAD`]).
    /// Refused before any byte reaches the file.
    OpTooLarge {
        /// Which part overflowed (`"module name"` / `"frame payload"`).
        what: &'static str,
        /// The offending length in bytes.
        len: usize,
        /// The encoding's limit for that part.
        max: usize,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt { offset, detail } => {
                write!(f, "wal corrupt at byte {offset}: {detail}")
            }
            WalError::Poisoned => write!(
                f,
                "wal poisoned by an earlier failed append; reopen the file to recover"
            ),
            WalError::OpTooLarge { what, len, max } => {
                write!(f, "wal op {what} is {len} bytes (limit {max})")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Intact records recovered.
    pub records: usize,
    /// Bytes of torn tail truncated (0 on a clean shutdown).
    pub truncated_tail_bytes: u64,
    /// The sequence number the next append will receive.
    pub next_seq: u64,
}

const FRAME_HEADER: usize = 8;
/// Upper bound on one frame's payload — a sanity gate that turns a
/// garbage length prefix (torn header) into a clean end-of-log, and the
/// size limit [`WalOp::validate`] enforces before encoding.
pub const MAX_PAYLOAD: u32 = 1 << 24;

const OP_ASSERT: u8 = 1;
const OP_RETRACT: u8 = 2;

/// Encodes one `(seq, op)` pair exactly the way a WAL frame payload
/// carries it (the bytes after the `len`/`crc` header). This is the unit
/// the cluster's replication stream ships: a backup decodes it with
/// [`decode_ship_record`] and applies it through `Overlay::apply` with
/// the primary's sequence number, so a shipped op is byte-identical to
/// the op the primary logged.
///
/// The op must satisfy [`WalOp::validate`]; an oversized op would encode
/// a truncated length prefix.
pub fn encode_ship_record(seq: u64, op: &WalOp) -> Vec<u8> {
    let (code, module, source) = match op {
        WalOp::Assert { module, source } => (OP_ASSERT, module, source),
        WalOp::Retract { module, source } => (OP_RETRACT, module, source),
    };
    let mut payload = Vec::with_capacity(15 + module.len() + source.len());
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.push(code);
    payload.extend_from_slice(&(module.len() as u16).to_le_bytes());
    payload.extend_from_slice(module.as_bytes());
    payload.extend_from_slice(&(source.len() as u32).to_le_bytes());
    payload.extend_from_slice(source.as_bytes());
    payload
}

/// Decodes a shipped record produced by [`encode_ship_record`] (a WAL
/// frame payload without its `len`/`crc` header). `None` on any
/// structural violation — the replication layer treats that as a
/// corrupt frame, never a partial record.
pub fn decode_ship_record(bytes: &[u8]) -> Option<WalRecord> {
    decode_payload(bytes)
}

fn encode_frame(out: &mut Vec<u8>, seq: u64, op: &WalOp) {
    let payload = encode_ship_record(seq, op);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&clare_fault::crc32c(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    if payload.len() < 15 {
        return None;
    }
    let seq = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let code = payload[8];
    let mlen = u16::from_le_bytes(payload[9..11].try_into().ok()?) as usize;
    let rest = payload.get(11..)?;
    let module = std::str::from_utf8(rest.get(..mlen)?).ok()?.to_owned();
    let rest = rest.get(mlen..)?;
    let slen = u32::from_le_bytes(rest.get(..4)?.try_into().ok()?) as usize;
    let source_bytes = rest.get(4..)?;
    if source_bytes.len() != slen {
        return None;
    }
    let source = std::str::from_utf8(source_bytes).ok()?.to_owned();
    let op = match code {
        OP_ASSERT => WalOp::Assert { module, source },
        OP_RETRACT => WalOp::Retract { module, source },
        _ => return None,
    };
    Some(WalRecord { seq, op })
}

/// Walks `bytes`, returning every intact record and the byte length of
/// the intact prefix. A short or CRC-failed frame ends the walk (torn
/// tail); a CRC-valid frame that decodes to garbage or breaks sequence
/// continuity is a [`WalError::Corrupt`].
fn decode_all(bytes: &[u8]) -> Result<(Vec<WalRecord>, u64), WalError> {
    let mut records = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= FRAME_HEADER {
        let len =
            u32::from_le_bytes(
                bytes[at..at + 4]
                    .try_into()
                    .map_err(|_| WalError::Corrupt {
                        offset: at as u64,
                        detail: "unreachable: bad header slice".into(),
                    })?,
            );
        if len == 0 || len > MAX_PAYLOAD {
            break; // garbage length prefix: a torn header ends the log
        }
        let want_crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().map_err(|_| {
            WalError::Corrupt {
                offset: at as u64,
                detail: "unreachable: bad header slice".into(),
            }
        })?);
        let body_start = at + FRAME_HEADER;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            break; // frame cut short: torn tail
        }
        let payload = &bytes[body_start..body_end];
        if clare_fault::crc32c(payload) != want_crc {
            break; // torn or rotted frame ends the intact prefix
        }
        let record = decode_payload(payload).ok_or_else(|| WalError::Corrupt {
            offset: at as u64,
            detail: "CRC-valid frame decoded to garbage".into(),
        })?;
        let expect = records.last().map(|r: &WalRecord| r.seq + 1).unwrap_or(1);
        if record.seq != expect {
            return Err(WalError::Corrupt {
                offset: at as u64,
                detail: format!("sequence jumped to {} (expected {expect})", record.seq),
            });
        }
        records.push(record);
        at = body_end;
    }
    Ok((records, at as u64))
}

/// An open write-ahead log: an append handle positioned after the last
/// intact frame. All appends go through [`append_batch`](Wal::append_batch);
/// callers serialize externally (the server holds its commit lock).
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_seq: u64,
    poisoned: bool,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replays every
    /// intact record, and truncates any torn tail.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<(Wal, Vec<WalRecord>, ReplayReport), WalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, intact) = decode_all(&bytes)?;
        let torn = bytes.len() as u64 - intact;
        if torn > 0 {
            file.set_len(intact)?;
            file.sync_data()?;
            metrics().wal_truncated_tails.inc();
        }
        file.seek(SeekFrom::Start(intact))?;
        let next_seq = records.last().map(|r| r.seq + 1).unwrap_or(1);
        metrics().wal_replayed_records.add(records.len() as u64);
        let report = ReplayReport {
            records: records.len(),
            truncated_tail_bytes: torn,
            next_seq,
        };
        let wal = Wal {
            file,
            path,
            next_seq,
            poisoned: false,
        };
        Ok((wal, records, report))
    }

    /// The sequence number the next appended operation will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends `ops` as one group-committed batch: one buffered write,
    /// one `fdatasync`. Returns the sequence range assigned. On any
    /// failure nothing is acknowledged and the handle is poisoned —
    /// the file may hold a torn tail that the next [`Wal::open`] will
    /// truncate away.
    pub fn append_batch(&mut self, ops: &[WalOp]) -> Result<Range<u64>, WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        let first = self.next_seq;
        if ops.is_empty() {
            return Ok(first..first);
        }
        // Size-gate every op before any byte is encoded: an oversized
        // module name would truncate its u16 length prefix and write a
        // structurally corrupt frame. Refusal leaves the handle clean —
        // nothing was written, so nothing is poisoned.
        for op in ops {
            op.validate()?;
        }
        let mut buf = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            encode_frame(&mut buf, first + i as u64, op);
        }
        if clare_fault::active() {
            if let FaultAction::Truncate { keep } = clare_fault::decide(FaultSite::WalAppend, first)
            {
                // Power loss mid-append: a prefix of the batch reaches the
                // platter, the ack never happens, and this handle is done.
                let keep = (keep % buf.len() as u64) as usize;
                let _ = self.file.write_all(&buf[..keep]);
                let _ = self.file.sync_data();
                self.poisoned = true;
                return Err(WalError::Io(std::io::Error::other(
                    "injected torn wal append",
                )));
            }
        }
        if let Err(e) = self
            .file
            .write_all(&buf)
            .and_then(|()| self.file.sync_data())
        {
            // How much hit the disk is unknowable from here; refuse
            // further appends so acknowledged frames can never land
            // after an unsynced hole.
            self.poisoned = true;
            return Err(e.into());
        }
        self.next_seq += ops.len() as u64;
        let m = metrics();
        m.wal_appends.inc();
        m.wal_records.add(ops.len() as u64);
        m.wal_fsyncs.inc();
        m.wal_bytes.add(buf.len() as u64);
        Ok(first..self.next_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_fault::{DeterministicInjector, FaultPlan};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("clare-wal-{tag}-{}-{n}.wal", std::process::id()))
    }

    fn op(i: usize) -> WalOp {
        if i % 3 == 2 {
            WalOp::Retract {
                module: "m".into(),
                source: format!("p(a{i})."),
            }
        } else {
            WalOp::Assert {
                module: "m".into(),
                source: format!("p(a{i})."),
            }
        }
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = temp_path("roundtrip");
        let ops: Vec<WalOp> = (0..10).map(op).collect();
        {
            let (mut wal, records, report) = Wal::open(&path).unwrap();
            assert!(records.is_empty());
            assert_eq!(report.next_seq, 1);
            assert_eq!(wal.append_batch(&ops[..4]).unwrap(), 1..5);
            assert_eq!(wal.append_batch(&ops[4..]).unwrap(), 5..11);
        }
        let (wal, records, report) = Wal::open(&path).unwrap();
        assert_eq!(report.records, 10);
        assert_eq!(report.truncated_tail_bytes, 0);
        assert_eq!(wal.next_seq(), 11);
        assert_eq!(records.len(), 10);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.op, op(i));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_batch_is_free() {
        let path = temp_path("empty");
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        assert_eq!(wal.append_batch(&[]).unwrap(), 1..1);
        assert_eq!(wal.next_seq(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = temp_path("torn");
        {
            let (mut wal, _, _) = Wal::open(&path).unwrap();
            wal.append_batch(&[op(0), op(1)]).unwrap();
        }
        // Simulate a crash mid-append: garbage partial frame at the end.
        let clean_len = {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            let len = f.metadata().unwrap().len();
            f.write_all(&[0x55, 0x02, 0x00, 0x00, 0x00, 0xAB]).unwrap();
            len
        };
        let (wal, records, report) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 2, "intact prefix survives");
        assert_eq!(report.truncated_tail_bytes, 6);
        assert_eq!(wal.next_seq(), 3);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tail_cut_inside_a_frame_is_truncated() {
        let path = temp_path("cut");
        {
            let (mut wal, _, _) = Wal::open(&path).unwrap();
            wal.append_batch(&[op(0), op(1), op(2)]).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Cut the file a few bytes into the last frame.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let (_, records, report) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert!(report.truncated_tail_bytes > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_bitrot_is_an_end_of_log() {
        let path = temp_path("rot");
        {
            let (mut wal, _, _) = Wal::open(&path).unwrap();
            wal.append_batch(&[op(0), op(1), op(2)]).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        // LevelDB semantics: the first bad frame ends the log. The
        // records before it replay; everything after is dropped.
        let (_, records, _) = Wal::open(&path).unwrap();
        assert!(records.len() < 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_torn_append_poisons_and_recovers() {
        let path = temp_path("inject");
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        wal.append_batch(&[op(0)]).unwrap();
        let guard = clare_fault::install(Arc::new(DeterministicInjector::new(
            11,
            FaultPlan::none().with(FaultSite::WalAppend, 1000),
        )));
        let err = wal.append_batch(&[op(1), op(2)]).unwrap_err();
        assert!(matches!(err, WalError::Io(_)));
        // Poisoned: even a clean retry is refused on this handle.
        drop(guard);
        assert!(matches!(
            wal.append_batch(&[op(1)]),
            Err(WalError::Poisoned)
        ));
        drop(wal);
        // Reopen recovers the acknowledged prefix and accepts appends.
        let (mut wal, records, _) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(wal.append_batch(&[op(1)]).unwrap(), 2..3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oversized_module_is_refused_not_corrupted() {
        // Regression: `module.len() as u16` used to truncate silently,
        // writing a frame whose length prefix disagreed with its bytes.
        let path = temp_path("oversized");
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        wal.append_batch(&[op(0)]).unwrap();
        let clean_len = std::fs::metadata(&path).unwrap().len();

        let big = WalOp::Assert {
            module: "m".repeat(70_000), // > 64 KiB: overflows the u16 prefix
            source: "p(a).".into(),
        };
        match wal.append_batch(&[big]) {
            Err(WalError::OpTooLarge { what, len, max }) => {
                assert_eq!(what, "module name");
                assert_eq!(len, 70_000);
                assert_eq!(max, u16::MAX as usize);
            }
            other => panic!("expected OpTooLarge, got {other:?}"),
        }
        // A refusal is not a failure: no bytes written, handle not
        // poisoned, and the file still replays cleanly.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        assert_eq!(wal.append_batch(&[op(1)]).unwrap(), 2..3);
        drop(wal);
        let (_, records, report) = Wal::open(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(report.truncated_tail_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oversized_payload_is_refused() {
        let big = WalOp::Assert {
            module: "m".into(),
            source: "x".repeat(MAX_PAYLOAD as usize),
        };
        assert!(matches!(
            big.validate(),
            Err(WalError::OpTooLarge {
                what: "frame payload",
                ..
            })
        ));
        // The boundary itself fits: payload == MAX_PAYLOAD exactly.
        let fits = WalOp::Assert {
            module: "m".into(),
            source: "x".repeat(MAX_PAYLOAD as usize - 16),
        };
        fits.validate().unwrap();
    }

    #[test]
    fn ship_record_round_trips() {
        for i in 0..6 {
            let rec = WalRecord {
                seq: i as u64 + 1,
                op: op(i),
            };
            let bytes = encode_ship_record(rec.seq, &rec.op);
            assert_eq!(decode_ship_record(&bytes).unwrap(), rec);
            // Every truncation is refused, never mis-decoded.
            for cut in 0..bytes.len() {
                assert!(decode_ship_record(&bytes[..cut]).is_none());
            }
        }
    }

    #[test]
    fn group_commit_is_one_fsync_per_batch() {
        let path = temp_path("group");
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        let before = metrics().wal_fsyncs.get();
        let ops: Vec<WalOp> = (0..64).map(op).collect();
        wal.append_batch(&ops).unwrap();
        assert_eq!(metrics().wal_fsyncs.get(), before + 1);
        let _ = std::fs::remove_file(&path);
    }
}
