//! Adversarial-input properties for the live server and the payload
//! codecs: arbitrary bytes never panic a decoder, and a live server
//! answers every garbage frame with *some* frame — never a hang, never a
//! dropped connection, never a dead worker.

use clare_core::{ClauseRetrievalServer, CrsOptions, SearchMode};
use clare_kb::{KbBuilder, KbConfig};
use clare_net::protocol::{
    decode_consult, decode_error, decode_metrics_snapshot, decode_retrieval, decode_retrievals,
    decode_retrieve, decode_retrieve_batch, decode_server_hello, decode_server_stats,
    decode_server_stats_extended, decode_solve, decode_solve_outcome, decode_symbols,
    encode_client_hello, encode_client_hello_caps, encode_retrieval, encode_retrieve, opcode,
    BudgetExt, Frame, FrameReader, HelloStatus, RetrieveReq, CAP_FRAME_CRC, CAP_QUERY_BUDGET,
    MAX_FRAME_LEN, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION, SERVER_HELLO_LEN,
};
use clare_net::{ClientConfig, NetClient, NetConfig, NetServer};
use clare_term::parser::parse_term;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every request-payload decoder is total on arbitrary bytes.
    #[test]
    fn payload_decoders_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_retrieve(&bytes);
        let _ = decode_retrieve_batch(&bytes);
        let _ = decode_solve(&bytes);
        let _ = decode_consult(&bytes);
        let _ = decode_retrievals(&bytes);
        let _ = decode_solve_outcome(&bytes);
        let _ = decode_server_stats(&bytes);
        let _ = decode_symbols(&bytes);
        let _ = decode_error(&bytes);
        let _ = decode_metrics_snapshot(&bytes);
        let _ = decode_server_stats_extended(&bytes);
    }
}

/// One server shared by the live-fire property below.
fn spawn_server() -> NetServer {
    let mut b = KbBuilder::new();
    b.consult("m", "p(a). p(b). q(c, d).").unwrap();
    let crs = Arc::new(ClauseRetrievalServer::new(
        b.finish(KbConfig::default()),
        CrsOptions::default(),
    ));
    NetServer::bind(
        crs,
        "127.0.0.1:0",
        NetConfig {
            workers: 2,
            ..NetConfig::default()
        },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fire a random-opcode, random-payload frame at a live server: the
    /// server must answer the frame's id with *something* (a reply or an
    /// error frame) and then still serve a correct retrieval on the same
    /// connection. This pins "malformed input yields error frames, not
    /// disconnects and not dead workers".
    #[test]
    fn live_server_survives_arbitrary_frames(
        op in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(&encode_client_hello(PROTOCOL_VERSION)).unwrap();
        let mut hello = [0u8; SERVER_HELLO_LEN];
        stream.read_exact(&mut hello).unwrap();

        let mut reader = FrameReader::new(MAX_FRAME_LEN);
        stream.write_all(&Frame::new(7, op, payload).encoded()).unwrap();
        // Whatever the opcode decoded to, id 7 must eventually be
        // answered — directly, or implicitly by the connection staying
        // healthy for the probe below. Consume frames until the probe's
        // reply appears; every intermediate frame must carry id 7.
        stream.write_all(&Frame::new(8, opcode::PING, Vec::new()).encoded()).unwrap();
        loop {
            let frame = reader.read_frame(&mut stream).unwrap();
            if frame.request_id == 8 {
                prop_assert_eq!(frame.opcode, opcode::PING | opcode::REPLY);
                break;
            }
            prop_assert_eq!(frame.request_id, 7);
        }

        // The service still answers real queries on this connection.
        drop(stream);
        let mut client = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
        let mut symbols = client.symbols().unwrap();
        let query = parse_term("p(X)", &mut symbols).unwrap();
        let got = client.retrieve(&query, SearchMode::TwoStage).unwrap();
        prop_assert_eq!(got.stats.unified, 2);
        server.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pipelined bursts the server may coalesce — runs of same-predicate
    /// retrieves interleaved with other predicates, pings, and stats, on
    /// deliberately non-sequential request ids — map every reply back to
    /// the id of the request it answers: each retrieve reply is
    /// byte-identical to a direct call for *that id's* query.
    #[test]
    fn coalesced_pipelines_map_replies_to_request_ids(
        ops in prop::collection::vec(0u8..6, 1..24),
        workers in 1usize..3,
    ) {
        let mut b = KbBuilder::new();
        b.consult("m", "p(a). p(b). p(f(a)). q(c, d). q(c, e).").unwrap();
        let mut symbols = b.symbols_mut().clone();
        let crs = Arc::new(ClauseRetrievalServer::new(
            b.finish(KbConfig::default()),
            CrsOptions::default(),
        ));
        let server = NetServer::bind(
            Arc::clone(&crs),
            "127.0.0.1:0",
            NetConfig { workers, coalesce: true, ..NetConfig::default() },
        )
        .unwrap();

        let queries = [
            parse_term("p(a)", &mut symbols).unwrap(),
            parse_term("p(X)", &mut symbols).unwrap(),
            parse_term("p(f(Y))", &mut symbols).unwrap(),
            parse_term("q(c, X)", &mut symbols).unwrap(),
        ];

        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(&encode_client_hello(PROTOCOL_VERSION)).unwrap();
        let mut hello = [0u8; SERVER_HELLO_LEN];
        stream.read_exact(&mut hello).unwrap();

        // One write so whole bursts reach the coalescer together.
        let mut burst = Vec::new();
        let mut expected: Vec<(u64, Option<&clare_term::Term>)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let id = 1_000 + (i as u64) * 37 % 501; // distinct, non-monotone
            match op {
                0..=3 => {
                    let query = &queries[*op as usize];
                    burst.extend_from_slice(&Frame::new(id, opcode::RETRIEVE, encode_retrieve(&RetrieveReq {
                        query: query.clone(),
                        mode: SearchMode::TwoStage,
                        deadline_micros: 0,
                        budget: BudgetExt::NONE,
                    })).encoded());
                    expected.push((id, Some(query)));
                }
                4 => {
                    burst.extend_from_slice(&Frame::new(id, opcode::PING, Vec::new()).encoded());
                    expected.push((id, None));
                }
                _ => {
                    burst.extend_from_slice(&Frame::new(id, opcode::STATS, Vec::new()).encoded());
                    expected.push((id, None));
                }
            }
        }
        stream.write_all(&burst).unwrap();

        // Replies may arrive in any order across workers; collect by id.
        let mut reader = FrameReader::new(MAX_FRAME_LEN);
        let mut replies = std::collections::HashMap::new();
        for _ in 0..expected.len() {
            let frame = reader.read_frame(&mut stream).unwrap();
            prop_assert!(replies.insert(frame.request_id, frame).is_none(), "duplicate reply id");
        }
        for (id, query) in &expected {
            let frame = replies.get(id).expect("request id never answered");
            match query {
                Some(query) => {
                    prop_assert_eq!(frame.opcode, opcode::RETRIEVE | opcode::REPLY);
                    let got = decode_retrieval(&frame.payload).unwrap();
                    let direct = crs.retrieve(query, SearchMode::TwoStage);
                    prop_assert_eq!(&got, &direct, "reply for id {} answers a different query", id);
                }
                None => prop_assert!(frame.opcode & opcode::REPLY != 0),
            }
        }
        server.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Capability negotiation never strands an old client. For an
    /// arbitrary requested-capability byte and either in-range protocol
    /// version, the server echoes the client's version, grants only a
    /// subset of what was requested, refuses the budget capability to a
    /// v3 client (whose decoders predate the optional budget tail), and
    /// then serves retrieval replies byte-identical to the in-process
    /// reference over that client's own framing — the v4 upgrade is
    /// invisible to v3 speakers.
    #[test]
    fn capability_negotiation_keeps_v3_answers_byte_identical(
        requested in any::<u8>(),
        speak_v3 in any::<bool>(),
        qi in 0usize..3,
    ) {
        let mut b = KbBuilder::new();
        b.consult("m", "p(a). p(b). q(c, d).").unwrap();
        let crs = Arc::new(ClauseRetrievalServer::new(
            b.finish(KbConfig::default()),
            CrsOptions::default(),
        ));
        let server = NetServer::bind(
            Arc::clone(&crs),
            "127.0.0.1:0",
            NetConfig { workers: 2, ..NetConfig::default() },
        )
        .unwrap();

        let version = if speak_v3 { MIN_PROTOCOL_VERSION } else { PROTOCOL_VERSION };
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(&encode_client_hello_caps(version, requested)).unwrap();
        let mut raw = [0u8; SERVER_HELLO_LEN];
        stream.read_exact(&mut raw).unwrap();
        let hello = decode_server_hello(&raw).unwrap();
        prop_assert_eq!(hello.status, HelloStatus::Ok);
        prop_assert_eq!(hello.version, version, "the server must echo the client's version");
        prop_assert_eq!(
            hello.caps & !requested, 0,
            "granted capabilities must be a subset of the requested ones"
        );
        if version < PROTOCOL_VERSION {
            prop_assert_eq!(
                hello.caps & CAP_QUERY_BUDGET, 0,
                "the budget capability must never be granted below v4"
            );
        }

        // Speak whatever framing was negotiated; a zero budget encodes to
        // v3-identical request bytes, so this is exactly what a v3 client
        // puts on the wire.
        let crc = hello.caps & CAP_FRAME_CRC != 0;
        let mut symbols = crs.symbols();
        let text = ["p(X)", "q(X, Y)", "p(b)"][qi];
        let query = parse_term(text, &mut symbols).unwrap();
        let req = RetrieveReq {
            mode: SearchMode::TwoStage,
            deadline_micros: 0,
            budget: BudgetExt::NONE,
            query: query.clone(),
        };
        let frame = Frame::new(7, opcode::RETRIEVE, encode_retrieve(&req));
        stream.write_all(&frame.encoded_with(crc)).unwrap();
        let mut fr = FrameReader::new(MAX_FRAME_LEN);
        fr.set_checksums(crc);
        let reply = fr.read_frame(&mut stream).unwrap();
        prop_assert_eq!(reply.request_id, 7);
        prop_assert_eq!(reply.opcode, opcode::RETRIEVE | opcode::REPLY);
        prop_assert_eq!(
            reply.payload,
            encode_retrieval(&crs.retrieve(&query, SearchMode::TwoStage)),
            "a {}-speaking client's reply diverged from the reference bytes", version
        );
        server.shutdown();
    }
}
