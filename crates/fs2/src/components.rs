//! Datapath components of the Test Unification Engine (Figure 5) and their
//! propagation delays.
//!
//! Every delay below appears in the timing calculations printed under
//! Figures 6–12 of the paper. They are the *only* timing inputs to the
//! simulator: Table 1 falls out of summing routes built from these.

use clare_disk::SimNanos;
use std::fmt;

/// A datapath component with a fixed propagation delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// The Double Buffer output register (20 ns).
    DoubleBuffer,
    /// Selector 1 (20 ns) — routes In-bus or DB Memory data to the
    /// comparator A-port.
    Sel1,
    /// Selector 2 (20 ns) — routes the DB Memory A address port.
    Sel2,
    /// Selector 3 (20 ns) — routes Query Memory or DB Memory data to the
    /// comparator B-port.
    Sel3,
    /// Selector 4 (20 ns) — routes the Query Memory data input.
    Sel4,
    /// Selector 5 (20 ns) — routes database data toward the Query Memory.
    Sel5,
    /// Selector 6 (20 ns) — routes the Query Memory address (microcode
    /// bits 13–20 during a search).
    Sel6,
    /// The dual-ported DB Memory, read access (25 ns).
    DbMemory,
    /// The Query Memory, read access (35 ns).
    QueryMemory,
    /// Register 1 (20 ns) — holds cross-binding references.
    Reg1,
    /// Register 3 (20 ns) — feeds the DB Memory data input.
    Reg3,
}

impl Component {
    /// Propagation delay, exactly as printed in the paper's figures.
    pub fn delay(self) -> SimNanos {
        let ns = match self {
            Component::DoubleBuffer => 20,
            Component::Sel1
            | Component::Sel2
            | Component::Sel3
            | Component::Sel4
            | Component::Sel5
            | Component::Sel6 => 20,
            Component::DbMemory => 25,
            Component::QueryMemory => 35,
            Component::Reg1 | Component::Reg3 => 20,
        };
        SimNanos::from_ns(ns)
    }

    /// The name the paper's figures use.
    pub fn name(self) -> &'static str {
        match self {
            Component::DoubleBuffer => "Double Buffer",
            Component::Sel1 => "Sel1",
            Component::Sel2 => "Sel2",
            Component::Sel3 => "Sel3",
            Component::Sel4 => "Sel4",
            Component::Sel5 => "Sel5",
            Component::Sel6 => "Sel6",
            Component::DbMemory => "DB Memory",
            Component::QueryMemory => "Query Memory",
            Component::Reg1 => "Reg1",
            Component::Reg3 => "Reg3",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The terminal action that closes a hardware operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Terminal {
    /// The ALS 8-bit comparator generates HIT (30 ns).
    Compare,
    /// A write into the DB Memory (20 ns).
    WriteDbMemory,
    /// A write into the Query Memory (35 ns — the memory's access time).
    WriteQueryMemory,
}

impl Terminal {
    /// Delay of the terminal action.
    pub fn delay(self) -> SimNanos {
        let ns = match self {
            Terminal::Compare => 30,
            Terminal::WriteDbMemory => 20,
            Terminal::WriteQueryMemory => 35,
        };
        SimNanos::from_ns(ns)
    }

    /// The label the figures use.
    pub fn name(self) -> &'static str {
        match self {
            Terminal::Compare => "comparison",
            Terminal::WriteDbMemory => "DB Memory write",
            Terminal::WriteQueryMemory => "Query Memory write",
        }
    }
}

impl fmt::Display for Terminal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The WCS clock (an 8 MHz oscillator synchronises the Writable Control
/// Store, §3.1).
pub const WCS_CLOCK_HZ: u64 = 8_000_000;

/// Capacity of the Writable Control Store: 2048 instructions of 64 bits.
pub const WCS_INSTRUCTIONS: usize = 2048;

/// Width of one WCS microinstruction in bits.
pub const WCS_INSTRUCTION_BITS: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_delays() {
        assert_eq!(Component::DoubleBuffer.delay().as_ns(), 20);
        assert_eq!(Component::Sel1.delay().as_ns(), 20);
        assert_eq!(Component::Sel6.delay().as_ns(), 20);
        assert_eq!(Component::DbMemory.delay().as_ns(), 25);
        assert_eq!(Component::QueryMemory.delay().as_ns(), 35);
        assert_eq!(Component::Reg1.delay().as_ns(), 20);
        assert_eq!(Component::Reg3.delay().as_ns(), 20);
        assert_eq!(Terminal::Compare.delay().as_ns(), 30);
        assert_eq!(Terminal::WriteDbMemory.delay().as_ns(), 20);
        assert_eq!(Terminal::WriteQueryMemory.delay().as_ns(), 35);
    }

    #[test]
    fn names_match_figures() {
        assert_eq!(Component::DoubleBuffer.name(), "Double Buffer");
        assert_eq!(Component::QueryMemory.name(), "Query Memory");
        assert_eq!(Terminal::Compare.name(), "comparison");
    }

    #[test]
    fn wcs_parameters() {
        assert_eq!(WCS_CLOCK_HZ, 8_000_000);
        assert_eq!(WCS_INSTRUCTIONS, 2048);
        assert_eq!(WCS_INSTRUCTION_BITS, 64);
    }
}
