//! The four CRS search modes (§2.2) side by side on one disk-resident
//! relation, including the Fs2Device register-level protocol for a single
//! track.
//!
//! ```text
//! cargo run --release --example search_modes
//! ```

use clare::fs2::OperationalMode;
use clare::prelude::*;
use clare::term::builder::TermBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 20 000-fact relation: large enough that its clause file spans
    // many disk tracks, which is where mode choice starts to matter.
    let mut builder = KbBuilder::new();
    let mut clauses = Vec::new();
    {
        let mut t = TermBuilder::new(builder.symbols_mut());
        for i in 0..20_000 {
            let k = t.atom(&format!("part{}", i % 4000));
            let w = t.atom(&format!("warehouse{}", i % 23));
            let qty = t.int((i % 500) as i64);
            clauses.push(t.fact("stock", vec![k, w, qty]));
        }
    }
    for c in clauses {
        builder.add_clause("inventory", c);
    }
    let (query, _) = parse_term_with_vars("stock(part1234, W, Q)", builder.symbols_mut())?;
    let kb = builder.finish(KbConfig::default());
    let pred = kb.lookup("stock", 3).expect("predicate exists");
    println!(
        "stock/3: {} clauses over {} disk tracks; index file {:.1} KB vs clause file {:.1} KB\n",
        pred.clauses().len(),
        pred.file().track_count(),
        pred.index().file_bytes() as f64 / 1024.0,
        pred.file().occupied_bytes() as f64 / 1024.0,
    );

    println!("?- stock(part1234, W, Q).\n");
    let opts = CrsOptions::default();
    println!(
        "{:<14} {:>10} {:>8} {:>10} {:>12}",
        "mode", "candidates", "answers", "disk KB", "elapsed"
    );
    for mode in SearchMode::ALL {
        let r = retrieve(&kb, &query, mode, &opts);
        println!(
            "{:<14} {:>10} {:>8} {:>10.0} {:>12}",
            mode.to_string(),
            r.stats.candidates,
            r.stats.unified,
            r.stats.bytes_from_disk as f64 / 1024.0,
            r.stats.elapsed.to_string()
        );
    }
    println!("\nautomatic choice: {}", choose_mode(&kb, &query));

    // Drive the FS2 board directly, the way the CRS does over the VMEbus:
    // microprogram -> query -> search -> read result.
    let mut device = Fs2Device::new();
    device.set_mode(OperationalMode::Microprogramming);
    device.load_microprogram(512)?;
    device.set_mode(OperationalMode::SetQuery);
    device.set_query(&encode_query(&query)?)?;
    device.set_mode(OperationalMode::Search);
    let stats = device.search_track(&pred.file().tracks()[0])?;
    device.set_mode(OperationalMode::ReadResult);
    let hits = device.read_results()?;
    println!(
        "\nFs2Device on track 0: {} clauses examined in {}, {} captured, control register: {}",
        stats.clauses,
        stats.match_time,
        hits.len(),
        device.control()
    );
    Ok(())
}
