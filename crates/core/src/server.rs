//! Multi-client access: the Clause Retrieval Server proper.
//!
//! "The CRS will also support simultaneous access by multiple clients
//! which involves procedures for concurrency control and transaction
//! handling." (§2.2.) The server holds the published state behind a
//! read/write lock: retrievals and solves run concurrently (each client
//! gets its own FS2 engine state — the simulated hardware is virtualised
//! per call, as a time-sliced CRS would do), while writers publish
//! atomically.
//!
//! # The mutable knowledge base
//!
//! The published state is a pair: an **immutable base snapshot**
//! ([`KnowledgeBase`]) plus a **memtable overlay**
//! ([`clare_wal::Overlay`]) holding every `assert`/`retract` since the
//! base was built. The write path is LevelDB-shaped:
//!
//! 1. every commit serializes on one commit lock, applies its ops to a
//!    *clone* of the overlay (copy-on-write — readers never see a
//!    partial commit), and — when a write-ahead log is attached via
//!    [`ClauseRetrievalServer::attach_wal`] — appends the batch to the
//!    WAL. **The fsynced append is the acknowledgement point**: an error
//!    anywhere publishes nothing;
//! 2. the new overlay is swapped in under the write lock, bumping the
//!    retrieval-cache epoch of every touched predicate;
//! 3. a background **compaction** ([`ClauseRetrievalServer::compact_now`]
//!    / [`spawn_compaction`](ClauseRetrievalServer::spawn_compaction))
//!    folds the overlay into a fresh base — track segments and FS1
//!    codeword indexes rewritten off the write path — and swaps it in
//!    atomically, re-applying any ops that committed while it ran.
//!    In-flight retrievals keep their snapshot pair; nothing blocks.
//!
//! Retrievals merge the overlay at lookup time
//! ([`crate::crs::retrieve_merged`]): overlay clauses have no codewords
//! yet, so the filters pass them unconditionally — the superset
//! (no-false-negative) invariant is preserved, and the merged answer is
//! byte-identical to a from-scratch rebuild.

use crate::budget::{BudgetExceeded, CancelToken};
use crate::cache::{Fs1Cache, QueryKey, RetrievalCache, Stamp};
use crate::crs::{retrieve_merged_budgeted, CrsOptions, Retrieval, SearchMode};
use crate::resolve::{SolveOptions, SolveOutcome};
use clare_disk::SimNanos;
use clare_kb::{KbConfig, KnowledgeBase};
use clare_scw::ScanOutcome;
use clare_term::{ClauseDisplay, SymbolTable, Term};
use clare_wal::{Overlay, OverlayError, ReplayReport, Wal, WalError, WalOp, WalRecord};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

/// Aggregate service statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Retrievals served (batch members count individually).
    pub retrievals: u64,
    /// Batch retrieval calls served (each also bumps `retrievals` by the
    /// batch size).
    pub batches: u64,
    /// Solve calls served.
    pub solves: u64,
    /// Knowledge-base updates committed (wholesale swaps and overlay
    /// commits both count; no-op commits do not).
    pub updates: u64,
    /// Requests refused by admission control (e.g. a network front-end
    /// shedding load when its queue is full); see
    /// [`ClauseRetrievalServer::note_rejected`].
    pub rejected: u64,
    /// Answers (retrievals or solves) served degraded: a storage fault
    /// quarantined at least one track, so the hardware filter was skipped
    /// there and the clauses re-served via software unification. Degraded
    /// answers are still correct — the count is a health signal, not an
    /// error count.
    pub degraded: u64,
    /// Total modelled retrieval time across clients.
    pub total_elapsed: SimNanos,
}

/// Seqlock-style holder of the server statistics: writers serialise on a
/// mutex and publish every field to an atomic mirror between two version
/// bumps (odd while a publication is in flight); readers copy the mirror
/// lock-free and retry if the version was odd or moved. Readers therefore
/// never block the serving path, and a [`ClauseRetrievalServer::stats`]
/// snapshot can never tear — e.g. observe a `retrieve_batch`'s `batches`
/// bump without its `retrievals` bump.
#[derive(Debug, Default)]
struct StatsCell {
    /// Authoritative copy; also the writer lock.
    write: Mutex<ServerStats>,
    /// Publication version: odd while the mirror is being rewritten.
    version: AtomicU64,
    retrievals: AtomicU64,
    batches: AtomicU64,
    solves: AtomicU64,
    updates: AtomicU64,
    rejected: AtomicU64,
    degraded: AtomicU64,
    total_elapsed_ns: AtomicU64,
}

impl StatsCell {
    /// Applies `f` to the authoritative copy, then publishes it.
    fn update(&self, f: impl FnOnce(&mut ServerStats)) {
        let mut guard = self.write.lock();
        f(&mut guard);
        let s = *guard;
        // Enter the write-side critical section: the acquire half keeps
        // the field stores from hoisting above the bump to odd.
        self.version.fetch_add(1, Ordering::Acquire);
        self.retrievals.store(s.retrievals, Ordering::Relaxed);
        self.batches.store(s.batches, Ordering::Relaxed);
        self.solves.store(s.solves, Ordering::Relaxed);
        self.updates.store(s.updates, Ordering::Relaxed);
        self.rejected.store(s.rejected, Ordering::Relaxed);
        self.degraded.store(s.degraded, Ordering::Relaxed);
        self.total_elapsed_ns
            .store(s.total_elapsed.as_ns(), Ordering::Relaxed);
        // Exit: the release half keeps the stores from sinking below the
        // bump back to even.
        self.version.fetch_add(1, Ordering::Release);
    }

    /// A consistent lock-free snapshot.
    fn snapshot(&self) -> ServerStats {
        loop {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let s = ServerStats {
                retrievals: self.retrievals.load(Ordering::Relaxed),
                batches: self.batches.load(Ordering::Relaxed),
                solves: self.solves.load(Ordering::Relaxed),
                updates: self.updates.load(Ordering::Relaxed),
                rejected: self.rejected.load(Ordering::Relaxed),
                degraded: self.degraded.load(Ordering::Relaxed),
                total_elapsed: SimNanos::from_ns(self.total_elapsed_ns.load(Ordering::Relaxed)),
            };
            std::sync::atomic::fence(Ordering::Acquire);
            if self.version.load(Ordering::Relaxed) == v1 {
                return s;
            }
        }
    }
}

/// The atomically published serving state: an immutable base snapshot
/// plus the memtable overlay of everything asserted/retracted since it
/// was built. Readers clone both `Arc`s under one read-lock acquisition
/// and keep a consistent pair for the whole call.
#[derive(Debug, Clone)]
struct Published {
    base: Arc<KnowledgeBase>,
    overlay: Arc<Overlay>,
}

/// Writer-side state, all behind the commit lock: holding it is what
/// serializes every publisher (overlay commits, wholesale updates, WAL
/// attachment, and the compaction swap), so the published base can never
/// move under a writer between its read and its write.
#[derive(Debug)]
struct CommitState {
    /// The attached write-ahead log, if any. Appends happen under the
    /// commit lock; the fsynced batch is the acknowledgement point.
    wal: Option<Wal>,
    /// Compilation parameters used to validate overlay clauses (track
    /// fit) and to rebuild the base at compaction. Refreshed by every
    /// transaction commit that carries one.
    config: KbConfig,
    /// Next sequence number when no WAL is attached (the overlay still
    /// orders its ops by seq; durability simply isn't promised).
    mem_seq: u64,
    /// Highest sequence number whose record has been folded out of the
    /// overlay (by compaction or a wholesale update). A replication
    /// subscriber asking to catch up from below this point cannot be
    /// served from the overlay — [`SubscribeError::Gap`].
    folded_through: u64,
    /// When the overlay last went from empty to holding operations; the
    /// age reference for the auto-compaction age trigger. Cleared when a
    /// compaction or wholesale update empties the overlay.
    overlay_born: Option<Instant>,
}

/// What a successful commit did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitReceipt {
    /// The WAL sequence numbers this commit occupies (`start == end` for
    /// a no-op commit, which skips the log entirely).
    pub seqs: std::ops::Range<u64>,
    /// Clauses added to the overlay.
    pub asserted: usize,
    /// Clauses removed (retracted out of the base view or out of the
    /// overlay).
    pub retracted: usize,
    /// Whether the commit was durably logged (a WAL is attached and the
    /// batch was fsynced before this receipt was produced).
    pub durable: bool,
}

impl CommitReceipt {
    fn noop() -> Self {
        CommitReceipt {
            seqs: 0..0,
            asserted: 0,
            retracted: 0,
            durable: false,
        }
    }
}

/// Errors from committing mutations. In every case **nothing was
/// published**: the overlay clone is discarded and readers keep the old
/// state.
#[derive(Debug)]
pub enum CommitError {
    /// A clause failed validation (parse, PIF compile, or track fit).
    Overlay(OverlayError),
    /// The write-ahead log refused or failed the append, so the commit
    /// was never acknowledged.
    Wal(WalError),
    /// A replicated record arrived out of order
    /// ([`ClauseRetrievalServer::apply_replicated`]): its sequence number
    /// skips past what this replica has applied. The shipper must resend
    /// from `expected`.
    ReplicaGap {
        /// The sequence number this replica will accept next.
        expected: u64,
    },
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::Overlay(e) => write!(f, "commit rejected: {e}"),
            CommitError::Wal(e) => write!(f, "commit not acknowledged: {e}"),
            CommitError::ReplicaGap { expected } => {
                write!(f, "replication gap: expected seq {expected}")
            }
        }
    }
}

impl std::error::Error for CommitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CommitError::Overlay(e) => Some(e),
            CommitError::Wal(e) => Some(e),
            CommitError::ReplicaGap { .. } => None,
        }
    }
}

/// Errors from [`ClauseRetrievalServer::subscribe_ops`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscribeError {
    /// Catch-up from the requested point is impossible: every record
    /// through `folded_through` has been folded into the base (by
    /// compaction or a wholesale update), so the overlay no longer holds
    /// it. The subscriber must resynchronise some other way (e.g. restart
    /// from a fresh copy of the base).
    Gap {
        /// Records at or below this sequence are gone from the overlay.
        folded_through: u64,
    },
}

impl fmt::Display for SubscribeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubscribeError::Gap { folded_through } => write!(
                f,
                "cannot catch up: records through seq {folded_through} were compacted away"
            ),
        }
    }
}

impl std::error::Error for SubscribeError {}

/// A replication subscriber's delivery callback: called under the commit
/// lock with each committed batch's records, in sequence order, with no
/// gaps from the subscription point. Return `false` to cancel the
/// subscription (e.g. the peer hung up).
pub type LogWatcher = Box<dyn FnMut(&[WalRecord]) -> bool + Send>;

/// The registered replication subscribers. Deliveries happen under the
/// commit lock (commit order **is** delivery order); this inner mutex
/// only protects the vector against concurrent registration.
#[derive(Default)]
struct WatcherSet {
    inner: Mutex<Vec<LogWatcher>>,
}

impl WatcherSet {
    /// Delivers `records` to every live watcher, dropping the ones that
    /// decline. Caller must hold the commit lock.
    fn notify(&self, records: &[WalRecord]) {
        if records.is_empty() {
            return;
        }
        let mut watchers = self.inner.lock();
        watchers.retain_mut(|w| w(records));
    }
}

impl fmt::Debug for WatcherSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WatcherSet({})", self.inner.lock().len())
    }
}

impl From<OverlayError> for CommitError {
    fn from(e: OverlayError) -> Self {
        CommitError::Overlay(e)
    }
}

impl From<WalError> for CommitError {
    fn from(e: WalError) -> Self {
        CommitError::Wal(e)
    }
}

/// What one [`ClauseRetrievalServer::compact_now`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionOutcome {
    /// Another compaction was already in flight; this call did nothing.
    AlreadyRunning,
    /// The overlay was empty; there was nothing to fold.
    Clean,
    /// The rebuilt base was swapped in; `folded` logged operations left
    /// the overlay (ops that committed during the rebuild were re-applied
    /// on top of the new base).
    Swapped {
        /// Operations folded into the new base.
        folded: usize,
    },
    /// The published base moved while the rebuild ran (a wholesale
    /// [`update`](ClauseRetrievalServer::update) swapped it); the rebuilt
    /// base was discarded. Run compaction again against the new state.
    Aborted,
    /// The rebuild failed to compile; the overlay is kept as-is. (Commit
    /// validation makes this unreachable for ordinary clause traffic.)
    Failed,
}

/// A shared, thread-safe clause retrieval service.
///
/// # Examples
///
/// ```
/// use clare_core::{ClauseRetrievalServer, CrsOptions, SearchMode};
/// use clare_kb::{KbBuilder, KbConfig};
/// use clare_term::parser::parse_term;
///
/// let mut b = KbBuilder::new();
/// b.consult("m", "p(a). p(b).")?;
/// let query = parse_term("p(a)", b.symbols_mut())?;
/// let server = ClauseRetrievalServer::new(b.finish(KbConfig::default()), CrsOptions::default());
///
/// let outcome = server.retrieve(&query, SearchMode::TwoStage);
/// assert_eq!(outcome.stats.unified, 1);
/// assert_eq!(server.stats().retrievals, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ClauseRetrievalServer {
    kb: RwLock<Published>,
    /// Lock order: `commit` strictly before `kb` — every writer takes the
    /// commit lock first and the `kb` write lock only for the final swap.
    commit: Mutex<CommitState>,
    /// Single-flight guard for compaction; also lets the serving path
    /// count retrievals that overlap a compaction window.
    compacting: AtomicBool,
    options: CrsOptions,
    stats: StatsCell,
    /// Epoch-invalidated answer/FS1 cache ([`crate::cache`]). Epoch
    /// stamps are read under the same `kb` read lock the snapshot comes
    /// from, and updates bump epochs under the write lock, so a stamp and
    /// its snapshot are always mutually consistent.
    cache: RetrievalCache,
    /// Replication subscribers ([`Self::subscribe_ops`]); notified under
    /// the commit lock after every publish.
    watchers: WatcherSet,
    /// Back-reference populated by [`Self::shared`]: lets auto-compaction
    /// spawn a detached background pass. Dangling for plain [`Self::new`]
    /// servers, which compact synchronously instead.
    self_weak: Weak<ClauseRetrievalServer>,
}

/// The server's [`Fs1Cache`] seam: key and stamp are captured here so the
/// retrieval pipeline stays ignorant of epochs.
struct ServerFs1Cache<'a> {
    cache: &'a RetrievalCache,
    key: &'a QueryKey,
    stamp: Stamp,
}

impl Fs1Cache for ServerFs1Cache<'_> {
    fn get(&self) -> Option<ScanOutcome> {
        self.cache.get_fs1(self.key, self.stamp)
    }

    fn put(&self, outcome: &ScanOutcome) {
        self.cache
            .put_fs1(self.key.clone(), self.stamp, outcome.clone());
    }
}

/// The `functor/arity` metric key of a query, if it has one. Resolved
/// against the overlay's symbol table — a superset of the base's, so
/// predicates that exist only in the overlay still report. A functor the
/// server has never interned (a query minted in some newer lineage) has
/// no name here and no clauses either; it gets no key.
fn pred_key(symbols: &SymbolTable, query: &Term) -> Option<String> {
    let (functor, arity) = query.functor_arity()?;
    Some(format!("{}/{arity}", symbols.try_atom_text(functor)?))
}

impl ClauseRetrievalServer {
    /// Wraps a compiled knowledge base (with an initially empty overlay).
    pub fn new(kb: KnowledgeBase, options: CrsOptions) -> Self {
        let cache = RetrievalCache::new(&options.cache);
        let overlay = Overlay::new(kb.symbols().clone());
        ClauseRetrievalServer {
            kb: RwLock::new(Published {
                base: Arc::new(kb),
                overlay: Arc::new(overlay),
            }),
            commit: Mutex::new(CommitState {
                wal: None,
                config: KbConfig::default(),
                mem_seq: 1,
                folded_through: 0,
                overlay_born: None,
            }),
            compacting: AtomicBool::new(false),
            options,
            stats: StatsCell::default(),
            cache,
            watchers: WatcherSet::default(),
            self_weak: Weak::new(),
        }
    }

    /// Like [`new`](Self::new), but shared from birth: the server holds a
    /// weak back-reference to its own `Arc`, which lets threshold-
    /// triggered auto-compaction run on a detached background thread
    /// (exactly like [`spawn_compaction`](Self::spawn_compaction))
    /// instead of synchronously inside the committing call.
    pub fn shared(kb: KnowledgeBase, options: CrsOptions) -> Arc<Self> {
        Arc::new_cyclic(|weak| {
            let mut server = Self::new(kb, options);
            server.self_weak = weak.clone();
            server
        })
    }

    /// A snapshot of the current immutable base (clients keep a
    /// consistent view even across a concurrent update). Note this is the
    /// *base only* — [`snapshot_merged`](Self::snapshot_merged) also
    /// returns the overlay the serving path merges in.
    pub fn snapshot(&self) -> Arc<KnowledgeBase> {
        self.kb.read().base.clone()
    }

    /// The full serving state: base snapshot plus memtable overlay, read
    /// under one lock acquisition so the pair is consistent.
    pub fn snapshot_merged(&self) -> (Arc<KnowledgeBase>, Arc<Overlay>) {
        let guard = self.kb.read();
        (guard.base.clone(), guard.overlay.clone())
    }

    /// A clone of the serving symbol table: the base's, extended by every
    /// atom the overlay has interned since. Parse queries against this to
    /// reach overlay-only predicates.
    pub fn symbols(&self) -> SymbolTable {
        self.kb.read().overlay.symbols().clone()
    }

    /// The CRS configuration this server retrieves with. Front-ends (e.g.
    /// the network daemon) use this to build solve options that match the
    /// server's own retrieval path.
    pub fn options(&self) -> &CrsOptions {
        &self.options
    }

    /// Serves one retrieval over the merged (base + overlay) view. With
    /// the cache enabled (the default), a repeat of a recently served
    /// query skips the filter pipeline entirely and returns the
    /// byte-identical cached [`Retrieval`]; degraded answers are never
    /// cached, and any commit or track quarantine invalidates the
    /// affected entries.
    pub fn retrieve(&self, query: &Term, mode: SearchMode) -> Retrieval {
        match self.retrieve_budgeted(query, mode, &CancelToken::unlimited()) {
            Ok(outcome) => outcome,
            Err(_) => unreachable!("the unlimited budget cannot trip"),
        }
    }

    /// [`retrieve`](Self::retrieve) under a query budget: the scan
    /// checkpoints the token between shards/tracks/candidates and aborts
    /// with a typed [`BudgetExceeded`] (carrying the partial stats) the
    /// moment it trips. Cache *hits* are always served — a hit costs
    /// nothing, so a budget can never refuse it — while a tripped miss
    /// returns an error and **never** populates the cache (the error
    /// path returns before [`note_outcome`](Self::note_outcome)).
    pub fn retrieve_budgeted(
        &self,
        query: &Term,
        mode: SearchMode,
        cancel: &CancelToken,
    ) -> Result<Retrieval, BudgetExceeded> {
        let started = Instant::now();
        let (published, outcome) = self.retrieve_through_cache(query, mode, cancel)?;
        self.stats.update(|stats| {
            stats.retrievals += 1;
            stats.degraded += u64::from(outcome.stats.degraded);
            stats.total_elapsed += outcome.stats.elapsed;
        });
        let m = clare_trace::metrics();
        if self.compacting.load(Ordering::Relaxed) {
            m.compaction_concurrent_retrievals.inc();
        }
        m.crs_retrieve_wall_ns
            .record(started.elapsed().as_nanos() as u64);
        if let Some(key) = pred_key(published.overlay.symbols(), query) {
            m.crs_predicates.record(&key, outcome.stats.elapsed.as_ns());
        }
        Ok(outcome)
    }

    /// One retrieval through the cache: answer-layer hit, else the filter
    /// pipeline with the FS1 layer as a seam, then insertion of clean
    /// (non-degraded, mode-as-requested) answers. A budget trip exits
    /// with `?` *before* the insertion, so a cancelled partial answer is
    /// structurally unreachable from the cache.
    fn retrieve_through_cache(
        &self,
        query: &Term,
        mode: SearchMode,
        cancel: &CancelToken,
    ) -> Result<(Published, Retrieval), BudgetExceeded> {
        let key = if self.cache.enabled() {
            QueryKey::new(query)
        } else {
            None
        };
        let Some(key) = key else {
            // No canonical encoding (or cache off): the uncached pipeline.
            let published = self.kb.read().clone();
            let outcome = retrieve_merged_budgeted(
                &published.base,
                &published.overlay,
                query,
                mode,
                &self.options,
                cancel,
            )?;
            return Ok((published, outcome));
        };
        let (published, stamp) = self.snapshot_with_stamp(key.pred());
        if let Some(hit) = self.cache.get_answer(&key, mode, stamp) {
            return Ok((published, hit));
        }
        let fs1 = ServerFs1Cache {
            cache: &self.cache,
            key: &key,
            stamp,
        };
        let outcome = crate::crs::retrieve_cached(
            &published.base,
            Some(&published.overlay),
            query,
            mode,
            &self.options,
            Some(&fs1),
            cancel,
        )?;
        self.note_outcome(&key, mode, stamp, &outcome);
        Ok((published, outcome))
    }

    /// The published state plus the epoch stamp for `pred`, read under
    /// one read-lock acquisition. Commits bump epochs while holding the
    /// write lock, so the pair can never mix an old state with a new
    /// stamp or vice versa — the soundness core of the cache.
    fn snapshot_with_stamp(&self, pred: (clare_term::Symbol, usize)) -> (Published, Stamp) {
        let guard = self.kb.read();
        let stamp = self.cache.stamp(pred);
        (guard.clone(), stamp)
    }

    /// Post-retrieval cache bookkeeping: a quarantine invalidates the
    /// predicate (the stored file memoizes CRC verdicts, so later runs
    /// may legitimately differ); clean answers in the requested mode are
    /// inserted.
    fn note_outcome(&self, key: &QueryKey, mode: SearchMode, stamp: Stamp, outcome: &Retrieval) {
        if outcome.stats.quarantined_tracks > 0 {
            self.cache.bump_predicate(key.pred());
        }
        if !outcome.stats.degraded && outcome.stats.mode == mode {
            self.cache
                .put_answer(key.clone(), mode, stamp, outcome.clone());
        }
    }

    /// Serves a batch of retrievals against one consistent snapshot pair:
    /// the state is read once, same-predicate queries share a single FS1
    /// index sweep plus one FS2 worker pool over the shared clause arena
    /// ([`crate::crs::retrieve_batch`]), and the service statistics are
    /// updated under one lock acquisition. Results are in query order and
    /// identical to issuing each query via
    /// [`ClauseRetrievalServer::retrieve`].
    pub fn retrieve_batch(&self, queries: &[Term], mode: SearchMode) -> Vec<Retrieval> {
        match self.retrieve_batch_budgeted(queries, mode, &CancelToken::unlimited()) {
            Ok(outcomes) => outcomes,
            Err(_) => unreachable!("the unlimited budget cannot trip"),
        }
    }

    /// [`retrieve_batch`](Self::retrieve_batch) under a query budget. The
    /// budget covers the batch as a whole: one trip anywhere abandons the
    /// remaining members and returns the typed error — never a partial
    /// result vector — and nothing from the cancelled pass is cached.
    pub fn retrieve_batch_budgeted(
        &self,
        queries: &[Term],
        mode: SearchMode,
        cancel: &CancelToken,
    ) -> Result<Vec<Retrieval>, BudgetExceeded> {
        let started = Instant::now();
        let (published, outcomes) = self.retrieve_batch_through_cache(queries, mode, cancel)?;
        self.stats.update(|stats| {
            stats.batches += 1;
            stats.retrievals += outcomes.len() as u64;
            for outcome in &outcomes {
                stats.degraded += u64::from(outcome.stats.degraded);
                stats.total_elapsed += outcome.stats.elapsed;
            }
        });
        let m = clare_trace::metrics();
        if self.compacting.load(Ordering::Relaxed) {
            m.compaction_concurrent_retrievals.inc();
        }
        m.crs_batch_size.record(queries.len() as u64);
        m.crs_retrieve_wall_ns
            .record(started.elapsed().as_nanos() as u64);
        for (query, outcome) in queries.iter().zip(&outcomes) {
            if let Some(key) = pred_key(published.overlay.symbols(), query) {
                m.crs_predicates.record(&key, outcome.stats.elapsed.as_ns());
            }
        }
        Ok(outcomes)
    }

    /// Batch variant of [`retrieve_through_cache`]: answer-layer hits are
    /// taken per query, and only the misses flow through the shared
    /// batched pipeline (each with its own FS1-layer seam), preserving
    /// both query order and the coalescing wins for the cold subset.
    fn retrieve_batch_through_cache(
        &self,
        queries: &[Term],
        mode: SearchMode,
        cancel: &CancelToken,
    ) -> Result<(Published, Vec<Retrieval>), BudgetExceeded> {
        let keys: Vec<Option<QueryKey>> = if self.cache.enabled() {
            queries.iter().map(QueryKey::new).collect()
        } else {
            vec![None; queries.len()]
        };
        // One read-lock acquisition covers the snapshot and every stamp
        // (see snapshot_with_stamp for why that pairing matters).
        let (published, stamps) = {
            let guard = self.kb.read();
            let stamps: Vec<Option<Stamp>> = keys
                .iter()
                .map(|key| key.as_ref().map(|key| self.cache.stamp(key.pred())))
                .collect();
            (guard.clone(), stamps)
        };
        let mut outcomes: Vec<Option<Retrieval>> = keys
            .iter()
            .zip(&stamps)
            .map(|(key, stamp)| match (key, stamp) {
                (Some(key), Some(stamp)) => self.cache.get_answer(key, mode, *stamp),
                _ => None,
            })
            .collect();
        let miss_idx: Vec<usize> = (0..queries.len())
            .filter(|&i| outcomes[i].is_none())
            .collect();
        if !miss_idx.is_empty() {
            let miss_queries: Vec<Term> = miss_idx.iter().map(|&i| queries[i].clone()).collect();
            let handles: Vec<Option<ServerFs1Cache<'_>>> = miss_idx
                .iter()
                .map(|&i| {
                    keys[i].as_ref().map(|key| ServerFs1Cache {
                        cache: &self.cache,
                        key,
                        stamp: stamps[i].unwrap_or_default(),
                    })
                })
                .collect();
            let handle_refs: Vec<Option<&dyn Fs1Cache>> = handles
                .iter()
                .map(|handle| handle.as_ref().map(|handle| handle as &dyn Fs1Cache))
                .collect();
            let computed = crate::crs::retrieve_batch_cached(
                &published.base,
                Some(&published.overlay),
                &miss_queries,
                mode,
                &self.options,
                &handle_refs,
                cancel,
            )?;
            for (&i, outcome) in miss_idx.iter().zip(computed) {
                if let (Some(key), Some(stamp)) = (&keys[i], stamps[i]) {
                    self.note_outcome(key, mode, stamp, &outcome);
                }
                outcomes[i] = Some(outcome);
            }
        }
        let outcomes = outcomes
            .into_iter()
            .map(|outcome| outcome.unwrap_or_else(|| unreachable!("every slot filled above")))
            .collect();
        Ok((published, outcomes))
    }

    /// Serves one solve call over the merged view.
    pub fn solve(
        &self,
        query: &Term,
        var_names: &[String],
        options: &SolveOptions,
    ) -> SolveOutcome {
        self.solve_goals(std::slice::from_ref(query), var_names, options)
    }

    /// Serves a conjunction of goals sharing one variable scope.
    pub fn solve_goals(
        &self,
        goals: &[Term],
        var_names: &[String],
        options: &SolveOptions,
    ) -> SolveOutcome {
        match self.solve_goals_budgeted(goals, var_names, options, &CancelToken::unlimited()) {
            Ok(outcome) => outcome,
            Err(_) => unreachable!("the unlimited budget cannot trip"),
        }
    }

    /// [`solve_goals`](Self::solve_goals) under a query budget: every
    /// resolution step checkpoints the token (which also covers the
    /// deadline), so a runaway recursion releases its worker within one
    /// expansion of the budget tripping. The typed [`BudgetExceeded`]
    /// carries the partial [`crate::resolve::SolveStats`]; the partial
    /// solution set is dropped, never returned, never cached.
    pub fn solve_goals_budgeted(
        &self,
        goals: &[Term],
        var_names: &[String],
        options: &SolveOptions,
        cancel: &CancelToken,
    ) -> Result<SolveOutcome, BudgetExceeded> {
        let started = Instant::now();
        let (base, overlay) = self.snapshot_merged();
        let outcome = crate::resolve::solve_goals_merged_budgeted(
            &base, &overlay, goals, var_names, options, cancel,
        )?;
        self.stats.update(|stats| {
            stats.solves += 1;
            stats.degraded += u64::from(outcome.stats.degraded);
            stats.total_elapsed += outcome.stats.retrieval_elapsed;
        });
        let m = clare_trace::metrics();
        if self.compacting.load(Ordering::Relaxed) {
            m.compaction_concurrent_retrievals.inc();
        }
        m.crs_solve_wall_ns
            .record(started.elapsed().as_nanos() as u64);
        Ok(outcome)
    }

    /// Commits a new compiled knowledge base atomically, **discarding the
    /// overlay**: the new base is taken as the complete state (callers
    /// rebuilding via [`KnowledgeBase::to_builder`] have already folded
    /// whatever they wanted to keep). In-flight clients finish against
    /// their snapshot pair; new calls see the update.
    ///
    /// A wholesale update is an in-memory operation: it is *not* logged
    /// to an attached WAL, and prior WAL records replay against the base
    /// that was live when they were logged. Servers that own a WAL should
    /// mutate through transactions ([`begin_update`](Self::begin_update))
    /// and fold with [`compact_now`](Self::compact_now) instead.
    pub fn update(&self, kb: KnowledgeBase) {
        let mut commit = self.commit.lock();
        // The overlay is discarded wholesale: subscribers can no longer
        // catch up from below the current frontier.
        commit.folded_through = commit
            .wal
            .as_ref()
            .map_or(commit.mem_seq, |wal| wal.next_seq())
            - 1;
        commit.overlay_born = None;
        let overlay = Overlay::new(kb.symbols().clone());
        let mut guard = self.kb.write();
        // Bump cache epochs *while holding the write lock*: readers take
        // (snapshot, stamp) under the read lock, so they can never pair
        // the outgoing state with the incoming stamp or vice versa.
        self.cache.bump_for_update(&guard.base, &kb);
        *guard = Published {
            base: Arc::new(kb),
            overlay: Arc::new(overlay),
        };
        drop(guard);
        drop(commit);
        self.stats.update(|stats| stats.updates += 1);
    }

    /// Attaches (creating if absent) a write-ahead log and replays it:
    /// every intact record is re-applied to a fresh overlay over the
    /// current base, any torn tail a crash left is truncated, and from
    /// here on every commit is fsynced into the log before it is
    /// acknowledged. Call this right after construction, before serving
    /// writes — any uncommitted overlay state is replaced by the replay.
    ///
    /// # Errors
    ///
    /// I/O failure or real corruption (CRC-valid garbage, sequence gaps —
    /// not a torn tail, which is recovered silently).
    pub fn attach_wal<P: AsRef<std::path::Path>>(
        &self,
        path: P,
    ) -> Result<ReplayReport, CommitError> {
        let (wal, records, report) = Wal::open(path)?;
        let mut commit = self.commit.lock();
        let base = self.kb.read().base.clone();
        let (overlay, _skipped) = Overlay::rebuild(&base, &records, &commit.config);
        let mut guard = self.kb.write();
        // Replay can resurrect anything; invalidate wholesale.
        self.cache.bump_global();
        guard.overlay = Arc::new(overlay);
        drop(guard);
        commit.wal = Some(wal);
        Ok(report)
    }

    /// Applies a batch of assert/retract operations as one atomic,
    /// serialized commit: every clause is validated against a clone of
    /// the overlay, the batch is group-committed to the WAL (when
    /// attached — the fsync is the acknowledgement point), and only then
    /// is the new overlay published. Concurrent callers serialize on the
    /// commit lock, so **no committed operation is ever lost** — unlike
    /// the old last-writer-wins rebuild-and-swap transactions.
    ///
    /// An empty batch is a no-op: nothing is logged, published, or
    /// invalidated (`wal.noop_commits` counts them).
    ///
    /// # Errors
    ///
    /// Validation or WAL failure; nothing is published.
    pub fn apply_ops(&self, ops: Vec<WalOp>) -> Result<CommitReceipt, CommitError> {
        self.commit_ops(ops, None)
    }

    /// One-op convenience for [`apply_ops`](Self::apply_ops): asserts
    /// every clause in `source` (in order) to `module`.
    pub fn assert_source(&self, module: &str, source: &str) -> Result<CommitReceipt, CommitError> {
        self.apply_ops(vec![WalOp::Assert {
            module: module.to_string(),
            source: source.to_string(),
        }])
    }

    /// One-op convenience for [`apply_ops`](Self::apply_ops): retracts
    /// the first live clause structurally equal to the single clause in
    /// `source` (a quiet no-op if none matches, mirroring Prolog's
    /// `retract/1` failure being harmless to the store).
    pub fn retract_source(&self, module: &str, source: &str) -> Result<CommitReceipt, CommitError> {
        self.apply_ops(vec![WalOp::Retract {
            module: module.to_string(),
            source: source.to_string(),
        }])
    }

    fn commit_ops(
        &self,
        ops: Vec<WalOp>,
        config: Option<KbConfig>,
    ) -> Result<CommitReceipt, CommitError> {
        if ops.is_empty() {
            // The whole point of the skip: no recompile, no swap, no
            // epoch bumps flushing hot cache entries.
            clare_trace::metrics().wal_noop_commits.inc();
            return Ok(CommitReceipt::noop());
        }
        let mut commit = self.commit.lock();
        if let Some(config) = config {
            commit.config = config;
        }
        let receipt = self.commit_under_lock(&mut commit, &ops)?;
        drop(commit);
        self.stats.update(|stats| stats.updates += 1);
        self.maybe_auto_compact();
        Ok(receipt)
    }

    /// The shared commit body: validate → apply to an overlay clone →
    /// WAL append (the acknowledgement point) → publish → notify
    /// replication subscribers. Caller holds the commit lock.
    fn commit_under_lock(
        &self,
        commit: &mut CommitState,
        ops: &[WalOp],
    ) -> Result<CommitReceipt, CommitError> {
        // Refuse structurally unencodable ops up front — before any of
        // them mutates the overlay clone and regardless of whether a WAL
        // is attached (the memory-only and replica paths must refuse the
        // same ops the durable path would).
        for op in ops {
            op.validate()?;
        }
        // Holding the commit lock pins the published pair: every other
        // publisher (commits, wholesale updates, the compaction swap)
        // also takes it.
        let published = self.kb.read().clone();
        let was_empty = published.overlay.is_empty();
        let mut overlay = (*published.overlay).clone();
        let first_seq = commit
            .wal
            .as_ref()
            .map_or(commit.mem_seq, |wal| wal.next_seq());
        let mut asserted = 0usize;
        let mut retracted = 0usize;
        let mut touched: BTreeSet<(clare_term::Symbol, usize)> = BTreeSet::new();
        for (k, op) in ops.iter().enumerate() {
            let outcome =
                overlay.apply(first_seq + k as u64, op, &published.base, &commit.config)?;
            asserted += outcome.clauses_added;
            retracted += outcome.clauses_removed;
            touched.extend(outcome.touched);
        }
        // Durability point: the batch goes down in one buffered write and
        // one fsync; an error acknowledges nothing (the clone above is
        // simply dropped, and the WAL handle poisons itself until the
        // file is reopened and its torn tail truncated).
        let durable = match commit.wal.as_mut() {
            Some(wal) => {
                wal.append_batch(ops)?;
                true
            }
            None => {
                commit.mem_seq = first_seq + ops.len() as u64;
                false
            }
        };
        if was_empty {
            commit.overlay_born = Some(Instant::now());
        }
        let mut guard = self.kb.write();
        debug_assert!(
            Arc::ptr_eq(&guard.base, &published.base),
            "commit lock pins the base"
        );
        for &pred in &touched {
            self.cache.bump_predicate(pred);
        }
        guard.overlay = Arc::new(overlay);
        drop(guard);
        // Ship to subscribers while still holding the commit lock: the
        // delivery order across commits is exactly the commit order, and
        // a subscriber registered in between sees each record exactly
        // once (either in its catch-up or here).
        let records: Vec<WalRecord> = ops
            .iter()
            .enumerate()
            .map(|(k, op)| WalRecord {
                seq: first_seq + k as u64,
                op: op.clone(),
            })
            .collect();
        self.watchers.notify(&records);
        let m = clare_trace::metrics();
        m.wal_overlay_asserts.add(asserted as u64);
        m.wal_overlay_retracts.add(retracted as u64);
        Ok(CommitReceipt {
            seqs: first_seq..first_seq + ops.len() as u64,
            asserted,
            retracted,
            durable,
        })
    }

    /// Applies one record shipped from a replication stream, enforcing
    /// gapless in-order delivery. Returns the sequence number this
    /// replica has applied through:
    ///
    /// * `record.seq` is exactly the next expected sequence — the record
    ///   commits through the ordinary (WAL-backed, if attached) path;
    /// * `record.seq` is below the frontier — an idempotent duplicate
    ///   (the shipper resent something already applied): skipped;
    /// * `record.seq` skips ahead — [`CommitError::ReplicaGap`], and the
    ///   shipper must resend from the reported `expected`.
    pub fn apply_replicated(&self, record: &WalRecord) -> Result<u64, CommitError> {
        let mut commit = self.commit.lock();
        let expected = commit
            .wal
            .as_ref()
            .map_or(commit.mem_seq, |wal| wal.next_seq());
        if record.seq < expected {
            return Ok(expected - 1);
        }
        if record.seq > expected {
            return Err(CommitError::ReplicaGap { expected });
        }
        let ops = std::slice::from_ref(&record.op);
        self.commit_under_lock(&mut commit, ops)?;
        drop(commit);
        self.stats.update(|stats| stats.updates += 1);
        self.maybe_auto_compact();
        Ok(record.seq)
    }

    /// The highest committed sequence number (0 before the first
    /// commit). On a primary this is the replication frontier its
    /// backups chase.
    pub fn current_seq(&self) -> u64 {
        let commit = self.commit.lock();
        commit
            .wal
            .as_ref()
            .map_or(commit.mem_seq, |wal| wal.next_seq())
            - 1
    }

    /// Subscribes to the committed-operation stream: `watcher` is first
    /// called (under the commit lock, before this returns) with every
    /// overlay record past `from_seq` — the catch-up — and thereafter
    /// with each committed batch, in commit order, gapless. Returns the
    /// sequence the stream is current through. The watcher stays
    /// registered until it returns `false`.
    ///
    /// # Errors
    ///
    /// [`SubscribeError::Gap`] when records past `from_seq` have already
    /// been folded out of the overlay (compaction or wholesale update):
    /// catch-up through this stream is impossible.
    pub fn subscribe_ops(
        &self,
        from_seq: u64,
        mut watcher: LogWatcher,
    ) -> Result<u64, SubscribeError> {
        let commit = self.commit.lock();
        if from_seq < commit.folded_through {
            return Err(SubscribeError::Gap {
                folded_through: commit.folded_through,
            });
        }
        let current = commit
            .wal
            .as_ref()
            .map_or(commit.mem_seq, |wal| wal.next_seq())
            - 1;
        let overlay = self.kb.read().overlay.clone();
        let catch_up: Vec<WalRecord> = overlay
            .ops()
            .iter()
            .filter(|r| r.seq > from_seq)
            .cloned()
            .collect();
        if !catch_up.is_empty() && !watcher(&catch_up) {
            return Ok(current);
        }
        self.watchers.inner.lock().push(watcher);
        Ok(current)
    }

    /// Triggers a compaction pass when the just-committed overlay
    /// crosses a configured size/age threshold. Called after every
    /// commit, outside all locks. Shared servers ([`Self::shared`]) get a
    /// detached background pass; plain ones compact synchronously (the
    /// committing caller pays the rebuild, keeping the bound honest
    /// without a handle to spawn through).
    fn maybe_auto_compact(&self) {
        let size = self.options.overlay_auto_compact_ops;
        let age = self.options.overlay_auto_compact_age;
        if size.is_none() && age.is_none() {
            return;
        }
        let len = self.kb.read().overlay.len();
        if len == 0 {
            return;
        }
        let over_size = size.is_some_and(|t| len >= t);
        let over_age = age.is_some_and(|t| {
            self.commit
                .lock()
                .overlay_born
                .is_some_and(|born| born.elapsed() >= t)
        });
        if !over_size && !over_age {
            return;
        }
        if self.compacting.load(Ordering::Relaxed) {
            // A pass is already folding; it will pick this state up.
            return;
        }
        clare_trace::metrics().compaction_auto_triggers.inc();
        if let Some(server) = self.self_weak.upgrade() {
            let _ = std::thread::Builder::new()
                .name("clare-compact".into())
                .spawn(move || server.compact_now());
        } else {
            let _ = self.compact_now();
        }
    }

    /// Folds the overlay into a fresh immutable base — track segments and
    /// FS1 codeword indexes rebuilt for exactly the affected modules, off
    /// the write path — and swaps it in atomically. Operations that
    /// commit while the rebuild runs are re-applied on top of the new
    /// base, so no commit is ever lost to a compaction. Retrievals are
    /// never blocked: in-flight calls keep their snapshot pair, and the
    /// swap holds the write lock only for the pointer exchange.
    ///
    /// The rebuild reads in-memory clause terms — never the simulated
    /// disk — so degraded (quarantined-track) data can never be compacted
    /// into the new segments.
    pub fn compact_now(&self) -> CompactionOutcome {
        if self.compacting.swap(true, Ordering::Acquire) {
            return CompactionOutcome::AlreadyRunning;
        }
        self.compact_claimed()
    }

    /// Runs the fold with the `compacting` flag already claimed by the
    /// caller, releasing it on the way out.
    fn compact_claimed(&self) -> CompactionOutcome {
        let outcome = self.compact_inner();
        self.compacting.store(false, Ordering::Release);
        outcome
    }

    fn compact_inner(&self) -> CompactionOutcome {
        let started = Instant::now();
        let sealed = self.kb.read().clone();
        if sealed.overlay.is_empty() {
            return CompactionOutcome::Clean;
        }
        let m = clare_trace::metrics();
        m.compaction_runs.inc();
        let config = self.commit.lock().config.clone();
        // The expensive part — recompiling clauses, rewriting track
        // segments, rebuilding codeword indexes — runs with no lock held.
        let rebuilt = match sealed.overlay.compacted_kb(&sealed.base, &config) {
            Ok(kb) => kb,
            Err(_) => {
                m.compaction_aborts.inc();
                return CompactionOutcome::Failed;
            }
        };
        let folded = sealed.overlay.len();
        let sealed_max = sealed.overlay.max_seq();
        // Swap: serialize with publishers; if the base moved under the
        // rebuild (a wholesale update), the result no longer applies.
        let mut commit = self.commit.lock();
        let mut guard = self.kb.write();
        if !Arc::ptr_eq(&guard.base, &sealed.base) {
            m.compaction_aborts.inc();
            return CompactionOutcome::Aborted;
        }
        // Ops that committed during the rebuild (the current overlay is a
        // successor of the sealed one): replay just the tail on top of
        // the new base. Base modules those ops touch were not rewritten
        // by this compaction, so the replay reproduces their delta
        // exactly.
        let residue: Vec<WalRecord> = guard
            .overlay
            .ops()
            .iter()
            .filter(|r| r.seq > sealed_max)
            .cloned()
            .collect();
        // Everything at or below the sealed frontier leaves the overlay:
        // new replication subscribers must start past it.
        commit.folded_through = commit.folded_through.max(sealed_max);
        commit.overlay_born = if residue.is_empty() {
            None
        } else {
            Some(Instant::now())
        };
        let (overlay, _skipped) = Overlay::rebuild(&rebuilt, &residue, &config);
        // The rebuilt base is an incremental successor (same lineage and
        // fingerprint), so only the folded predicates' epochs bump —
        // cached answers for untouched predicates stay valid.
        self.cache.bump_for_update(&guard.base, &rebuilt);
        *guard = Published {
            base: Arc::new(rebuilt),
            overlay: Arc::new(overlay),
        };
        drop(guard);
        drop(commit);
        m.compaction_swaps.inc();
        m.compaction_clauses.add(folded as u64);
        m.compaction_wall_ns
            .record(started.elapsed().as_nanos() as u64);
        CompactionOutcome::Swapped { folded }
    }

    /// Runs [`compact_now`](Self::compact_now) on a detached background
    /// thread and returns its handle. The serving path is never blocked;
    /// join the handle to observe the outcome.
    ///
    /// The pass is claimed *before* the thread spawns, so the
    /// in-compaction window (and the `compaction.concurrent_retrievals`
    /// counter) opens at the call — a retrieval racing the spawn counts
    /// as concurrent even if the scheduler runs the whole fold before
    /// the caller's next instruction.
    pub fn spawn_compaction(self: &Arc<Self>) -> std::thread::JoinHandle<CompactionOutcome> {
        let claimed = !self.compacting.swap(true, Ordering::Acquire);
        let server = Arc::clone(self);
        std::thread::Builder::new()
            .name("clare-compact".into())
            .spawn(move || {
                if claimed {
                    server.compact_claimed()
                } else {
                    CompactionOutcome::AlreadyRunning
                }
            })
            .expect("spawning the compaction thread")
    }

    /// Begins an update transaction: the returned [`UpdateTransaction`]
    /// accumulates assert/retract operations and commits them as one
    /// atomic, WAL-serialized batch via
    /// [`commit`](UpdateTransaction::commit). Readers are never blocked;
    /// concurrent transactions serialize on the commit lock, so none of
    /// their operations are lost (the paper's CRS promises "procedures
    /// for concurrency control and transaction handling" — this replaces
    /// the old optimistic last-writer-wins variant).
    pub fn begin_update(&self) -> UpdateTransaction<'_> {
        UpdateTransaction {
            server: self,
            symbols: self.symbols(),
            ops: Vec::new(),
        }
    }

    /// Records one admission-control refusal. Front-ends (such as the
    /// `clare-net` daemon) call this when they shed a request *before* it
    /// reaches the retrieval pipeline, so refusals stay observable in one
    /// place alongside the work that was served.
    pub fn note_rejected(&self) {
        self.stats.update(|stats| stats.rejected += 1);
    }

    /// Service statistics so far: a consistent snapshot that never tears
    /// (readers retry instead of observing a half-published update) and
    /// never blocks the serving path.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }
}

/// An in-progress update: a batch of assert/retract operations validated
/// eagerly for parseability and committed as one atomic, serialized,
/// durably logged batch. Dropping it without
/// [`commit`](Self::commit) discards every change.
#[derive(Debug)]
pub struct UpdateTransaction<'a> {
    server: &'a ClauseRetrievalServer,
    /// Transaction-local symbol table (a clone of the serving one) so
    /// queries and clauses can be parsed in the right namespace before
    /// the commit publishes anything.
    symbols: SymbolTable,
    ops: Vec<WalOp>,
}

impl UpdateTransaction<'_> {
    /// Records an assert of every clause in `source` (in order) to
    /// `module` (created on first use). A source with zero clauses
    /// records nothing — committing a transaction of only such calls is
    /// a no-op commit and skips the recompile/swap entirely.
    ///
    /// # Errors
    ///
    /// Returns the parse error; the transaction stays usable.
    pub fn consult(&mut self, module: &str, source: &str) -> Result<(), CommitError> {
        let clauses = clare_term::parser::parse_program(source, &mut self.symbols)
            .map_err(|e| CommitError::Overlay(OverlayError::Parse(e)))?;
        if clauses.is_empty() {
            return Ok(());
        }
        self.ops.push(WalOp::Assert {
            module: module.to_string(),
            source: source.to_string(),
        });
        Ok(())
    }

    /// Records an assert of one clause to `module`.
    pub fn add_clause(&mut self, module: &str, clause: clare_term::Clause) {
        let source = format!("{}.", ClauseDisplay::new(&clause, &self.symbols));
        self.ops.push(WalOp::Assert {
            module: module.to_string(),
            source,
        });
    }

    /// Records a retract of the first live clause structurally equal to
    /// the single clause in `source`.
    ///
    /// # Errors
    ///
    /// Parse failure, or a source holding zero or several clauses.
    pub fn retract(&mut self, module: &str, source: &str) -> Result<(), CommitError> {
        let clauses = clare_term::parser::parse_program(source, &mut self.symbols)
            .map_err(|e| CommitError::Overlay(OverlayError::Parse(e)))?;
        if clauses.len() != 1 {
            return Err(CommitError::Overlay(OverlayError::RetractNotSingle(
                clauses.len(),
            )));
        }
        self.ops.push(WalOp::Retract {
            module: module.to_string(),
            source: source.to_string(),
        });
        Ok(())
    }

    /// The transaction's symbol table (parse queries/terms against it).
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// The operations recorded so far.
    pub fn ops(&self) -> &[WalOp] {
        &self.ops
    }

    /// Commits the batch atomically: validation against a clone, WAL
    /// group-commit (the fsync is the acknowledgement), then publication.
    /// An empty transaction is a no-op — nothing is recompiled, swapped,
    /// or invalidated.
    ///
    /// # Errors
    ///
    /// Validation or WAL failure; nothing is published.
    pub fn commit(self, config: KbConfig) -> Result<CommitReceipt, CommitError> {
        self.server.commit_ops(self.ops, Some(config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_kb::{KbBuilder, KbConfig};
    use clare_term::parser::parse_term;

    fn server_with(source: &str, queries: &[&str]) -> (ClauseRetrievalServer, Vec<Term>) {
        let mut b = KbBuilder::new();
        b.consult("m", source).unwrap();
        let terms: Vec<Term> = queries
            .iter()
            .map(|q| parse_term(q, b.symbols_mut()).unwrap())
            .collect();
        (
            ClauseRetrievalServer::new(b.finish(KbConfig::default()), CrsOptions::default()),
            terms,
        )
    }

    #[test]
    fn concurrent_clients_get_consistent_answers() {
        let facts: String = (0..400)
            .map(|i| format!("item(k{i}, v{}).", i % 7))
            .collect::<Vec<_>>()
            .join("\n");
        let (server, queries) = server_with(&facts, &["item(k13, X)", "item(K, v3)"]);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                for (qi, expected) in [(0usize, 1usize), (1, 57)] {
                    let server = &server;
                    let q = &queries[qi];
                    scope.spawn(move || {
                        for mode in SearchMode::ALL {
                            let r = server.retrieve(q, mode);
                            assert_eq!(r.stats.unified, expected);
                        }
                    });
                }
            }
        });
        assert_eq!(server.stats().retrievals, 8 * 2 * 4);
        assert!(server.stats().total_elapsed.as_ns() > 0);
    }

    #[test]
    fn batch_and_rejection_counters() {
        let (server, queries) = server_with("p(a). p(b).", &["p(a)", "p(X)"]);
        assert_eq!(server.stats(), ServerStats::default());
        server.retrieve_batch(&queries, SearchMode::TwoStage);
        server.retrieve(&queries[0], SearchMode::TwoStage);
        server.note_rejected();
        server.note_rejected();
        let stats = server.stats();
        assert_eq!(stats.batches, 1, "one batch call");
        assert_eq!(stats.retrievals, 3, "batch members count individually");
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.solves, 0);
    }

    #[test]
    fn stats_snapshots_never_tear() {
        // Writers serve only 2-query batches, so `retrievals == 2 * batches`
        // holds after every update. A snapshot that tore a batch's
        // `batches += 1` apart from its `retrievals += 2` (or caught the
        // mirror mid-publication) would break the equality.
        let (server, queries) = server_with("p(a). p(b).", &["p(a)", "p(X)"]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let server = &server;
                let queries = &queries;
                scope.spawn(move || {
                    for _ in 0..50 {
                        server.retrieve_batch(queries, SearchMode::SoftwareOnly);
                    }
                });
            }
            for _ in 0..4 {
                let server = &server;
                scope.spawn(move || {
                    for _ in 0..2000 {
                        let s = server.stats();
                        assert_eq!(s.retrievals, 2 * s.batches, "torn stats snapshot: {s:?}");
                    }
                });
            }
        });
        let s = server.stats();
        assert_eq!(s.batches, 4 * 50);
        assert_eq!(s.retrievals, 2 * 4 * 50);
    }

    #[test]
    fn update_swaps_atomically() {
        let (server, queries) = server_with("p(a).", &["p(a)"]);
        assert_eq!(
            server
                .retrieve(&queries[0], SearchMode::TwoStage)
                .stats
                .unified,
            1
        );
        // Build a replacement KB in the *same* symbol-table lineage so the
        // query's interned atoms stay valid.
        let snapshot = server.snapshot();
        let mut b = KbBuilder::new();
        *b.symbols_mut() = snapshot.symbols().clone();
        b.consult("m", "p(a). p(a).").unwrap();
        server.update(b.finish(KbConfig::default()));
        assert_eq!(
            server
                .retrieve(&queries[0], SearchMode::TwoStage)
                .stats
                .unified,
            2
        );
        assert_eq!(server.stats().updates, 1);
    }

    #[test]
    fn update_transaction_appends_clauses() {
        let (server, queries) = server_with("p(a).", &["p(a)"]);
        let mut tx = server.begin_update();
        tx.consult("m", "p(a). q(new_thing).").unwrap();
        let receipt = tx.commit(KbConfig::default()).unwrap();
        assert_eq!(receipt.asserted, 2);
        assert!(!receipt.durable, "no WAL attached");
        // The old clause survived, the new ones joined.
        assert_eq!(
            server
                .retrieve(&queries[0], SearchMode::SoftwareOnly)
                .stats
                .unified,
            2
        );
        // q/1 lives in the overlay until a compaction folds it down.
        let q = parse_term("q(new_thing)", &mut server.symbols()).unwrap();
        assert_eq!(server.retrieve(&q, SearchMode::TwoStage).stats.unified, 1);
        assert_eq!(server.stats().updates, 1);
        // Symbol offsets stayed stable across the transaction: the old
        // query term still resolves.
        assert_eq!(
            server
                .retrieve(&queries[0], SearchMode::TwoStage)
                .stats
                .unified,
            2
        );
    }

    #[test]
    fn empty_transaction_commit_is_a_noop() {
        let (server, queries) = server_with("p(a).", &["p(a)"]);
        server.retrieve(&queries[0], SearchMode::TwoStage); // warm the cache
        let hits_before = clare_trace::metrics().cache_hits.get();
        let noops_before = clare_trace::metrics().wal_noop_commits.get();
        let mut tx = server.begin_update();
        tx.consult("m", "  % only whitespace and nothing else\n")
            .unwrap();
        let receipt = tx.commit(KbConfig::default()).unwrap();
        assert_eq!(receipt, CommitReceipt::noop());
        assert_eq!(
            clare_trace::metrics().wal_noop_commits.get(),
            noops_before + 1
        );
        assert_eq!(server.stats().updates, 0, "no-op commits don't count");
        // The hot cache entry survived: the repeat is a hit, proving no
        // epoch was bumped.
        server.retrieve(&queries[0], SearchMode::TwoStage);
        assert!(clare_trace::metrics().cache_hits.get() > hits_before);
    }

    #[test]
    fn retract_removes_first_structural_match() {
        let (server, queries) = server_with("p(a). p(a). p(b).", &["p(a)", "p(X)"]);
        let mut tx = server.begin_update();
        tx.retract("m", "p(a).").unwrap();
        let receipt = tx.commit(KbConfig::default()).unwrap();
        assert_eq!(receipt.retracted, 1);
        assert_eq!(
            server
                .retrieve(&queries[0], SearchMode::TwoStage)
                .stats
                .unified,
            1,
            "one of the two p(a) clauses is gone"
        );
        assert_eq!(
            server
                .retrieve(&queries[1], SearchMode::SoftwareOnly)
                .stats
                .unified,
            2
        );
    }

    #[test]
    fn dropped_transaction_changes_nothing() {
        let (server, queries) = server_with("p(a).", &["p(a)"]);
        {
            let mut tx = server.begin_update();
            tx.consult("m", "p(a).").unwrap();
            // dropped without commit
        }
        assert_eq!(
            server
                .retrieve(&queries[0], SearchMode::SoftwareOnly)
                .stats
                .unified,
            1
        );
        assert_eq!(server.stats().updates, 0);
    }

    #[test]
    fn failing_commit_publishes_nothing() {
        let (server, queries) = server_with("p(a).", &["p(a)"]);
        let mut tx = server.begin_update();
        tx.consult("m", "p(999999999999).").unwrap(); // un-encodable int
        assert!(tx.commit(KbConfig::default()).is_err());
        assert_eq!(
            server
                .retrieve(&queries[0], SearchMode::SoftwareOnly)
                .stats
                .unified,
            1
        );
        assert_eq!(server.stats().updates, 0);
    }

    #[test]
    fn compaction_folds_overlay_and_preserves_answers() {
        let (server, queries) = server_with("p(a). p(b).", &["p(X)"]);
        let mut tx = server.begin_update();
        tx.consult("m", "p(c). p(d).").unwrap();
        tx.retract("m", "p(a).").unwrap();
        tx.commit(KbConfig::default()).unwrap();
        let before: Vec<_> = SearchMode::ALL
            .map(|mode| server.retrieve(&queries[0], mode).stats.unified)
            .to_vec();
        assert_eq!(before, vec![3, 3, 3, 3]);

        let outcome = server.compact_now();
        assert!(matches!(outcome, CompactionOutcome::Swapped { folded: 2 }));
        let (_, overlay) = server.snapshot_merged();
        assert!(overlay.is_empty(), "overlay folded into the base");
        assert!(
            server.snapshot().lookup("p", 1).is_some(),
            "clauses now live in the base"
        );
        for mode in SearchMode::ALL {
            assert_eq!(
                server.retrieve(&queries[0], mode).stats.unified,
                3,
                "answers unchanged after compaction in {mode}"
            );
        }
        // Nothing left to do: the next run is clean.
        assert_eq!(server.compact_now(), CompactionOutcome::Clean);
    }

    #[test]
    fn wal_round_trip_recovers_committed_ops() {
        let path = std::env::temp_dir().join(format!(
            "clare-server-wal-{}-{:?}.wal",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let (server, queries) = server_with("p(a).", &["p(X)"]);
        server.attach_wal(&path).unwrap();
        let mut tx = server.begin_update();
        tx.consult("m", "p(b). p(c).").unwrap();
        let receipt = tx.commit(KbConfig::default()).unwrap();
        assert!(receipt.durable);
        assert_eq!(receipt.seqs, 1..2, "one op logged");

        // A second server over the same base recovers the commit.
        let (reborn, _) = server_with("p(a).", &[]);
        let report = reborn.attach_wal(&path).unwrap();
        assert_eq!(report.records, 1);
        assert_eq!(report.truncated_tail_bytes, 0);
        assert_eq!(
            reborn
                .retrieve(&queries[0], SearchMode::TwoStage)
                .stats
                .unified,
            3
        );
        let _ = std::fs::remove_file(&path);
    }
}
