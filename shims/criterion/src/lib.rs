//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so the workspace vendors a
//! small wall-clock benchmarking harness with the `criterion` API shape its
//! benches use: [`Criterion`] with `warm_up_time` / `measurement_time` /
//! `sample_size`, [`BenchmarkGroup`] with `throughput` / `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurements are real: each benchmark warms up, calibrates an
//! iteration count per sample, collects `sample_size` samples, and
//! reports the median ns/iteration (plus element throughput when set).
//! There is no statistical comparison against saved baselines.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets how long each benchmark spins before measurement starts.
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up = duration;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement = duration;
        self
    }

    /// Sets how many timing samples are collected per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_benchmark(self.warm_up, self.measurement, self.sample_size, f);
        report.print(&id.to_string(), None);
        self
    }
}

/// One element of a benchmark's workload, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A set of benchmarks sharing a name prefix and throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples.max(2));
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let report = run_benchmark(
            self.criterion.warm_up,
            self.criterion.measurement,
            samples,
            f,
        );
        report.print(&format!("{}/{id}", self.name), self.throughput);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (Reports are emitted as benchmarks run.)
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

struct Report {
    median_ns: f64,
}

impl Report {
    fn print(&self, name: &str, throughput: Option<Throughput>) {
        match throughput {
            Some(Throughput::Elements(n)) if self.median_ns > 0.0 => {
                let rate = n as f64 * 1e9 / self.median_ns;
                println!(
                    "{name:<40} {:>14.1} ns/iter {rate:>16.0} elem/s",
                    self.median_ns
                );
            }
            Some(Throughput::Bytes(n)) if self.median_ns > 0.0 => {
                let rate = n as f64 * 1e9 / self.median_ns;
                println!(
                    "{name:<40} {:>14.1} ns/iter {rate:>16.0} B/s",
                    self.median_ns
                );
            }
            _ => println!("{name:<40} {:>14.1} ns/iter", self.median_ns),
        }
    }
}

fn run_benchmark<F>(warm_up: Duration, measurement: Duration, samples: usize, mut f: F) -> Report
where
    F: FnMut(&mut Bencher),
{
    // Warm up, doubling the iteration count until the budget is spent;
    // this also calibrates the per-iteration cost estimate.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter_ns = f64::MAX;
    loop {
        f(&mut bencher);
        let observed = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
        per_iter_ns = per_iter_ns.min(observed.max(0.1));
        if warm_start.elapsed() >= warm_up {
            break;
        }
        bencher.iters = bencher.iters.saturating_mul(2);
    }

    // Size each sample so the whole measurement fits the budget.
    let sample_budget_ns = measurement.as_nanos() as f64 / samples as f64;
    bencher.iters = ((sample_budget_ns / per_iter_ns) as u64).max(1);

    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            f(&mut bencher);
            bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    let median_ns = if times.len() % 2 == 1 {
        times[times.len() / 2]
    } else {
        (times[times.len() / 2 - 1] + times[times.len() / 2]) / 2.0
    };
    Report { median_ns }
}

/// Declares a group-runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_reports_plausible_times() {
        let report = run_benchmark(
            Duration::from_millis(10),
            Duration::from_millis(40),
            5,
            |b| b.iter(|| black_box((0..100u64).sum::<u64>())),
        );
        assert!(report.median_ns > 0.0 && report.median_ns < 1e7);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(3);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(10), &10u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
