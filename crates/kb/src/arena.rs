//! Pre-decoded clause-head streams: the [`ClauseArena`].
//!
//! Compiling a predicate serializes every clause into a length-prefixed
//! [`ClauseRecord`](clare_pif::ClauseRecord) laid out on disk tracks.
//! At retrieval time the FS2 sweep needs only each record's PIF *head
//! stream*, yet re-parsing the record bytes — head stream plus the full
//! clause term — for every clause of every retrieval is pure host
//! overhead the real hardware never pays (the Double Buffer hands the
//! engine already-framed words). So the builder decodes each head stream
//! exactly once, at compile/load time, into one contiguous arena of
//! [`PifWord`]s with per-clause spans and per-track ranges.
//! `ClauseRecord::from_bytes` remains the persistence path, and a
//! property test asserts the arena agrees with re-decoded records word
//! for word.
//!
//! Clause indices are program order, which by construction equals
//! `(track, slot)` address order, so `slot = index − track start`.

use clare_pif::PifWord;
use std::ops::Range;

/// One predicate's pre-decoded clause-head streams, contiguous in memory
/// and indexed by clause position and by track.
///
/// # Examples
///
/// ```
/// use clare_kb::{KbBuilder, KbConfig};
/// use clare_pif::encode_clause_head;
///
/// let mut b = KbBuilder::new();
/// b.consult("m", "p(a, 1). p(b, 2).")?;
/// let kb = b.finish(KbConfig::default());
/// let pred = kb.lookup("p", 2).unwrap();
///
/// let arena = pred.arena();
/// assert_eq!(arena.len(), 2);
/// // Each pre-decoded stream is exactly the clause's encoded head.
/// let head = encode_clause_head(pred.clauses()[1].head())?;
/// assert_eq!(arena.stream(1), head.words());
/// // Two tiny facts share track 0.
/// assert_eq!(arena.track_clauses(0), 0..2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClauseArena {
    /// Every clause's head-stream words, in clause order, back to back.
    words: Vec<PifWord>,
    /// Per-clause `(offset, len)` spans into `words`.
    spans: Vec<(u32, u32)>,
    /// First clause index of each track; tracks are filled in order, so
    /// track `t` holds clauses `track_starts[t] .. track_starts[t + 1]`.
    track_starts: Vec<u32>,
}

impl ClauseArena {
    /// Number of clauses in the arena.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if the arena holds no clauses.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total PIF words across all streams.
    pub fn total_words(&self) -> usize {
        self.words.len()
    }

    /// The pre-decoded head stream of clause `clause` (program order).
    ///
    /// # Panics
    ///
    /// Panics if `clause` is out of range.
    pub fn stream(&self, clause: usize) -> &[PifWord] {
        let (offset, len) = self.spans[clause];
        &self.words[offset as usize..(offset + len) as usize]
    }

    /// Number of tracks the clause file occupies.
    pub fn track_count(&self) -> usize {
        self.track_starts.len()
    }

    /// The clause-index range stored on `track`; empty for tracks past
    /// the end. Slot `s` of the track is clause `range.start + s`.
    pub fn track_clauses(&self, track: usize) -> Range<usize> {
        let end_of = |t: usize| {
            self.track_starts
                .get(t)
                .map_or(self.spans.len(), |&s| s as usize)
        };
        end_of(track)..end_of(track + 1)
    }

    /// Appends one clause's head stream. Tracks must arrive in
    /// non-decreasing order (the builder lays clauses out first-fit).
    pub(crate) fn push_clause(&mut self, track: usize, words: &[PifWord]) {
        debug_assert!(
            track + 1 >= self.track_starts.len(),
            "tracks are filled in order"
        );
        while self.track_starts.len() <= track {
            self.track_starts.push(self.spans.len() as u32);
        }
        let offset = self.words.len() as u32;
        self.words.extend_from_slice(words);
        self.spans.push((offset, words.len() as u32));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clare_pif::{PifWord, TypeTag};

    fn word(content: u32) -> PifWord {
        PifWord::new(TypeTag::AtomPtr, content)
    }

    #[test]
    fn empty_arena() {
        let arena = ClauseArena::default();
        assert_eq!(arena.len(), 0);
        assert!(arena.is_empty());
        assert_eq!(arena.track_count(), 0);
        assert_eq!(arena.track_clauses(0), 0..0);
        assert_eq!(arena.total_words(), 0);
    }

    #[test]
    fn streams_and_track_ranges() {
        let mut arena = ClauseArena::default();
        arena.push_clause(0, &[word(1), word(2)]);
        arena.push_clause(0, &[]);
        arena.push_clause(1, &[word(3)]);
        arena.push_clause(3, &[word(4), word(5), word(6)]);

        assert_eq!(arena.len(), 4);
        assert_eq!(arena.total_words(), 6);
        assert_eq!(arena.stream(0), &[word(1), word(2)]);
        assert_eq!(arena.stream(1), &[] as &[PifWord]);
        assert_eq!(arena.stream(2), &[word(3)]);
        assert_eq!(arena.stream(3), &[word(4), word(5), word(6)]);

        assert_eq!(arena.track_count(), 4);
        assert_eq!(arena.track_clauses(0), 0..2);
        assert_eq!(arena.track_clauses(1), 2..3);
        assert_eq!(arena.track_clauses(2), 3..3, "skipped track is empty");
        assert_eq!(arena.track_clauses(3), 3..4);
        assert_eq!(arena.track_clauses(4), 4..4, "past the end is empty");
    }

    #[test]
    #[should_panic]
    fn out_of_range_stream_panics() {
        let arena = ClauseArena::default();
        let _ = arena.stream(0);
    }
}
